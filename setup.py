"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
fully offline environments where the ``wheel`` package (needed for PEP 660
editable installs) may be unavailable; pip then falls back to the legacy
``setup.py develop`` code path.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
