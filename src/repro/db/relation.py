"""A tiny in-memory column-store relation.

The privacy model in the paper is record-level: neighbouring databases
``I`` and ``I'`` differ by the addition or removal of exactly one tuple.
The :class:`Relation` class therefore supports exactly the operations the
reproduction needs:

* construction from records or columns, with schema validation;
* ``count(predicate)`` — evaluate a counting query;
* ``with_record`` / ``without_record`` — produce a neighbouring instance
  (used by the empirical sensitivity and privacy-audit harnesses);
* projection of the range attribute as a NumPy index array, which is what
  the histogram builder consumes.

It is intentionally not a general query engine: only what the paper's
workloads require, but implemented carefully (copy-on-write columns,
O(1) neighbour construction views, schema errors raised eagerly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.db.domain import Domain
from repro.exceptions import SchemaError

__all__ = ["Column", "Schema", "Relation"]


@dataclass(frozen=True)
class Column:
    """Schema entry: a named attribute, optionally bound to a domain."""

    name: str
    domain: Domain | None = None

    def validate(self, value) -> None:
        """Raise :class:`SchemaError` if ``value`` is not in the column domain."""
        if self.domain is not None:
            try:
                self.domain.index_of(value)
            except Exception as exc:
                raise SchemaError(
                    f"value {value!r} invalid for column {self.name!r}: {exc}"
                ) from exc


@dataclass(frozen=True)
class Schema:
    """Ordered collection of :class:`Column` definitions."""

    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        if not names:
            raise SchemaError("schema must contain at least one column")

    @classmethod
    def of(cls, *columns: Column) -> "Schema":
        return cls(tuple(columns))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column named {name!r} (have {self.names})")

    def position(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise SchemaError(f"no column named {name!r} (have {self.names})")


class Relation:
    """An immutable bag of tuples with a fixed schema.

    Data is stored column-wise as Python lists (values may be strings,
    ints, tuples depending on the domain).  All mutating operations return
    a new :class:`Relation`; this keeps neighbour construction cheap and
    side-effect free, which matters when the sensitivity harness builds
    thousands of neighbours.
    """

    def __init__(self, schema: Schema, columns: Mapping[str, Sequence] | None = None):
        self.schema = schema
        columns = columns or {name: [] for name in schema.names}
        missing = set(schema.names) - set(columns)
        extra = set(columns) - set(schema.names)
        if missing:
            raise SchemaError(f"missing columns {sorted(missing)}")
        if extra:
            raise SchemaError(f"unknown columns {sorted(extra)}")
        lengths = {name: len(columns[name]) for name in schema.names}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"ragged columns: {lengths}")
        self._columns: dict[str, list] = {
            name: list(columns[name]) for name in schema.names
        }
        self._size = next(iter(lengths.values())) if lengths else 0

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_records(cls, schema: Schema, records: Iterable[Sequence]) -> "Relation":
        """Build a relation from an iterable of tuples in schema order."""
        names = schema.names
        columns: dict[str, list] = {name: [] for name in names}
        for record in records:
            record = tuple(record)
            if len(record) != len(names):
                raise SchemaError(
                    f"record {record!r} has {len(record)} fields, expected {len(names)}"
                )
            for col, value in zip(schema.columns, record):
                col.validate(value)
                columns[col.name].append(value)
        return cls(schema, columns)

    @classmethod
    def from_columns(cls, schema: Schema, **columns: Sequence) -> "Relation":
        """Build a relation column-wise (values validated against domains)."""
        relation = cls(schema, columns)
        for col in schema.columns:
            if col.domain is None:
                continue
            for value in relation._columns[col.name]:
                col.validate(value)
        return relation

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def size(self) -> int:
        """Number of tuples (records) in the relation."""
        return self._size

    def column(self, name: str) -> list:
        """Return a copy of one column's values."""
        self.schema.column(name)
        return list(self._columns[name])

    def records(self) -> list[tuple]:
        """Materialise all records in schema order."""
        names = self.schema.names
        return list(zip(*(self._columns[name] for name in names))) if self._size else []

    def __iter__(self):
        return iter(self.records())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Relation(schema={self.schema.names}, size={self._size})"

    # -- counting queries ---------------------------------------------------

    def count(self, predicate: Callable[[tuple], bool] | None = None) -> int:
        """Count tuples, optionally restricted to those matching ``predicate``."""
        if predicate is None:
            return self._size
        return sum(1 for record in self.records() if predicate(record))

    def count_range(self, attribute: str, lo_value, hi_value) -> int:
        """Count tuples with ``lo_value <= R.attribute <= hi_value``.

        Comparison happens in index space when the column has a domain
        (so IP bit-strings and time pairs order correctly), otherwise in
        raw value space.
        """
        col = self.schema.column(attribute)
        values = self._columns[attribute]
        if col.domain is not None:
            lo = col.domain.index_of(lo_value)
            hi = col.domain.index_of(hi_value)
            return sum(1 for v in values if lo <= col.domain.index_of(v) <= hi)
        return sum(1 for v in values if lo_value <= v <= hi_value)

    def attribute_indexes(self, attribute: str) -> np.ndarray:
        """Project one column as an ``int64`` array of domain indexes.

        This is the bridge between the relational substrate and the
        vector-of-counts world every estimator lives in.
        """
        col = self.schema.column(attribute)
        if col.domain is None:
            raise SchemaError(
                f"column {attribute!r} has no domain; cannot index its values"
            )
        values = self._columns[attribute]
        return np.fromiter(
            (col.domain.index_of(v) for v in values), dtype=np.int64, count=len(values)
        )

    # -- neighbouring databases ---------------------------------------------

    def with_record(self, record: Sequence) -> "Relation":
        """Return a neighbour ``I'`` obtained by adding one tuple."""
        record = tuple(record)
        if len(record) != len(self.schema.names):
            raise SchemaError(
                f"record {record!r} has {len(record)} fields, "
                f"expected {len(self.schema.names)}"
            )
        columns = {name: list(vals) for name, vals in self._columns.items()}
        for col, value in zip(self.schema.columns, record):
            col.validate(value)
            columns[col.name].append(value)
        return Relation(self.schema, columns)

    def without_record(self, position: int) -> "Relation":
        """Return a neighbour ``I'`` obtained by removing the tuple at ``position``."""
        if not 0 <= position < self._size:
            raise SchemaError(
                f"record position {position} out of range for relation of size {self._size}"
            )
        columns = {
            name: vals[:position] + vals[position + 1 :]
            for name, vals in self._columns.items()
        }
        return Relation(self.schema, columns)

    def neighbors(self, candidate_records: Iterable[Sequence] = ()) -> Iterable["Relation"]:
        """Yield neighbouring instances: all single-removals, then the given additions.

        The removal neighbours are exhaustive; addition neighbours are
        controlled by the caller because the space of addable tuples is the
        full cross product of domains.
        """
        for position in range(self._size):
            yield self.without_record(position)
        for record in candidate_records:
            yield self.with_record(record)
