"""Range counting queries and a parser for the paper's SQL-like syntax.

The paper writes counting queries as::

    c([x, y]) = Select count(*) From R Where x <= R.A <= y

A :class:`RangeCountQuery` captures one such query over a bound domain
(attribute + inclusive index interval).  The module also provides
``parse_count_query`` for the textual form, which the examples use to show
the analyst-facing surface, and helpers to express a range query as a
coefficient vector over unit buckets (the representation the estimators
and the matrix-mechanism view need).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.db.domain import Domain
from repro.db.relation import Relation
from repro.exceptions import QueryError

__all__ = ["RangeCountQuery", "parse_count_query"]


_QUERY_PATTERN = re.compile(
    r"^\s*select\s+count\(\s*\*\s*\)\s+from\s+(?P<rel>\w+)\s+where\s+"
    r"(?P<lo>\S+)\s*<=\s*(?:\w+\.)?(?P<attr>\w+)\s*<=\s*(?P<hi>\S+)\s*$",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class RangeCountQuery:
    """A counting query ``c([lo, hi])`` over a bound ordered domain.

    ``lo`` and ``hi`` are inclusive *bucket indexes* into ``domain``.
    Unit-length queries have ``lo == hi``.
    """

    domain: Domain
    lo: int
    hi: int
    attribute: str | None = None

    def __post_init__(self) -> None:
        try:
            self.domain.check_interval(self.lo, self.hi)
        except Exception as exc:
            raise QueryError(f"invalid range query interval: {exc}") from exc

    # -- properties ---------------------------------------------------------

    @property
    def length(self) -> int:
        """Number of unit buckets covered by the query."""
        return self.hi - self.lo + 1

    @property
    def is_unit(self) -> bool:
        """True if this is a unit-length query ``[x, x]``."""
        return self.lo == self.hi

    @property
    def is_total(self) -> bool:
        """True if this query covers the whole domain."""
        return self.lo == 0 and self.hi == self.domain.size - 1

    def range_attribute(self) -> str:
        """Name of the attribute the query ranges over."""
        return self.attribute if self.attribute is not None else self.domain.name

    # -- evaluation ----------------------------------------------------------

    def evaluate_counts(self, counts: np.ndarray) -> float:
        """Answer the query from a vector of true unit counts."""
        counts = np.asarray(counts)
        if counts.shape[0] != self.domain.size:
            raise QueryError(
                f"count vector has length {counts.shape[0]}, "
                f"expected domain size {self.domain.size}"
            )
        return float(counts[self.lo : self.hi + 1].sum())

    def evaluate_relation(self, relation: Relation) -> int:
        """Answer the query directly against a relation."""
        attr = self.range_attribute()
        indexes = relation.attribute_indexes(attr)
        return int(np.count_nonzero((indexes >= self.lo) & (indexes <= self.hi)))

    def coefficients(self) -> np.ndarray:
        """0/1 coefficient vector of the query over unit buckets.

        The answer to the query is the dot product of this vector with the
        unit-count vector — the linear-query view used throughout Section 4
        and by the matrix-mechanism representation.
        """
        coeffs = np.zeros(self.domain.size, dtype=np.float64)
        coeffs[self.lo : self.hi + 1] = 1.0
        return coeffs

    # -- display -------------------------------------------------------------

    def to_sql(self, relation_name: str = "R") -> str:
        """Render the query in the paper's SQL-like syntax."""
        attr = self.range_attribute()
        lo_value = self.domain.value_of(self.lo)
        hi_value = self.domain.value_of(self.hi)
        return (
            f"Select count(*) From {relation_name} "
            f"Where {lo_value} <= {relation_name}.{attr} <= {hi_value}"
        )

    def __str__(self) -> str:
        if self.is_unit:
            return f"c([{self.lo}])"
        return f"c([{self.lo}, {self.hi}])"


def parse_count_query(text: str, domain: Domain) -> RangeCountQuery:
    """Parse the paper's ``Select count(*) From R Where x <= R.A <= y`` syntax.

    Values ``x`` and ``y`` are interpreted through ``domain.index_of`` so
    that e.g. bit-string addresses parse on an :class:`IPPrefixDomain`.
    """
    match = _QUERY_PATTERN.match(text)
    if match is None:
        raise QueryError(f"cannot parse counting query: {text!r}")
    attr = match.group("attr")
    try:
        lo = domain.index_of(_coerce_literal(match.group("lo")))
        hi = domain.index_of(_coerce_literal(match.group("hi")))
    except Exception as exc:
        raise QueryError(f"cannot interpret query bounds in {text!r}: {exc}") from exc
    if lo > hi:
        raise QueryError(f"query bounds out of order in {text!r}")
    return RangeCountQuery(domain=domain, lo=lo, hi=hi, attribute=attr)


def _coerce_literal(token: str) -> str:
    """Strip quoting from a textual literal.

    The literal is passed to ``Domain.index_of`` as-is: integer domains
    coerce numeric strings themselves, and bit-string domains (where a
    value such as ``"010"`` must *not* be read as the number ten) receive
    the raw text.
    """
    return token.strip().strip("'\"")
