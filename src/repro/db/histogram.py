"""Building unit-count histograms from relations or raw index streams.

Every estimator in the library consumes the vector of unit-length counts
``L(I) = <c([x_1]), ..., c([x_n])>``.  This module is the single place
where relations, raw attribute values, and pre-computed count vectors get
normalised into that form, including the optional padding to a power of
the branching factor that the hierarchical query needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.domain import Domain, IntegerDomain
from repro.db.index import SortedColumnIndex
from repro.db.relation import Relation
from repro.exceptions import DomainError, QueryError

__all__ = ["HistogramBuilder", "unit_counts", "pad_counts", "delta_counts"]


def delta_counts(indexes, domain_size: int) -> np.ndarray:
    """Aggregate a batch of row arrivals into a per-bucket delta vector.

    ``indexes`` is an array-like of domain indexes, one entry per arriving
    tuple (the streaming counterpart of
    :meth:`~repro.db.relation.Relation.attribute_indexes`).  The result is
    a float64 vector of length ``domain_size`` counting arrivals per
    bucket — a single vectorized ``bincount`` pass, no Python-level loop —
    suitable for adding onto an existing unit-count histogram.
    """
    if domain_size <= 0:
        raise DomainError(f"domain_size must be positive, got {domain_size}")
    indexes = np.asarray(indexes)
    if indexes.size == 0:
        return np.zeros(domain_size, dtype=np.float64)
    if indexes.ndim != 1:
        raise DomainError(
            f"row indexes must be 1-dimensional, got shape {indexes.shape}"
        )
    if not np.issubdtype(indexes.dtype, np.integer):
        cast = indexes.astype(np.int64)
        if np.any(cast != indexes):
            raise DomainError("row indexes must be integers")
        indexes = cast
    if indexes.min() < 0 or indexes.max() >= domain_size:
        raise DomainError(
            f"row indexes must lie in [0, {domain_size}); got range "
            f"[{indexes.min()}, {indexes.max()}]"
        )
    return np.bincount(indexes, minlength=domain_size).astype(np.float64)


def unit_counts(relation: Relation, attribute: str) -> np.ndarray:
    """Compute the unit-count histogram of ``relation.attribute``.

    Convenience wrapper over :class:`SortedColumnIndex`; returns a float
    vector of length ``domain.size``.
    """
    return SortedColumnIndex.build(relation, attribute).unit_counts()


def pad_counts(counts: np.ndarray, branching: int = 2) -> np.ndarray:
    """Pad a count vector with zero buckets up to a power of ``branching``.

    The hierarchical query ``H`` is defined over a complete k-ary tree;
    padding with empty buckets leaves all true range counts over the
    original domain unchanged.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1 or counts.size == 0:
        raise DomainError("count vector must be 1-dimensional and non-empty")
    from repro.db.domain import padded_size

    target = padded_size(counts.size, branching)
    if target == counts.size:
        return counts.copy()
    padded = np.zeros(target, dtype=np.float64)
    padded[: counts.size] = counts
    return padded


@dataclass
class HistogramBuilder:
    """Builds (and caches) the unit-count vector for one relation attribute.

    Parameters
    ----------
    relation:
        The private database instance ``I``.
    attribute:
        The range attribute ``A`` the histogram is over.  Must be bound to
        an ordered :class:`~repro.db.domain.Domain` in the relation schema.
    """

    relation: Relation
    attribute: str

    def __post_init__(self) -> None:
        column = self.relation.schema.column(self.attribute)
        if column.domain is None:
            raise QueryError(
                f"attribute {self.attribute!r} has no domain; cannot build histograms"
            )
        self.domain: Domain = column.domain
        self._index = SortedColumnIndex.build(self.relation, self.attribute)
        self._counts: np.ndarray | None = None

    # -- histogram access -------------------------------------------------------

    def counts(self) -> np.ndarray:
        """The unit-count vector ``L(I)`` (cached)."""
        if self._counts is None:
            self._counts = self._index.unit_counts()
        return self._counts.copy()

    def padded_counts(self, branching: int = 2) -> np.ndarray:
        """Unit counts padded to a power of ``branching`` for tree queries."""
        return pad_counts(self.counts(), branching)

    def padded_domain(self, branching: int = 2) -> Domain:
        """An integer domain matching the padded count vector."""
        return IntegerDomain(self.domain.padded_size(branching), name=self.domain.name)

    def total(self) -> float:
        """Total number of records with a value in the domain."""
        return float(self.counts().sum())

    def range_count(self, lo: int, hi: int) -> int:
        """True answer to the range query ``c([lo, hi])``."""
        return self._index.count_range(lo, hi)

    def sorted_counts(self) -> np.ndarray:
        """The unattributed histogram ``S(I)``: unit counts in ascending order."""
        return np.sort(self.counts())
