"""Ordered domains for histogram range attributes.

The paper assumes the range attribute ``A`` has an ordered domain ``dom``
of size ``n`` and builds histograms over unit-length intervals
``[x_1], ..., [x_n]``.  The hierarchical query ``H`` additionally needs a
way to split the full interval ``[x_1, x_n]`` recursively into ``k`` equal
sub-intervals, which is most natural when ``n`` is a power of ``k``.

A :class:`Domain` maps *values* (IP addresses, timestamps, plain integers,
ordinal labels) to contiguous *indexes* ``0 .. size-1``; all query and
inference code works on indexes and only converts back to values for
display.  This mirrors how production DP engines (e.g. Ektelo) normalise
attributes to an index domain before running any mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import DomainError

__all__ = [
    "Domain",
    "IntegerDomain",
    "IPPrefixDomain",
    "TimeGridDomain",
    "OrdinalDomain",
    "padded_size",
]


def padded_size(size: int, branching: int) -> int:
    """Return the smallest power of ``branching`` that is ``>= size``.

    The hierarchical query ``H`` is defined over a complete k-ary tree, so
    domains whose size is not a power of ``k`` are conceptually padded with
    empty buckets.  ``padded_size(5, 2) == 8``.
    """
    if size <= 0:
        raise DomainError(f"domain size must be positive, got {size}")
    if branching < 2:
        raise DomainError(f"branching factor must be >= 2, got {branching}")
    power = 1
    while power < size:
        power *= branching
    return power


class Domain:
    """Abstract ordered domain of size ``n``.

    Concrete domains implement :meth:`index_of` (value -> index) and
    :meth:`value_of` (index -> value).  Everything else — interval
    validation, iteration, padding — is shared.
    """

    def __init__(self, size: int, name: str = "A") -> None:
        if size <= 0:
            raise DomainError(f"domain size must be positive, got {size}")
        self._size = int(size)
        self.name = name

    # -- core protocol ----------------------------------------------------

    @property
    def size(self) -> int:
        """Number of unit-length buckets in the domain."""
        return self._size

    def __len__(self) -> int:
        return self._size

    def index_of(self, value) -> int:
        """Map a domain value to its bucket index in ``[0, size)``."""
        raise NotImplementedError

    def value_of(self, index: int) -> object:
        """Map a bucket index back to a representative domain value."""
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------

    def check_index(self, index: int) -> int:
        """Validate a bucket index, returning it unchanged."""
        if not isinstance(index, (int,)) or isinstance(index, bool):
            raise DomainError(f"bucket index must be an int, got {index!r}")
        if not 0 <= index < self._size:
            raise DomainError(
                f"bucket index {index} out of range for domain of size {self._size}"
            )
        return index

    def check_interval(self, lo: int, hi: int) -> tuple[int, int]:
        """Validate an inclusive index interval ``[lo, hi]``."""
        self.check_index(lo)
        self.check_index(hi)
        if lo > hi:
            raise DomainError(f"empty interval: lo={lo} > hi={hi}")
        return lo, hi

    def indexes(self) -> range:
        """All bucket indexes, in order."""
        return range(self._size)

    def values(self) -> list:
        """All representative values, in index order."""
        return [self.value_of(i) for i in self.indexes()]

    def padded_size(self, branching: int = 2) -> int:
        """Domain size padded up to a power of ``branching`` (for ``H``)."""
        return padded_size(self._size, branching)

    def tree_height(self, branching: int = 2) -> int:
        """Height ℓ (number of nodes root→leaf) of the padded k-ary tree."""
        padded = self.padded_size(branching)
        return int(round(math.log(padded, branching))) + 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(size={self._size}, name={self.name!r})"

    def __eq__(self, other) -> bool:
        return (
            type(self) is type(other)
            and self._size == other._size
            and self.name == other.name
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._size, self.name))


class IntegerDomain(Domain):
    """Consecutive integers ``[low, low + size)``.

    This is the workhorse domain: degree values, packet counts, generic
    bucket ids.  ``index_of`` is a subtraction, ``value_of`` an addition.
    """

    def __init__(self, size: int, low: int = 0, name: str = "A") -> None:
        super().__init__(size, name=name)
        self.low = int(low)

    @property
    def high(self) -> int:
        """Largest value in the domain (inclusive)."""
        return self.low + self._size - 1

    def index_of(self, value) -> int:
        value = int(value)
        if not self.low <= value <= self.high:
            raise DomainError(
                f"value {value} outside integer domain [{self.low}, {self.high}]"
            )
        return value - self.low

    def value_of(self, index: int) -> int:
        self.check_index(index)
        return self.low + index


class IPPrefixDomain(Domain):
    """Bit-string addresses of a fixed width, as in the paper's NetTrace data.

    The running example in the paper (Figure 2) uses source addresses
    ``000, 001, 010, 011`` and hierarchical intervals labelled by prefixes
    (``0**``, ``00*``...).  This domain represents addresses as integers in
    ``[0, 2**bits)`` and formats values as zero-padded bit strings.  A
    *prefix* like ``"01*"`` denotes the interval of all addresses sharing
    the prefix, which is exactly one node of the binary ``H`` tree.
    """

    def __init__(self, bits: int, name: str = "src") -> None:
        if bits <= 0 or bits > 32:
            raise DomainError(f"bits must be in [1, 32], got {bits}")
        super().__init__(2**bits, name=name)
        self.bits = bits

    def index_of(self, value) -> int:
        if isinstance(value, str):
            cleaned = value.strip()
            if not cleaned or any(c not in "01" for c in cleaned):
                raise DomainError(f"not a bit-string address: {value!r}")
            if len(cleaned) != self.bits:
                raise DomainError(
                    f"address {value!r} has {len(cleaned)} bits, expected {self.bits}"
                )
            return int(cleaned, 2)
        index = int(value)
        self.check_index(index)
        return index

    def value_of(self, index: int) -> str:
        self.check_index(index)
        return format(index, f"0{self.bits}b")

    def prefix_interval(self, prefix: str) -> tuple[int, int]:
        """Inclusive index interval covered by a prefix such as ``"01*"``.

        Trailing ``*`` characters (or simply a short bit string) mean "any
        suffix".  ``prefix_interval("0**")`` on a 3-bit domain is ``(0, 3)``.
        """
        cleaned = prefix.strip().rstrip("*")
        if any(c not in "01" for c in cleaned):
            raise DomainError(f"not a bit-string prefix: {prefix!r}")
        if len(cleaned) > self.bits:
            raise DomainError(
                f"prefix {prefix!r} longer than address width {self.bits}"
            )
        span = 2 ** (self.bits - len(cleaned))
        lo = int(cleaned, 2) * span if cleaned else 0
        return lo, lo + span - 1


class TimeGridDomain(Domain):
    """A uniform grid of time slots, as in the Search Logs dataset.

    The paper divides each day into 16 units of time from Jan 1 2004
    onward.  We model a time grid by its number of slots and the number of
    slots per day; values are ``(day, slot_within_day)`` pairs which keeps
    the domain free of calendar arithmetic while preserving the structure
    the experiments need (a dyadic-sized, ordered time axis).
    """

    def __init__(self, num_slots: int, slots_per_day: int = 16, name: str = "t") -> None:
        super().__init__(num_slots, name=name)
        if slots_per_day <= 0:
            raise DomainError(f"slots_per_day must be positive, got {slots_per_day}")
        self.slots_per_day = int(slots_per_day)

    def index_of(self, value) -> int:
        if isinstance(value, tuple):
            day, slot = value
            day = int(day)
            slot = int(slot)
            if not 0 <= slot < self.slots_per_day:
                raise DomainError(
                    f"slot {slot} outside [0, {self.slots_per_day})"
                )
            index = day * self.slots_per_day + slot
            self.check_index(index)
            return index
        index = int(value)
        self.check_index(index)
        return index

    def value_of(self, index: int) -> tuple[int, int]:
        self.check_index(index)
        return divmod(index, self.slots_per_day)

    def day_interval(self, day: int) -> tuple[int, int]:
        """Inclusive index interval covering one whole day."""
        lo = int(day) * self.slots_per_day
        hi = lo + self.slots_per_day - 1
        self.check_interval(lo, hi)
        return lo, hi


class OrdinalDomain(Domain):
    """An explicitly enumerated, ordered set of labels.

    Used for small categorical-but-ordered attributes such as the grade
    example in the paper's introduction (``A < B < C < D < F`` read as an
    ordering of buckets).
    """

    def __init__(self, labels: Sequence, name: str = "A") -> None:
        labels = list(labels)
        if not labels:
            raise DomainError("OrdinalDomain requires at least one label")
        if len(set(labels)) != len(labels):
            raise DomainError("OrdinalDomain labels must be distinct")
        super().__init__(len(labels), name=name)
        self._labels = labels
        self._positions = {label: i for i, label in enumerate(labels)}

    def index_of(self, value) -> int:
        try:
            return self._positions[value]
        except KeyError:
            raise DomainError(f"label {value!r} not in ordinal domain") from None

    def value_of(self, index: int):
        self.check_index(index)
        return self._labels[index]

    @classmethod
    def from_values(cls, values: Iterable, name: str = "A") -> "OrdinalDomain":
        """Build a domain from the distinct values observed in ``values``."""
        distinct = sorted(set(values))
        return cls(distinct, name=name)


@dataclass(frozen=True)
class DomainSummary:
    """Lightweight description of a domain, for logging and reports."""

    kind: str
    size: int
    name: str

    @classmethod
    def of(cls, domain: Domain) -> "DomainSummary":
        return cls(kind=type(domain).__name__, size=domain.size, name=domain.name)
