"""Minimal in-memory relational substrate.

The paper formulates every task as a sequence of *counting queries* over a
single relation ``R(A, B, ...)`` with an ordered *range attribute* ``A``::

    c([x, y]) = Select count(*) From R Where x <= R.A <= y

This subpackage provides that substrate:

* :mod:`repro.db.domain` — ordered domains for the range attribute
  (integers, IP-style bit-prefix addresses, time grids), including the
  dyadic/hierarchical structure the ``H`` query needs.
* :mod:`repro.db.relation` — a tiny column-store :class:`Relation` with
  schema checking and record-level neighbour operations (add/remove one
  tuple), which is exactly the neighbouring-database relation used by
  differential privacy.
* :mod:`repro.db.query` — :class:`RangeCountQuery` objects, a small parser
  for the paper's SQL-like syntax, and evaluation against a relation.
* :mod:`repro.db.index` — a sorted-column index so that unit-count
  histograms and range counts are computed in ``O(log N)`` per query rather
  than by scanning.
* :mod:`repro.db.histogram` — turning a relation + domain into the vector
  of unit-length counts ``L(I)`` that all estimators consume.
"""

from repro.db.domain import (
    Domain,
    IntegerDomain,
    IPPrefixDomain,
    TimeGridDomain,
    OrdinalDomain,
)
from repro.db.relation import Column, Relation, Schema
from repro.db.query import RangeCountQuery, parse_count_query
from repro.db.index import SortedColumnIndex
from repro.db.histogram import HistogramBuilder, delta_counts, unit_counts

__all__ = [
    "Domain",
    "IntegerDomain",
    "IPPrefixDomain",
    "TimeGridDomain",
    "OrdinalDomain",
    "Column",
    "Relation",
    "Schema",
    "RangeCountQuery",
    "parse_count_query",
    "SortedColumnIndex",
    "HistogramBuilder",
    "unit_counts",
    "delta_counts",
]
