"""Sorted-column index for fast range counting.

Building the unit-count vector ``L(I)`` and answering ad-hoc range counts
by scanning the relation is ``O(N)`` per query.  The experiments evaluate
tens of thousands of range queries on relations with hundreds of thousands
of tuples, so we keep a sorted array of the range attribute's domain
indexes and answer each count with two binary searches.
"""

from __future__ import annotations

import numpy as np

from repro.db.domain import Domain
from repro.db.relation import Relation
from repro.exceptions import QueryError
from repro.utils.arrays import as_range_bounds

__all__ = ["SortedColumnIndex"]


class SortedColumnIndex:
    """Index over one relation column bound to an ordered domain.

    The index is immutable; build a new one if the relation changes.  This
    matches the library's copy-on-write :class:`~repro.db.relation.Relation`.
    """

    def __init__(self, domain: Domain, indexes: np.ndarray) -> None:
        indexes = np.asarray(indexes, dtype=np.int64)
        if indexes.ndim != 1:
            raise QueryError("index requires a 1-dimensional array of bucket indexes")
        if indexes.size and (indexes.min() < 0 or indexes.max() >= domain.size):
            raise QueryError(
                "bucket indexes outside the domain: "
                f"range [{indexes.min()}, {indexes.max()}] vs domain size {domain.size}"
            )
        self.domain = domain
        self._sorted = np.sort(indexes)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def build(cls, relation: Relation, attribute: str) -> "SortedColumnIndex":
        """Index ``relation.attribute`` using the column's declared domain."""
        column = relation.schema.column(attribute)
        if column.domain is None:
            raise QueryError(
                f"column {attribute!r} has no domain; cannot build a range index"
            )
        return cls(column.domain, relation.attribute_indexes(attribute))

    @classmethod
    def from_indexes(cls, domain: Domain, indexes) -> "SortedColumnIndex":
        """Index a raw sequence of bucket indexes (no relation required)."""
        return cls(domain, np.asarray(list(indexes), dtype=np.int64))

    # -- queries ---------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of indexed records."""
        return int(self._sorted.size)

    def count_range(self, lo: int, hi: int) -> int:
        """Count records with bucket index in ``[lo, hi]`` (inclusive)."""
        self.domain.check_interval(lo, hi)
        left = np.searchsorted(self._sorted, lo, side="left")
        right = np.searchsorted(self._sorted, hi, side="right")
        return int(right - left)

    def count_ranges(self, los, his) -> np.ndarray:
        """Count records for a whole batch of inclusive ranges at once.

        ``los`` and ``his`` are equal-length integer arrays; the result is
        an ``int64`` array of the same length.  The entire batch costs two
        :func:`numpy.searchsorted` calls, so answering a million ranges is
        barely slower than answering one.
        """
        los, his = as_range_bounds(los, his, self.domain.size)
        left = np.searchsorted(self._sorted, los, side="left")
        right = np.searchsorted(self._sorted, his, side="right")
        return (right - left).astype(np.int64)

    def count_unit(self, bucket: int) -> int:
        """Count records falling in a single bucket."""
        return self.count_range(bucket, bucket)

    def unit_counts(self) -> np.ndarray:
        """The full histogram ``L(I)`` as a float array of length ``domain.size``.

        Float (not int) because every downstream estimator works with
        real-valued noisy counts; keeping one dtype avoids silent copies.
        """
        counts = np.bincount(self._sorted, minlength=self.domain.size)
        return counts.astype(np.float64)
