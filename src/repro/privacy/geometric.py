"""The two-sided geometric mechanism (Ghosh, Roughgarden, Sundararajan).

The paper's introduction cites the geometric mechanism as the mechanism
proved *optimal* for a single counting query under ε-differential privacy.
We include it as (a) an alternative noise source for integer-valued
counts, and (b) a baseline in the integrality ablation: it shows that the
accuracy gains of constrained inference are not an artefact of the Laplace
mechanism producing non-integer outputs.

The mechanism adds noise ``Z`` with ``Pr[Z = z] ∝ α^{|z|}`` where
``α = exp(-ε/Δ)``; for sensitivity-Δ queries this is ε-DP, and its
variance ``2α/(1-α)²`` is slightly below the Laplace variance at the same
ε.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SensitivityError
from repro.privacy.definitions import PrivacyParameters
from repro.utils.random import as_generator, trial_streams

__all__ = [
    "GeometricMechanism",
    "two_sided_geometric_noise",
    "two_sided_geometric_noise_matrix",
]


def two_sided_geometric_noise(
    alpha: float, size: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Integer noise with ``Pr[Z = z] = (1-α)/(1+α) · α^{|z|}``.

    Sampled as the difference of two i.i.d. geometric variables, which has
    exactly the two-sided geometric law.
    """
    if not 0.0 <= alpha < 1.0:
        raise SensitivityError(f"alpha must be in [0, 1), got {alpha}")
    if size < 0:
        raise SensitivityError(f"size must be non-negative, got {size}")
    if alpha == 0.0:
        return np.zeros(size, dtype=np.float64)
    generator = as_generator(rng)
    # numpy's geometric counts trials until first success (support starting
    # at 1); subtracting two shifted copies gives the two-sided law with
    # parameter alpha = 1 - p.
    p = 1.0 - alpha
    left = generator.geometric(p, size=size) - 1
    right = generator.geometric(p, size=size) - 1
    return (left - right).astype(np.float64)


def two_sided_geometric_noise_matrix(
    alpha: float, trials: int, size: int, rng=None
) -> np.ndarray:
    """A ``(trials, size)`` matrix of two-sided geometric samples.

    Single streams draw the whole matrix in one pair of RNG calls; a
    per-trial seed schedule reproduces ``trials`` scalar
    :func:`two_sided_geometric_noise` calls bit-for-bit.
    """
    if not 0.0 <= alpha < 1.0:
        raise SensitivityError(f"alpha must be in [0, 1), got {alpha}")
    if size < 0:
        raise SensitivityError(f"size must be non-negative, got {size}")
    if trials < 0:
        raise SensitivityError(f"trials must be non-negative, got {trials}")
    streams = trial_streams(rng, trials)
    if alpha == 0.0:
        return np.zeros((trials, size), dtype=np.float64)
    if streams is None:
        generator = as_generator(rng)
        p = 1.0 - alpha
        left = generator.geometric(p, size=(trials, size)) - 1
        right = generator.geometric(p, size=(trials, size)) - 1
        return (left - right).astype(np.float64)
    matrix = np.empty((trials, size), dtype=np.float64)
    for trial, stream in enumerate(streams):
        matrix[trial] = two_sided_geometric_noise(alpha, size, stream)
    return matrix


@dataclass(frozen=True)
class GeometricMechanism:
    """Adds two-sided geometric noise calibrated to sensitivity and ε."""

    sensitivity: float
    params: PrivacyParameters

    def __post_init__(self) -> None:
        if self.sensitivity <= 0:
            raise SensitivityError(
                f"sensitivity must be positive, got {self.sensitivity}"
            )

    @property
    def alpha(self) -> float:
        """The geometric decay parameter ``exp(-ε/Δ)``."""
        return float(np.exp(-self.params.epsilon / self.sensitivity))

    @property
    def per_query_variance(self) -> float:
        """Variance of the added noise: ``2α/(1-α)²``."""
        alpha = self.alpha
        return 2.0 * alpha / (1.0 - alpha) ** 2

    def randomize(
        self, true_answers, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Return the noisy, integer-valued ε-DP answers."""
        answers = np.asarray(true_answers, dtype=np.float64)
        noise = two_sided_geometric_noise(self.alpha, answers.size, rng)
        return answers + noise.reshape(answers.shape)

    def randomize_many(self, true_answers, trials: int, rng=None) -> np.ndarray:
        """``(trials, d)`` independent noisy answers for one true vector."""
        answers = np.asarray(true_answers, dtype=np.float64).reshape(-1)
        noise = two_sided_geometric_noise_matrix(self.alpha, trials, answers.size, rng)
        return answers[np.newaxis, :] + noise
