"""Privacy-budget accounting by sequential composition.

Section 2.1 of the paper notes that answering the i-th query sequence with
an εᵢ-differentially private mechanism makes the whole interaction
(Σ εᵢ)-differentially private.  :class:`PrivacyBudget` tracks that sum so
an analyst session (see the examples) cannot silently exceed its total
budget, and records what each slice was spent on for reporting.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.exceptions import BudgetExhaustedError, PrivacyBudgetError
from repro.privacy.definitions import PrivacyParameters

__all__ = ["BudgetSpend", "PrivacyBudget"]


@dataclass(frozen=True)
class BudgetSpend:
    """A single charge against the budget."""

    label: str
    params: PrivacyParameters

    @property
    def epsilon(self) -> float:
        return self.params.epsilon


@dataclass
class PrivacyBudget:
    """Tracks cumulative ε spending under sequential composition.

    Parameters
    ----------
    total:
        The overall privacy parameters the data owner is willing to offer
        for the whole interaction.
    """

    total: PrivacyParameters
    _spent: list[BudgetSpend] = field(default_factory=list, init=False, repr=False)
    #: running Σεᵢ, updated in the same order spends are appended, so it is
    #: bitwise-equal to re-summing the history left to right — but O(1) to
    #: read, which matters on the serving path where every materialization
    #: pre-checks the budget.
    _spent_total: float = field(default=0.0, init=False, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    # -- accounting ---------------------------------------------------------

    @property
    def spent_epsilon(self) -> float:
        """Total ε consumed so far (maintained incrementally; O(1))."""
        return self._spent_total

    @property
    def remaining_epsilon(self) -> float:
        """ε still available (never negative)."""
        return max(0.0, self.total.epsilon - self.spent_epsilon)

    @property
    def history(self) -> list[BudgetSpend]:
        """The spends made so far, in order."""
        return list(self._spent)

    def can_spend(self, epsilon: float) -> bool:
        """Would a charge of ``epsilon`` stay within the budget?"""
        if epsilon <= 0:
            raise PrivacyBudgetError(f"epsilon must be positive, got {epsilon}")
        return epsilon <= self.remaining_epsilon + 1e-12

    def spend(self, epsilon: float, label: str = "query") -> PrivacyParameters:
        """Charge ``epsilon``, returning the parameters for the sub-mechanism.

        Raises :class:`BudgetExhaustedError` (a
        :class:`~repro.exceptions.PrivacyBudgetError`) if the charge
        would exceed the total; nothing is recorded in that case.

        The check-and-append is guarded by a lock so concurrent spenders
        (e.g. serving-engine threads) cannot jointly oversubscribe ε.
        """
        with self._lock:
            if not self.can_spend(epsilon):
                raise BudgetExhaustedError(
                    f"cannot spend ε={epsilon:g}: only {self.remaining_epsilon:g} of "
                    f"{self.total.epsilon:g} remains"
                )
            params = PrivacyParameters(epsilon, self.total.delta)
            self._spent.append(BudgetSpend(label=label, params=params))
            self._spent_total += params.epsilon
            return params

    def spend_fraction(self, fraction: float, label: str = "query") -> PrivacyParameters:
        """Charge a fraction of the *total* budget (not of the remainder)."""
        if not 0.0 < fraction <= 1.0:
            raise PrivacyBudgetError(f"fraction must be in (0, 1], got {fraction}")
        return self.spend(self.total.epsilon * fraction, label=label)

    def summary(self) -> str:
        """Human-readable account of spending, for reports and examples."""
        lines = [
            f"privacy budget: total {self.total}, spent ε={self.spent_epsilon:g}, "
            f"remaining ε={self.remaining_epsilon:g}"
        ]
        for spend in self._spent:
            lines.append(f"  - {spend.label}: {spend.params}")
        return "\n".join(lines)
