"""Core differential-privacy definitions.

The paper (Definition 2.1) uses record-level ε-differential privacy: two
databases are neighbours when one can be obtained from the other by adding
or removing a single tuple, and a randomized algorithm ``A`` is
ε-differentially private when for all neighbours ``I, I'`` and output sets
``S``: ``Pr[A(I) ∈ S] ≤ exp(ε) · Pr[A(I') ∈ S]``.

This module holds the parameter object shared by all mechanisms and the
enumeration of neighbouring instances used by the sensitivity and audit
harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.db.relation import Relation
from repro.exceptions import PrivacyBudgetError

__all__ = ["PrivacyParameters", "neighboring_relations"]


@dataclass(frozen=True)
class PrivacyParameters:
    """ε (and optional δ) privacy parameters.

    The paper's mechanisms are pure ε-DP; δ only appears in the Appendix E
    usefulness comparison, so it defaults to zero and is validated but not
    consumed by the Laplace/geometric mechanisms.
    """

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise PrivacyBudgetError(f"epsilon must be positive, got {self.epsilon}")
        if not 0.0 <= self.delta < 1.0:
            raise PrivacyBudgetError(f"delta must be in [0, 1), got {self.delta}")

    def split(self, fractions: Sequence[float]) -> list["PrivacyParameters"]:
        """Split ε across sub-tasks by the given fractions (must sum to ≤ 1).

        Sequential composition means running the parts on the same data is
        (Σ εᵢ)-differentially private, hence still within this budget.
        """
        if not fractions:
            raise PrivacyBudgetError("fractions must be non-empty")
        if any(f <= 0 for f in fractions):
            raise PrivacyBudgetError(f"fractions must be positive, got {fractions}")
        if sum(fractions) > 1.0 + 1e-12:
            raise PrivacyBudgetError(
                f"fractions sum to {sum(fractions)}, exceeding the whole budget"
            )
        return [
            PrivacyParameters(self.epsilon * f, self.delta * f) for f in fractions
        ]

    def scaled(self, factor: float) -> "PrivacyParameters":
        """A new parameter object with ε multiplied by ``factor``."""
        if factor <= 0:
            raise PrivacyBudgetError(f"factor must be positive, got {factor}")
        return PrivacyParameters(self.epsilon * factor, self.delta)

    def __str__(self) -> str:
        if self.delta:
            return f"(ε={self.epsilon:g}, δ={self.delta:g})"
        return f"ε={self.epsilon:g}"


def neighboring_relations(
    relation: Relation, candidate_records: Iterable[Sequence] = ()
) -> Iterator[Relation]:
    """Enumerate neighbouring database instances of ``relation``.

    Yields every instance obtainable by removing one record, then every
    instance obtainable by adding one of the supplied candidate records.
    The removal side is exhaustive; additions are caller-controlled because
    the space of addable tuples is the full domain product.
    """
    yield from relation.neighbors(candidate_records)
