"""The Laplace mechanism (Proposition 1 of the paper).

Given a query sequence ``Q`` of length ``d`` with L1 sensitivity ``Δ_Q``,
the randomized algorithm::

    Q~(I) = Q(I) + <Lap(Δ_Q / ε)>_d

is ε-differentially private.  This module provides the noise primitive,
the mechanism object that pairs a sensitivity with a privacy parameter,
and the analytic per-query error (variance) formulas used throughout the
utility analysis (``error(L~) = 2n/ε²`` etc.).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SensitivityError
from repro.privacy.definitions import PrivacyParameters
from repro.utils.random import as_generator, trial_streams

__all__ = [
    "laplace_noise",
    "laplace_noise_matrix",
    "laplace_error_per_query",
    "LaplaceMechanism",
]


def laplace_noise(
    scale: float, size: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """A vector of ``size`` i.i.d. samples from a zero-mean Laplace with ``scale``.

    ``scale == 0`` returns exact zeros, which lets callers express the
    "no-noise" baseline without special-casing.
    """
    if scale < 0:
        raise SensitivityError(f"noise scale must be non-negative, got {scale}")
    if size < 0:
        raise SensitivityError(f"size must be non-negative, got {size}")
    if scale == 0:
        return np.zeros(size, dtype=np.float64)
    generator = as_generator(rng)
    return generator.laplace(loc=0.0, scale=scale, size=size)


def laplace_noise_matrix(
    scale: float, trials: int, size: int, rng=None
) -> np.ndarray:
    """A ``(trials, size)`` matrix of i.i.d. Laplace samples.

    This is the trial-batched counterpart of :func:`laplace_noise`.  With a
    single stream (``None`` / int seed / ``Generator``) the whole matrix is
    drawn in a couple of vectorized RNG calls; with a per-trial seed
    schedule (see :func:`repro.utils.random.trial_streams`) row ``t`` is
    drawn exactly as the scalar call ``laplace_noise(scale, size,
    schedule[t])`` would draw it, so batched and scalar pipelines produce
    identical bits.
    """
    if scale < 0:
        raise SensitivityError(f"noise scale must be non-negative, got {scale}")
    if size < 0:
        raise SensitivityError(f"size must be non-negative, got {size}")
    if trials < 0:
        raise SensitivityError(f"trials must be non-negative, got {trials}")
    streams = trial_streams(rng, trials)
    if scale == 0:
        return np.zeros((trials, size), dtype=np.float64)
    if streams is None:
        # Lap(b) is the difference of two i.i.d. Exp(b) variables; numpy's
        # ziggurat exponential sampler is markedly faster than the
        # inverse-CDF ``laplace`` transform.  Only the seed-schedule path
        # promises bit-compatibility with the scalar sampler, so the fast
        # path is free to use the cheaper (exactly Laplace-distributed)
        # construction.
        generator = as_generator(rng)
        matrix = generator.standard_exponential(size=(trials, size))
        matrix -= generator.standard_exponential(size=(trials, size))
        matrix *= scale
        return matrix
    matrix = np.empty((trials, size), dtype=np.float64)
    for trial, stream in enumerate(streams):
        matrix[trial] = laplace_noise(scale, size, stream)
    return matrix


def laplace_error_per_query(sensitivity: float, epsilon: float) -> float:
    """Expected squared error of one noisy answer: ``Var(Lap(Δ/ε)) = 2Δ²/ε²``."""
    if sensitivity < 0:
        raise SensitivityError(f"sensitivity must be non-negative, got {sensitivity}")
    if epsilon <= 0:
        raise SensitivityError(f"epsilon must be positive, got {epsilon}")
    scale = sensitivity / epsilon
    return 2.0 * scale * scale


@dataclass(frozen=True)
class LaplaceMechanism:
    """Adds calibrated Laplace noise to the answers of a query sequence.

    Parameters
    ----------
    sensitivity:
        L1 sensitivity ``Δ_Q`` of the query sequence being answered.
    params:
        The ε (and δ, unused here) privacy parameters.
    """

    sensitivity: float
    params: PrivacyParameters

    def __post_init__(self) -> None:
        if self.sensitivity <= 0:
            raise SensitivityError(
                f"sensitivity must be positive, got {self.sensitivity}"
            )

    @property
    def scale(self) -> float:
        """Scale of the Laplace noise: ``Δ_Q / ε``."""
        return self.sensitivity / self.params.epsilon

    @property
    def per_query_variance(self) -> float:
        """Variance (expected squared error) added to each individual answer."""
        return 2.0 * self.scale * self.scale

    def randomize(
        self, true_answers, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Return ``true_answers + <Lap(Δ_Q/ε)>``; the ε-DP noisy output."""
        answers = np.asarray(true_answers, dtype=np.float64)
        noise = laplace_noise(self.scale, answers.size, rng).reshape(answers.shape)
        return answers + noise

    def randomize_many(
        self, true_answers, trials: int, rng=None
    ) -> np.ndarray:
        """``(trials, d)`` independent noisy answers for one true vector.

        Row ``t`` is distributed exactly like one :meth:`randomize` call;
        with a per-trial seed schedule the rows are bit-for-bit equal to
        the corresponding scalar calls.
        """
        answers = np.asarray(true_answers, dtype=np.float64).reshape(-1)
        noise = laplace_noise_matrix(self.scale, trials, answers.size, rng)
        # The noise matrix is freshly drawn, so shift it in place rather
        # than allocating a second (trials, d) array.
        noise += answers[np.newaxis, :]
        return noise

    def log_density_ratio_bound(self) -> float:
        """The largest log-likelihood ratio between neighbouring outputs.

        For the Laplace mechanism this equals ε (per the sliding-property
        argument in the paper's Lemma 1/Proposition 1 background); exposed
        for the audit harness.
        """
        return self.params.epsilon
