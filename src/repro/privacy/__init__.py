"""Differential-privacy layer: mechanisms, budget accounting, auditing.

This subpackage implements the data-owner side of Figure 1:

* :mod:`repro.privacy.definitions` — ε-differential privacy parameters and
  the record-level neighbouring relation.
* :mod:`repro.privacy.laplace` — the Laplace mechanism of Dwork et al.
  (Proposition 1 of the paper): add i.i.d. ``Lap(Δ_Q/ε)`` noise to each
  answer in a query sequence.
* :mod:`repro.privacy.geometric` — the two-sided geometric mechanism of
  Ghosh et al., the mechanism the introduction cites as optimal for a
  single counting query; included as an alternative noise source and used
  by the integrality ablation.
* :mod:`repro.privacy.budget` — a sequential-composition budget accountant
  (the paper's "Σεᵢ-differentially private" protocol for multiple query
  sequences).
* :mod:`repro.privacy.audit` — an empirical ε audit harness that checks,
  on small instances, that output likelihood ratios between neighbouring
  databases stay within ``exp(ε)``.
"""

from repro.privacy.definitions import PrivacyParameters, neighboring_relations
from repro.privacy.laplace import LaplaceMechanism, laplace_noise, laplace_error_per_query
from repro.privacy.geometric import GeometricMechanism
from repro.privacy.budget import PrivacyBudget, BudgetSpend
from repro.privacy.audit import empirical_epsilon, audit_laplace_mechanism

__all__ = [
    "PrivacyParameters",
    "neighboring_relations",
    "LaplaceMechanism",
    "laplace_noise",
    "laplace_error_per_query",
    "GeometricMechanism",
    "PrivacyBudget",
    "BudgetSpend",
    "empirical_epsilon",
    "audit_laplace_mechanism",
]
