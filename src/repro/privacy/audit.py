"""Empirical differential-privacy auditing.

The proofs in the paper establish ε-DP analytically; this module provides
a complementary empirical check used by the test suite and by the
``privacy_budget_tour`` example: run a mechanism many times on a pair of
neighbouring inputs, histogram the (discretised) outputs, and estimate the
largest observed log-likelihood ratio.  For a correctly calibrated
mechanism the estimate stays at or below ε up to sampling error; for a
deliberately mis-calibrated mechanism (noise scaled to the wrong
sensitivity) it exceeds ε, which is how the tests confirm the audit has
teeth.

This is a diagnostic, not a proof: it can only ever produce a *lower*
bound on the true privacy loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ExperimentError
from repro.utils.random import as_generator, spawn_generators

__all__ = [
    "empirical_epsilon",
    "audit_laplace_mechanism",
    "audit_spend_trail",
    "AuditResult",
]


@dataclass(frozen=True)
class AuditResult:
    """Outcome of an empirical privacy audit."""

    estimated_epsilon: float
    claimed_epsilon: float
    trials: int
    bins: int

    @property
    def within_claim(self) -> bool:
        """True when the empirical estimate does not exceed the claim.

        The estimate is a noisy lower bound on the true privacy loss, so a
        slack term covering its sampling error is allowed: correctly
        calibrated mechanisms land within ``claim + slack``, while
        mechanisms whose noise is under-calibrated by a meaningful factor
        exceed it.
        """
        slack = 5.0 / np.sqrt(self.trials) + 0.35 * self.claimed_epsilon
        return self.estimated_epsilon <= self.claimed_epsilon + slack


def empirical_epsilon(
    sample_a: np.ndarray,
    sample_b: np.ndarray,
    bins: int = 16,
    min_count: int = 20,
) -> float:
    """Largest observed log ratio between the output distributions of two runs.

    ``sample_a`` and ``sample_b`` are 1-D arrays of scalar mechanism
    outputs on two neighbouring databases.  Outputs are histogrammed on a
    common grid spanning the central mass of the pooled samples (0.5th to
    99.5th percentile — extreme-tail bins carry almost no samples and give
    meaninglessly noisy ratio estimates); bins with fewer than
    ``min_count`` samples on either side are ignored for the same reason.
    The result is a *lower-bound* style estimate of the privacy loss: it
    can under-estimate badly when the two distributions barely overlap,
    but it never manufactures loss that was not observed.
    """
    sample_a = np.asarray(sample_a, dtype=np.float64).ravel()
    sample_b = np.asarray(sample_b, dtype=np.float64).ravel()
    if sample_a.size == 0 or sample_b.size == 0:
        raise ExperimentError("both samples must be non-empty")
    if bins < 2:
        raise ExperimentError(f"bins must be >= 2, got {bins}")
    pooled = np.concatenate((sample_a, sample_b))
    lo, hi = np.percentile(pooled, [0.5, 99.5])
    if lo == hi:
        return 0.0
    edges = np.linspace(lo, hi, bins + 1)
    hist_a, _ = np.histogram(sample_a, bins=edges)
    hist_b, _ = np.histogram(sample_b, bins=edges)
    mask = (hist_a >= min_count) & (hist_b >= min_count)
    if not np.any(mask):
        return 0.0
    prob_a = hist_a[mask] / sample_a.size
    prob_b = hist_b[mask] / sample_b.size
    ratios = np.abs(np.log(prob_a) - np.log(prob_b))
    return float(ratios.max())


def audit_spend_trail(
    budget,
    expected_epsilons,
    label_prefix: str | None = None,
) -> None:
    """Verify a budget's spend history matches an expected ε schedule exactly.

    Sequential composition (Section 2.1) makes the audit trail the privacy
    guarantee: the interaction is (Σεᵢ)-DP *for the εᵢ actually charged*.
    This helper cross-checks a :class:`~repro.privacy.budget.PrivacyBudget`
    after the fact — the epoch-advancing engines use it in tests to prove
    that no epoch double-charged, no charge was skipped, and the running
    total is bit-exact against the recorded history.

    Parameters
    ----------
    budget:
        The :class:`~repro.privacy.budget.PrivacyBudget` to audit.
    expected_epsilons:
        The ε each successful charge should have spent, in order.
    label_prefix:
        When given, every recorded spend label must start with it (e.g.
        ``"epoch"`` for the streaming engine's per-epoch charges).

    Raises :class:`ExperimentError` on the first discrepancy.
    """
    expected = [float(e) for e in expected_epsilons]
    history = budget.history
    if len(history) != len(expected):
        raise ExperimentError(
            f"audit trail has {len(history)} spends, expected {len(expected)}: "
            f"{[spend.label for spend in history]}"
        )
    running = 0.0
    for i, (spend, epsilon) in enumerate(zip(history, expected)):
        if spend.epsilon != epsilon:
            raise ExperimentError(
                f"spend {i} ({spend.label!r}) charged ε={spend.epsilon!r}, "
                f"expected ε={epsilon!r}"
            )
        if label_prefix is not None and not spend.label.startswith(label_prefix):
            raise ExperimentError(
                f"spend {i} has label {spend.label!r}, expected prefix "
                f"{label_prefix!r}"
            )
        running += spend.epsilon
    if budget.spent_epsilon != running:
        raise ExperimentError(
            f"budget reports spent ε={budget.spent_epsilon!r} but the recorded "
            f"history sums to {running!r}; the running total has drifted"
        )


def audit_laplace_mechanism(
    answer_fn: Callable[[np.random.Generator], float],
    neighbor_answer_fn: Callable[[np.random.Generator], float],
    claimed_epsilon: float,
    trials: int = 20_000,
    bins: int = 16,
    rng: np.random.Generator | int | None = None,
) -> AuditResult:
    """Audit a scalar randomized query against its claimed ε.

    ``answer_fn`` / ``neighbor_answer_fn`` each map a random generator to
    one mechanism output, evaluated on a fixed pair of neighbouring
    databases chosen by the caller.
    """
    if claimed_epsilon <= 0:
        raise ExperimentError(f"claimed_epsilon must be positive, got {claimed_epsilon}")
    if trials < 100:
        raise ExperimentError(f"need at least 100 trials, got {trials}")
    parent = as_generator(rng)
    gen_a, gen_b = spawn_generators(parent, 2)
    outputs_a = np.array([answer_fn(gen_a) for _ in range(trials)])
    outputs_b = np.array([neighbor_answer_fn(gen_b) for _ in range(trials)])
    estimate = empirical_epsilon(outputs_a, outputs_b, bins=bins)
    return AuditResult(
        estimated_epsilon=estimate,
        claimed_epsilon=claimed_epsilon,
        trials=trials,
        bins=bins,
    )
