"""Estimator interfaces shared by the experiments, benchmarks, and examples.

Two task-specific interfaces:

* :class:`UnattributedEstimator` — given the multiset of unit counts,
  produce an estimate of the *sorted* count sequence (the unattributed
  histogram / degree sequence).  One call, one vector.
* :class:`RangeQueryEstimator` — given the full-domain unit counts,
  run the private mechanism once and return a
  :class:`FittedRangeEstimate` that can answer unit counts and arbitrary
  range queries repeatedly (the universal-histogram contract: one noisy
  release, any number of post-hoc questions).

Both interfaces take the true counts because this library plays both roles
of Figure 1 in a single process: the "data owner" half computes the true
answers and adds calibrated noise; the "analyst" half only ever sees the
noisy output and the constraints.  The split is preserved internally — all
post-processing consumes only the mechanism output.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import QueryError
from repro.queries.workload import RangeQuerySpec, RangeWorkload
from repro.utils.arrays import as_float_vector
from repro.utils.random import as_generator, trial_streams

__all__ = [
    "UnattributedEstimator",
    "RangeQueryEstimator",
    "FittedRangeEstimate",
    "FittedRangeEstimateBatch",
]


def _check_trials(trials: int) -> int:
    if trials <= 0:
        raise QueryError(f"trials must be positive, got {trials}")
    return int(trials)


def _per_trial_streams(rng, trials: int) -> list[np.random.Generator]:
    """Streams for a default (loop-based) ``*_many`` implementation.

    A seed schedule yields its per-trial generators; a single stream is
    shared sequentially across trials, matching what a caller looping over
    the scalar API with one generator would consume.
    """
    streams = trial_streams(rng, trials)
    if streams is not None:
        return streams
    shared = as_generator(rng)
    return [shared] * trials


class UnattributedEstimator(abc.ABC):
    """Strategy for estimating an unattributed histogram (sorted counts)."""

    #: short identifier used in tables and figures ("S~", "S_r", "S_bar", ...)
    name: str = "unattributed"

    @abc.abstractmethod
    def estimate(
        self,
        counts,
        epsilon: float,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Estimate the sorted count sequence of ``counts`` under ε-DP.

        ``counts`` is the multiset of true unit counts in any order; the
        returned vector has the same length and estimates
        ``sort(counts)``.
        """

    def estimate_many(
        self,
        counts,
        epsilon: float,
        trials: int,
        rng=None,
    ) -> np.ndarray:
        """``trials`` independent estimates, stacked as a ``(trials, n)`` matrix.

        ``rng`` is a single stream or a per-trial seed schedule (see
        :func:`repro.utils.random.trial_streams`); with a schedule, row
        ``t`` is bit-for-bit the scalar ``estimate(counts, epsilon,
        rng=schedule[t])``.  Subclasses override this loop with a truly
        batched pipeline; the base implementation guarantees the contract
        for any estimator.
        """
        trials = _check_trials(trials)
        streams = _per_trial_streams(rng, trials)
        return np.stack(
            [self.estimate(counts, epsilon, rng=stream) for stream in streams]
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class FittedRangeEstimate:
    """The analyst-side result of one universal-histogram release.

    Attributes
    ----------
    name:
        The estimator that produced it.
    epsilon:
        Privacy parameter consumed by the release.
    domain_size:
        Size of the (possibly padded) domain the estimate covers.
    unit_estimates:
        Estimated unit counts (length ``domain_size``).
    range_fn:
        Optional specialised range-query function; when absent, range
        queries are answered by summing ``unit_estimates``.
    """

    name: str
    epsilon: float
    domain_size: int
    unit_estimates: np.ndarray
    range_fn: Callable[[int, int], float] | None = None

    def __post_init__(self) -> None:
        self.unit_estimates = as_float_vector(self.unit_estimates, name="unit_estimates")
        if self.unit_estimates.size != self.domain_size:
            raise QueryError(
                f"unit estimates have length {self.unit_estimates.size}, "
                f"expected {self.domain_size}"
            )

    def unit_counts(self) -> np.ndarray:
        """Estimated unit counts (copy)."""
        return self.unit_estimates.copy()

    def range_query(self, lo: int, hi: int) -> float:
        """Estimate ``c([lo, hi])``."""
        if not 0 <= lo <= hi < self.domain_size:
            raise QueryError(
                f"invalid range [{lo}, {hi}] for domain size {self.domain_size}"
            )
        if self.range_fn is not None:
            return float(self.range_fn(lo, hi))
        return float(self.unit_estimates[lo : hi + 1].sum())

    def answer_workload(self, workload: RangeWorkload | list[RangeQuerySpec]) -> np.ndarray:
        """Estimates for every query in a workload, in order."""
        return np.array([self.range_query(q.lo, q.hi) for q in workload])

    def total(self) -> float:
        """Estimate of the total number of records."""
        return self.range_query(0, self.domain_size - 1)


@dataclass
class FittedRangeEstimateBatch:
    """``trials`` stacked universal-histogram releases from one estimator.

    The trial-batched counterpart of :class:`FittedRangeEstimate`: row
    ``t`` of every array is trial ``t``'s release, and every query method
    returns one value per trial.

    Attributes
    ----------
    name:
        The estimator that produced the batch.
    epsilon:
        Privacy parameter consumed by each release.
    domain_size:
        Size of the (possibly padded) domain the estimates cover.
    unit_estimates:
        ``(trials, domain_size)`` matrix of estimated unit counts.
    range_fn:
        Optional specialised range-query function mapping ``(lo, hi)`` to a
        ``(trials,)`` vector; when absent, range queries sum
        ``unit_estimates`` (bit-identical to the scalar slice-and-sum).
    workload_fn:
        Optional bulk answering function mapping bound arrays
        ``(los, his)`` to a ``(trials, num_queries)`` matrix; used by
        :meth:`answer_workload` to answer whole workloads in a few
        vectorized passes.
    """

    name: str
    epsilon: float
    domain_size: int
    unit_estimates: np.ndarray
    range_fn: Callable[[int, int], np.ndarray] | None = None
    workload_fn: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None

    def __post_init__(self) -> None:
        self.unit_estimates = np.asarray(self.unit_estimates, dtype=np.float64)
        if (
            self.unit_estimates.ndim != 2
            or self.unit_estimates.shape[1] != self.domain_size
        ):
            raise QueryError(
                f"unit estimates have shape {self.unit_estimates.shape}, "
                f"expected (trials, {self.domain_size})"
            )

    @property
    def trials(self) -> int:
        """Number of stacked releases (matrix rows)."""
        return int(self.unit_estimates.shape[0])

    def __len__(self) -> int:
        return self.trials

    def unit_counts(self) -> np.ndarray:
        """Estimated unit counts, ``(trials, domain_size)`` (copy)."""
        return self.unit_estimates.copy()

    def range_query(self, lo: int, hi: int) -> np.ndarray:
        """Per-trial estimates of ``c([lo, hi])`` as a ``(trials,)`` vector."""
        if not 0 <= lo <= hi < self.domain_size:
            raise QueryError(
                f"invalid range [{lo}, {hi}] for domain size {self.domain_size}"
            )
        if self.range_fn is not None:
            return np.asarray(self.range_fn(lo, hi), dtype=np.float64)
        return self.unit_estimates[:, lo : hi + 1].sum(axis=1)

    def answer_workload(
        self, workload: RangeWorkload | list[RangeQuerySpec]
    ) -> np.ndarray:
        """Per-trial estimates for a whole workload: ``(trials, num_queries)``.

        Uses the estimator-specific ``workload_fn`` when present, otherwise
        one prefix-sum pass over the unit estimates — either way a few
        matrix operations replace the per-trial, per-query Python loop of
        the scalar path.
        """
        if isinstance(workload, RangeWorkload):
            los, his = workload.bounds()
        else:
            queries = list(workload)
            los = np.fromiter((q.lo for q in queries), dtype=np.int64, count=len(queries))
            his = np.fromiter((q.hi for q in queries), dtype=np.int64, count=len(queries))
        if los.size and (los.min() < 0 or his.max() >= self.domain_size):
            raise QueryError(
                f"workload exceeds the domain of size {self.domain_size}"
            )
        if los.size == 0:
            return np.zeros((self.trials, 0), dtype=np.float64)
        if self.workload_fn is not None:
            return np.asarray(self.workload_fn(los, his), dtype=np.float64)
        if self.range_fn is not None:
            # A specialised range function without a bulk variant: answer
            # query by query, each call vectorized across trials.
            answers = np.empty((self.trials, los.size), dtype=np.float64)
            for column, (lo, hi) in enumerate(zip(los, his)):
                answers[:, column] = self.range_query(int(lo), int(hi))
            return answers
        prefix = np.concatenate(
            (
                np.zeros((self.trials, 1), dtype=np.float64),
                np.cumsum(self.unit_estimates, axis=1),
            ),
            axis=1,
        )
        return prefix[:, his + 1] - prefix[:, los]

    def total(self) -> np.ndarray:
        """Per-trial estimates of the total number of records."""
        return self.range_query(0, self.domain_size - 1)

    def trial(self, index: int) -> FittedRangeEstimate:
        """The ``index``-th release as a scalar :class:`FittedRangeEstimate`."""
        trials = self.trials
        if not -trials <= index < trials:
            raise QueryError(f"trial index {index} outside [0, {trials})")
        index = index % trials
        range_fn = None
        if self.range_fn is not None:
            batched_range_fn = self.range_fn

            def range_fn(lo: int, hi: int, _t: int = index) -> float:
                return float(batched_range_fn(lo, hi)[_t])

        return FittedRangeEstimate(
            name=self.name,
            epsilon=self.epsilon,
            domain_size=self.domain_size,
            unit_estimates=self.unit_estimates[index].copy(),
            range_fn=range_fn,
        )

    def __getitem__(self, index: int) -> FittedRangeEstimate:
        return self.trial(index)


class RangeQueryEstimator(abc.ABC):
    """Strategy for the universal-histogram task."""

    #: short identifier used in tables and figures ("L~", "H~", "H_bar", ...)
    name: str = "range"

    @abc.abstractmethod
    def fit(
        self,
        counts,
        epsilon: float,
        rng: np.random.Generator | int | None = None,
    ) -> FittedRangeEstimate:
        """Run the private release once and return the reusable estimate."""

    def fit_many(
        self,
        counts,
        epsilon: float,
        trials: int,
        rng=None,
    ) -> FittedRangeEstimateBatch:
        """``trials`` independent releases, stacked into one batch.

        ``rng`` is a single stream or a per-trial seed schedule; with a
        schedule, trial ``t`` of the batch is bit-for-bit the scalar
        ``fit(counts, epsilon, rng=schedule[t])``.  Subclasses override
        this loop with a truly batched noise→inference pipeline; the base
        implementation guarantees the contract for any estimator.
        """
        trials = _check_trials(trials)
        streams = _per_trial_streams(rng, trials)
        fits = [self.fit(counts, epsilon, rng=stream) for stream in streams]
        range_fn = None
        if any(fit.range_fn is not None for fit in fits):

            def range_fn(lo: int, hi: int) -> np.ndarray:
                return np.array([fit.range_query(lo, hi) for fit in fits])

        return FittedRangeEstimateBatch(
            name=self.name,
            epsilon=float(epsilon),
            domain_size=fits[0].domain_size,
            unit_estimates=np.stack([fit.unit_estimates for fit in fits]),
            range_fn=range_fn,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"
