"""Estimator interfaces shared by the experiments, benchmarks, and examples.

Two task-specific interfaces:

* :class:`UnattributedEstimator` — given the multiset of unit counts,
  produce an estimate of the *sorted* count sequence (the unattributed
  histogram / degree sequence).  One call, one vector.
* :class:`RangeQueryEstimator` — given the full-domain unit counts,
  run the private mechanism once and return a
  :class:`FittedRangeEstimate` that can answer unit counts and arbitrary
  range queries repeatedly (the universal-histogram contract: one noisy
  release, any number of post-hoc questions).

Both interfaces take the true counts because this library plays both roles
of Figure 1 in a single process: the "data owner" half computes the true
answers and adds calibrated noise; the "analyst" half only ever sees the
noisy output and the constraints.  The split is preserved internally — all
post-processing consumes only the mechanism output.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import QueryError
from repro.queries.workload import RangeQuerySpec, RangeWorkload
from repro.utils.arrays import as_float_vector

__all__ = ["UnattributedEstimator", "RangeQueryEstimator", "FittedRangeEstimate"]


class UnattributedEstimator(abc.ABC):
    """Strategy for estimating an unattributed histogram (sorted counts)."""

    #: short identifier used in tables and figures ("S~", "S_r", "S_bar", ...)
    name: str = "unattributed"

    @abc.abstractmethod
    def estimate(
        self,
        counts,
        epsilon: float,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Estimate the sorted count sequence of ``counts`` under ε-DP.

        ``counts`` is the multiset of true unit counts in any order; the
        returned vector has the same length and estimates
        ``sort(counts)``.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class FittedRangeEstimate:
    """The analyst-side result of one universal-histogram release.

    Attributes
    ----------
    name:
        The estimator that produced it.
    epsilon:
        Privacy parameter consumed by the release.
    domain_size:
        Size of the (possibly padded) domain the estimate covers.
    unit_estimates:
        Estimated unit counts (length ``domain_size``).
    range_fn:
        Optional specialised range-query function; when absent, range
        queries are answered by summing ``unit_estimates``.
    """

    name: str
    epsilon: float
    domain_size: int
    unit_estimates: np.ndarray
    range_fn: Callable[[int, int], float] | None = None

    def __post_init__(self) -> None:
        self.unit_estimates = as_float_vector(self.unit_estimates, name="unit_estimates")
        if self.unit_estimates.size != self.domain_size:
            raise QueryError(
                f"unit estimates have length {self.unit_estimates.size}, "
                f"expected {self.domain_size}"
            )

    def unit_counts(self) -> np.ndarray:
        """Estimated unit counts (copy)."""
        return self.unit_estimates.copy()

    def range_query(self, lo: int, hi: int) -> float:
        """Estimate ``c([lo, hi])``."""
        if not 0 <= lo <= hi < self.domain_size:
            raise QueryError(
                f"invalid range [{lo}, {hi}] for domain size {self.domain_size}"
            )
        if self.range_fn is not None:
            return float(self.range_fn(lo, hi))
        return float(self.unit_estimates[lo : hi + 1].sum())

    def answer_workload(self, workload: RangeWorkload | list[RangeQuerySpec]) -> np.ndarray:
        """Estimates for every query in a workload, in order."""
        return np.array([self.range_query(q.lo, q.hi) for q in workload])

    def total(self) -> float:
        """Estimate of the total number of records."""
        return self.range_query(0, self.domain_size - 1)


class RangeQueryEstimator(abc.ABC):
    """Strategy for the universal-histogram task."""

    #: short identifier used in tables and figures ("L~", "H~", "H_bar", ...)
    name: str = "range"

    @abc.abstractmethod
    def fit(
        self,
        counts,
        epsilon: float,
        rng: np.random.Generator | int | None = None,
    ) -> FittedRangeEstimate:
        """Run the private release once and return the reusable estimate."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"
