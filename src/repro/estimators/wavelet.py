"""The Haar-wavelet (Privelet) estimator, an external baseline.

Included to verify, as the paper's Related Work and Li et al. claim, that
the wavelet strategy's accuracy matches a binary hierarchical strategy.
The estimator noises the Haar coefficients with per-level scales whose
combined privacy loss is ε, reconstructs the unit counts, and answers
range queries by summing reconstructed counts (interior detail
coefficients cancel, so large ranges behave poly-logarithmically, just as
for ``H``).
"""

from __future__ import annotations

import numpy as np

from repro.db.histogram import pad_counts
from repro.estimators.base import (
    FittedRangeEstimate,
    FittedRangeEstimateBatch,
    RangeQueryEstimator,
)
from repro.inference.nonnegative import round_to_nonnegative_integers
from repro.queries.wavelet import HaarWaveletQuery
from repro.utils.arrays import as_float_vector

__all__ = ["WaveletEstimator"]


class WaveletEstimator(RangeQueryEstimator):
    """Privelet-style estimator over a binary domain.

    Parameters
    ----------
    round_output:
        Round the reconstructed unit counts to non-negative integers, for
        parity with the other estimators in the experiments.
    """

    name = "wavelet"

    def __init__(self, round_output: bool = False) -> None:
        self.round_output = round_output

    def fit(self, counts, epsilon, rng=None) -> FittedRangeEstimate:
        counts = as_float_vector(counts, name="counts")
        original_size = counts.size
        padded = pad_counts(counts, 2)
        query = HaarWaveletQuery(padded.size)
        coefficients = query.randomize(padded, epsilon, rng=rng)
        reconstructed = query.reconstruct(coefficients)[:original_size]
        if self.round_output:
            reconstructed = round_to_nonnegative_integers(reconstructed)
        return FittedRangeEstimate(
            name=self.name,
            epsilon=float(epsilon),
            domain_size=original_size,
            unit_estimates=reconstructed,
        )

    def fit_many(self, counts, epsilon, trials, rng=None) -> FittedRangeEstimateBatch:
        """``trials`` releases: one exact analysis, batched noise + synthesis."""
        counts = as_float_vector(counts, name="counts")
        original_size = counts.size
        padded = pad_counts(counts, 2)
        query = HaarWaveletQuery(padded.size)
        coefficients = query.randomize_many(padded, epsilon, trials, rng=rng)
        reconstructed = query.reconstruct_many(coefficients)[:, :original_size]
        if self.round_output:
            reconstructed = round_to_nonnegative_integers(reconstructed)
        return FittedRangeEstimateBatch(
            name=self.name,
            epsilon=float(epsilon),
            domain_size=original_size,
            unit_estimates=reconstructed,
        )
