"""Hierarchical estimators ``H̃`` and ``H̄`` for universal histograms.

Both answer the hierarchical query ``H`` (a complete k-ary tree of
interval counts, sensitivity ℓ) through the Laplace mechanism; they differ
in post-processing:

* ``H̃`` keeps the raw noisy tree and answers a range query by summing the
  minimal set of subtree roots covering the range (at most ``2(k-1)``
  per level, so error ``O(ℓ³/ε²)``).
* ``H̄`` first runs the Theorem 3 constrained inference, obtaining the
  unique minimum-L2 consistent tree, and answers range queries by summing
  consistent unit counts.  Theorem 4 shows this is the minimum-variance
  linear unbiased estimator for every range query.  The Section 4.2
  non-negativity heuristic (zero out non-positive subtrees) is applied by
  default, matching the paper's experimental configuration.

If the domain size is not a power of the branching factor the count vector
is padded with empty buckets; estimates are reported for the original
domain.
"""

from __future__ import annotations

import numpy as np

from repro.db.histogram import pad_counts
from repro.estimators.base import (
    FittedRangeEstimate,
    FittedRangeEstimateBatch,
    RangeQueryEstimator,
)
from repro.inference.hierarchical import HierarchicalInference
from repro.inference.nonnegative import round_to_nonnegative_integers
from repro.queries.hierarchical import HierarchicalQuery, decomposition_sums
from repro.utils.arrays import as_float_vector

__all__ = ["HierarchicalLaplaceEstimator", "ConstrainedHierarchicalEstimator"]


class _HierarchicalBase(RangeQueryEstimator):
    """Shared mechanics: pad, build the tree query, add calibrated noise."""

    def __init__(self, branching: int = 2) -> None:
        if branching < 2:
            raise ValueError(f"branching factor must be >= 2, got {branching}")
        self.branching = int(branching)

    def _noisy_tree(
        self, counts, epsilon: float, rng
    ) -> tuple[np.ndarray, HierarchicalQuery, int]:
        counts = as_float_vector(counts, name="counts")
        original_size = counts.size
        padded = pad_counts(counts, self.branching)
        query = HierarchicalQuery(padded.size, branching=self.branching)
        noisy = query.randomize(padded, epsilon, rng=rng).values
        return noisy, query, original_size

    def _noisy_tree_many(
        self, counts, epsilon: float, trials: int, rng
    ) -> tuple[np.ndarray, HierarchicalQuery, int]:
        """Pad once, aggregate once, draw the ``(trials, num_nodes)`` noise."""
        counts = as_float_vector(counts, name="counts")
        original_size = counts.size
        padded = pad_counts(counts, self.branching)
        query = HierarchicalQuery(padded.size, branching=self.branching)
        noisy = query.randomize_many(padded, epsilon, trials, rng=rng).values
        return noisy, query, original_size


class HierarchicalLaplaceEstimator(_HierarchicalBase):
    """``H̃``: raw noisy tree counts; ranges via minimal subtree decomposition.

    Parameters
    ----------
    branching:
        Branching factor ``k`` of the interval tree (the paper uses 2).
    round_output:
        Round the noisy node counts to non-negative integers before use,
        matching the Section 5.2 experimental protocol.
    """

    name = "H~"

    def __init__(self, branching: int = 2, round_output: bool = True) -> None:
        super().__init__(branching)
        self.round_output = round_output

    def fit(self, counts, epsilon, rng=None) -> FittedRangeEstimate:
        noisy, query, original_size = self._noisy_tree(counts, epsilon, rng)
        node_values = round_to_nonnegative_integers(noisy) if self.round_output else noisy
        leaf_values = node_values[query.layout.leaf_offset :][:original_size]

        def range_fn(lo: int, hi: int) -> float:
            return query.range_from_answer(node_values, lo, hi)

        return FittedRangeEstimate(
            name=self.name,
            epsilon=float(epsilon),
            domain_size=original_size,
            unit_estimates=leaf_values,
            range_fn=range_fn,
        )

    def fit_many(self, counts, epsilon, trials, rng=None) -> FittedRangeEstimateBatch:
        """``trials`` noisy trees from one noise-matrix draw.

        Range queries stay decomposition-based: ``range_fn`` sums the
        minimal subtree cover across all trials at once, and
        ``workload_fn`` groups queries by decomposition length so a whole
        workload is answered with one gather-and-sum per group (the
        decomposition itself is computed once per query instead of once
        per query *per trial*).
        """
        noisy, query, original_size = self._noisy_tree_many(counts, epsilon, trials, rng)
        node_values = round_to_nonnegative_integers(noisy) if self.round_output else noisy
        leaf_values = node_values[:, query.layout.leaf_offset :][:, :original_size]
        layout = query.layout

        def range_fn(lo: int, hi: int) -> np.ndarray:
            return query.range_from_answers(node_values, lo, hi)

        def workload_fn(los: np.ndarray, his: np.ndarray) -> np.ndarray:
            answers = np.empty((node_values.shape[0], los.size), dtype=np.float64)
            by_length: dict[int, tuple[list[int], list[list[int]]]] = {}
            for column, (lo, hi) in enumerate(zip(los, his)):
                nodes = layout.decompose_range(int(lo), int(hi))
                columns, node_lists = by_length.setdefault(len(nodes), ([], []))
                columns.append(column)
                node_lists.append(nodes)
            for columns, node_lists in by_length.values():
                gather = np.asarray(node_lists, dtype=np.int64)
                answers[:, columns] = decomposition_sums(node_values[:, gather])
            return answers

        return FittedRangeEstimateBatch(
            name=self.name,
            epsilon=float(epsilon),
            domain_size=original_size,
            unit_estimates=leaf_values,
            range_fn=range_fn,
            workload_fn=workload_fn,
        )


class ConstrainedHierarchicalEstimator(_HierarchicalBase):
    """``H̄``: constrained inference over the noisy tree (Theorem 3).

    Parameters
    ----------
    branching:
        Branching factor ``k`` of the interval tree.
    nonnegative:
        Apply the Section 4.2 heuristic that zeroes subtrees whose root
        estimate is non-positive (on by default, as in the paper's
        experiments).
    round_output:
        Round the final unit estimates to the nearest integer.  Negative
        estimates that survive the subtree heuristic (small negatives under
        a positive parent) are left in place rather than clipped: clipping
        every leaf at zero would bias range sums upward, destroying the
        unbiasedness that Theorem 4 relies on.  Non-negativity therefore
        comes only from the subtree-zeroing heuristic, as in Section 4.2.
    """

    name = "H_bar"

    def __init__(
        self,
        branching: int = 2,
        nonnegative: bool = True,
        round_output: bool = True,
    ) -> None:
        super().__init__(branching)
        self.nonnegative = nonnegative
        self.round_output = round_output

    def fit(self, counts, epsilon, rng=None) -> FittedRangeEstimate:
        noisy, query, original_size = self._noisy_tree(counts, epsilon, rng)
        engine = HierarchicalInference(query.layout)
        consistent = (
            engine.infer_nonnegative(noisy) if self.nonnegative else engine.infer(noisy)
        )
        leaves = consistent[query.layout.leaf_offset :][:original_size]
        if self.round_output:
            leaves = np.rint(leaves)
        return FittedRangeEstimate(
            name=self.name,
            epsilon=float(epsilon),
            domain_size=original_size,
            unit_estimates=leaves,
        )

    def fit_many(self, counts, epsilon, trials, rng=None) -> FittedRangeEstimateBatch:
        """``trials`` constrained releases through one matrix inference pass."""
        noisy, query, original_size = self._noisy_tree_many(counts, epsilon, trials, rng)
        engine = HierarchicalInference(query.layout)
        consistent = (
            engine.infer_nonnegative(noisy) if self.nonnegative else engine.infer(noisy)
        )
        leaves = consistent[:, query.layout.leaf_offset :][:, :original_size]
        if self.round_output:
            leaves = np.rint(leaves)
        return FittedRangeEstimateBatch(
            name=self.name,
            epsilon=float(epsilon),
            domain_size=original_size,
            unit_estimates=leaves,
        )
