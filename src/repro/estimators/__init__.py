"""End-user estimators for the two histogram tasks.

Each estimator packages one strategy from the paper behind a uniform
interface so the experiment runners, benchmarks, and examples can treat
them interchangeably:

Unattributed histograms (Section 3 / 5.1), interface
:class:`~repro.estimators.base.UnattributedEstimator`:

* ``S̃``  — :class:`SortedLaplaceEstimator`: the raw noisy sorted counts.
* ``S̃r`` — :class:`SortAndRoundEstimator`: noisy counts re-sorted and
  rounded to non-negative integers (the paper's consistency-by-fiat
  baseline).
* ``S̄``  — :class:`ConstrainedSortedEstimator`: isotonic-regression
  constrained inference (the paper's contribution).

Universal histograms (Section 4 / 5.2), interface
:class:`~repro.estimators.base.RangeQueryEstimator`:

* ``L̃``  — :class:`IdentityLaplaceEstimator`: noisy unit counts, ranges by
  summation.
* ``H̃``  — :class:`HierarchicalLaplaceEstimator`: noisy tree counts,
  ranges by minimal subtree decomposition.
* ``H̄``  — :class:`ConstrainedHierarchicalEstimator`: tree counts after
  least-squares constrained inference (optionally with the non-negativity
  heuristic), ranges by summing consistent unit counts.
* Wavelet — :class:`WaveletEstimator`: the Privelet baseline.
"""

from repro.estimators.base import (
    UnattributedEstimator,
    RangeQueryEstimator,
    FittedRangeEstimate,
    FittedRangeEstimateBatch,
)
from repro.estimators.sorted import (
    SortedLaplaceEstimator,
    SortAndRoundEstimator,
    ConstrainedSortedEstimator,
)
from repro.estimators.identity import IdentityLaplaceEstimator
from repro.estimators.hierarchical import (
    HierarchicalLaplaceEstimator,
    ConstrainedHierarchicalEstimator,
)
from repro.estimators.wavelet import WaveletEstimator

__all__ = [
    "UnattributedEstimator",
    "RangeQueryEstimator",
    "FittedRangeEstimate",
    "FittedRangeEstimateBatch",
    "SortedLaplaceEstimator",
    "SortAndRoundEstimator",
    "ConstrainedSortedEstimator",
    "IdentityLaplaceEstimator",
    "HierarchicalLaplaceEstimator",
    "ConstrainedHierarchicalEstimator",
    "WaveletEstimator",
]
