"""The identity-query estimator ``L̃`` for universal histograms.

The conventional strategy: ask for every unit count with sensitivity-1
Laplace noise and answer any range query by summing the noisy unit counts.
Accurate for small ranges (per-count variance ``2/ε²``) but the variance
of a range estimate grows linearly with the range length.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.base import (
    FittedRangeEstimate,
    FittedRangeEstimateBatch,
    RangeQueryEstimator,
)
from repro.inference.nonnegative import round_to_nonnegative_integers
from repro.queries.identity import UnitCountQuery
from repro.utils.arrays import as_float_vector

__all__ = ["IdentityLaplaceEstimator"]


class IdentityLaplaceEstimator(RangeQueryEstimator):
    """``L̃``: noisy unit counts; range queries by summation.

    Parameters
    ----------
    round_output:
        Round unit estimates to non-negative integers, as the Section 5.2
        experiments do for every strategy.
    """

    name = "L~"

    def __init__(self, round_output: bool = True) -> None:
        self.round_output = round_output

    def fit(self, counts, epsilon, rng=None) -> FittedRangeEstimate:
        counts = as_float_vector(counts, name="counts")
        query = UnitCountQuery(counts.size)
        noisy = query.randomize(counts, epsilon, rng=rng).values
        estimates = round_to_nonnegative_integers(noisy) if self.round_output else noisy
        return FittedRangeEstimate(
            name=self.name,
            epsilon=float(epsilon),
            domain_size=counts.size,
            unit_estimates=estimates,
        )

    def fit_many(self, counts, epsilon, trials, rng=None) -> FittedRangeEstimateBatch:
        """``trials`` releases from one ``(trials, n)`` noise-matrix draw."""
        counts = as_float_vector(counts, name="counts")
        query = UnitCountQuery(counts.size)
        noisy = query.randomize_many(counts, epsilon, trials, rng=rng).values
        estimates = round_to_nonnegative_integers(noisy) if self.round_output else noisy
        return FittedRangeEstimateBatch(
            name=self.name,
            epsilon=float(epsilon),
            domain_size=counts.size,
            unit_estimates=estimates,
        )
