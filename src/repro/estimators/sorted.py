"""Estimators for unattributed histograms (Section 3 / Section 5.1).

All three estimators answer the sorted query ``S`` through the Laplace
mechanism with sensitivity 1 and differ only in how they post-process the
noisy output:

* :class:`SortedLaplaceEstimator` (``S̃``) — no post-processing; the raw
  noisy sorted counts.  This is the baseline whose error is ``2n/ε²``.
* :class:`SortAndRoundEstimator` (``S̃r``) — restores consistency naively
  by re-sorting and rounding to non-negative integers.
* :class:`ConstrainedSortedEstimator` (``S̄``) — constrained inference:
  the minimum-L2 non-decreasing vector (isotonic regression), optionally
  followed by rounding.  Theorem 2 bounds its error by
  ``O(d·log³n/ε²)`` where ``d`` is the number of distinct true counts.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.base import UnattributedEstimator
from repro.inference.isotonic import isotonic_regression
from repro.inference.nonnegative import round_to_nonnegative_integers, sort_and_round
from repro.queries.sorted import SortedCountQuery
from repro.utils.arrays import as_float_vector

__all__ = [
    "SortedLaplaceEstimator",
    "SortAndRoundEstimator",
    "ConstrainedSortedEstimator",
]


class _SortedQueryMixin:
    """Shared mechanics: answer the sorted query under ε-DP."""

    @staticmethod
    def _noisy_sorted(counts, epsilon: float, rng) -> np.ndarray:
        counts = as_float_vector(counts, name="counts")
        query = SortedCountQuery(counts.size)
        return query.randomize(counts, epsilon, rng=rng).values

    @staticmethod
    def _noisy_sorted_many(counts, epsilon: float, trials: int, rng) -> np.ndarray:
        """``(trials, n)`` noisy sorted answers: one sort, one noise matrix."""
        counts = as_float_vector(counts, name="counts")
        query = SortedCountQuery(counts.size)
        return query.randomize_many(counts, epsilon, trials, rng=rng).values


class SortedLaplaceEstimator(_SortedQueryMixin, UnattributedEstimator):
    """``S̃``: the raw Laplace-noised sorted counts."""

    name = "S~"

    def estimate(self, counts, epsilon, rng=None) -> np.ndarray:
        return self._noisy_sorted(counts, epsilon, rng)

    def estimate_many(self, counts, epsilon, trials, rng=None) -> np.ndarray:
        return self._noisy_sorted_many(counts, epsilon, trials, rng)


class SortAndRoundEstimator(_SortedQueryMixin, UnattributedEstimator):
    """``S̃r``: noisy counts made consistent by sorting and rounding.

    This baseline shows that simply *enforcing* consistency (sortedness,
    integrality, non-negativity) is not where the accuracy gain comes
    from; the gain comes from the least-squares projection.
    """

    name = "S~r"

    def estimate(self, counts, epsilon, rng=None) -> np.ndarray:
        return sort_and_round(self._noisy_sorted(counts, epsilon, rng))

    def estimate_many(self, counts, epsilon, trials, rng=None) -> np.ndarray:
        return sort_and_round(self._noisy_sorted_many(counts, epsilon, trials, rng))


class ConstrainedSortedEstimator(_SortedQueryMixin, UnattributedEstimator):
    """``S̄``: constrained inference via isotonic regression.

    Parameters
    ----------
    method:
        ``"blocks"`` (default; the vectorized block-merge PAVA, which also
        powers :meth:`estimate_many`), ``"pava"`` (the scalar
        stack-based scan, kept as the oracle), or ``"minmax"`` (the
        Theorem 1 closed form; quadratic, for validation).
    round_output:
        Whether to round the inferred sequence to non-negative integers,
        as the Section 5 experiments do.
    """

    name = "S_bar"

    def __init__(self, method: str = "blocks", round_output: bool = False) -> None:
        self.method = method
        self.round_output = round_output

    def estimate(self, counts, epsilon, rng=None) -> np.ndarray:
        noisy = self._noisy_sorted(counts, epsilon, rng)
        inferred = isotonic_regression(noisy, method=self.method)
        if self.round_output:
            inferred = round_to_nonnegative_integers(inferred)
        return inferred

    def estimate_many(self, counts, epsilon, trials, rng=None) -> np.ndarray:
        """``trials`` constrained estimates through one batched isotonic fit.

        The ``"blocks"`` method fits all rows in one vectorized pass;
        ``"pava"``/``"minmax"`` fall back to a per-row loop (they are
        scalar validation oracles).
        """
        noisy = self._noisy_sorted_many(counts, epsilon, trials, rng)
        if self.method == "blocks":
            inferred = isotonic_regression(noisy, method="blocks")
        else:
            inferred = np.stack(
                [isotonic_regression(row, method=self.method) for row in noisy]
            )
        if self.round_output:
            inferred = round_to_nonnegative_integers(inferred)
        return inferred
