"""Task façades: one object per histogram task.

These are the "I just want the paper's method on my data" entry points:

* :class:`UnattributedHistogramTask` — estimate a multiset of counts (a
  degree sequence, a frequency-of-frequencies table) under ε-DP with the
  constrained sorted estimator, with the baselines available for
  comparison.
* :class:`UniversalHistogramTask` — release a histogram that supports
  arbitrary range queries under ε-DP with the constrained hierarchical
  estimator, again with baselines available.

Both accept either a raw count vector or a :class:`~repro.db.relation.Relation`
plus range attribute, and expose ``compare()`` helpers that the examples
use to print paper-style accuracy tables on the caller's own data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.experiments import (
    UnattributedComparison,
    UniversalComparison,
    run_unattributed_comparison,
    run_universal_comparison,
)
from repro.db.histogram import HistogramBuilder
from repro.db.relation import Relation
from repro.estimators.base import FittedRangeEstimate
from repro.estimators.hierarchical import (
    ConstrainedHierarchicalEstimator,
    HierarchicalLaplaceEstimator,
)
from repro.estimators.identity import IdentityLaplaceEstimator
from repro.estimators.sorted import (
    ConstrainedSortedEstimator,
    SortAndRoundEstimator,
    SortedLaplaceEstimator,
)
from repro.queries.workload import RangeWorkload
from repro.utils.arrays import as_float_vector

__all__ = ["UnattributedHistogramTask", "UniversalHistogramTask"]


def _resolve_counts(data, attribute: str | None) -> np.ndarray:
    if isinstance(data, Relation):
        if attribute is None:
            raise ValueError("a range attribute is required when data is a Relation")
        return HistogramBuilder(data, attribute).counts()
    return as_float_vector(data, name="counts")


@dataclass
class UnattributedHistogramTask:
    """Release the multiset of counts (sorted) under ε-differential privacy."""

    counts: np.ndarray

    def __init__(self, data, attribute: str | None = None) -> None:
        self.counts = _resolve_counts(data, attribute)

    @property
    def true_sequence(self) -> np.ndarray:
        """The true sorted count sequence (non-private; for evaluation only)."""
        return np.sort(self.counts)

    def release(
        self,
        epsilon: float,
        rng: np.random.Generator | int | None = None,
        round_output: bool = True,
    ) -> np.ndarray:
        """ε-DP estimate of the sorted sequence using constrained inference (S̄)."""
        estimator = ConstrainedSortedEstimator(round_output=round_output)
        return estimator.estimate(self.counts, epsilon, rng=rng)

    def release_baseline(
        self, epsilon: float, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """ε-DP estimate using the raw noisy sorted counts (S̃), for comparison."""
        return SortedLaplaceEstimator().estimate(self.counts, epsilon, rng=rng)

    def compare(
        self,
        epsilons=(1.0, 0.1, 0.01),
        trials: int = 50,
        rng: np.random.Generator | int | None = None,
        dataset: str = "unattributed",
    ) -> UnattributedComparison:
        """Figure 5 style comparison of S̃, S̃r, and S̄ on this data."""
        estimators = [
            SortedLaplaceEstimator(),
            SortAndRoundEstimator(),
            ConstrainedSortedEstimator(),
        ]
        return run_unattributed_comparison(
            self.counts, estimators, epsilons, trials=trials, rng=rng, dataset=dataset
        )


@dataclass
class UniversalHistogramTask:
    """Release a histogram supporting arbitrary range queries under ε-DP."""

    counts: np.ndarray
    branching: int

    def __init__(self, data, attribute: str | None = None, branching: int = 2) -> None:
        self.counts = _resolve_counts(data, attribute)
        self.branching = int(branching)

    @property
    def domain_size(self) -> int:
        """Number of unit buckets in the histogram domain."""
        return int(self.counts.size)

    def release(
        self,
        epsilon: float,
        rng: np.random.Generator | int | None = None,
        nonnegative: bool = True,
    ) -> FittedRangeEstimate:
        """ε-DP release using the constrained hierarchical estimator (H̄)."""
        estimator = ConstrainedHierarchicalEstimator(
            branching=self.branching, nonnegative=nonnegative
        )
        return estimator.fit(self.counts, epsilon, rng=rng)

    def release_baseline(
        self,
        epsilon: float,
        strategy: str = "identity",
        rng: np.random.Generator | int | None = None,
    ) -> FittedRangeEstimate:
        """ε-DP release using a baseline strategy (``"identity"`` = L̃, ``"hierarchical"`` = H̃)."""
        if strategy == "identity":
            return IdentityLaplaceEstimator().fit(self.counts, epsilon, rng=rng)
        if strategy == "hierarchical":
            return HierarchicalLaplaceEstimator(branching=self.branching).fit(
                self.counts, epsilon, rng=rng
            )
        raise ValueError(f"unknown baseline strategy {strategy!r}")

    def default_range_sizes(self) -> list[int]:
        """The paper's dyadic range-size grid for this domain."""
        return RangeWorkload.dyadic_sizes(self.domain_size)

    def compare(
        self,
        epsilons=(1.0, 0.1, 0.01),
        range_sizes=None,
        trials: int = 20,
        queries_per_size: int = 200,
        rng: np.random.Generator | int | None = None,
        dataset: str = "universal",
    ) -> UniversalComparison:
        """Figure 6 style comparison of L̃, H̃, and H̄ on this data."""
        estimators = [
            IdentityLaplaceEstimator(),
            HierarchicalLaplaceEstimator(branching=self.branching),
            ConstrainedHierarchicalEstimator(branching=self.branching),
        ]
        if range_sizes is None:
            range_sizes = self.default_range_sizes()
        return run_universal_comparison(
            self.counts,
            estimators,
            epsilons,
            range_sizes,
            trials=trials,
            queries_per_size=queries_per_size,
            rng=rng,
            dataset=dataset,
        )
