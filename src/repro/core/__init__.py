"""High-level API: the two histogram tasks and the Figure 1 pipeline.

* :mod:`repro.core.tasks` — :class:`UnattributedHistogramTask` and
  :class:`UniversalHistogramTask`, convenience façades that wire a dataset
  (relation or count vector) to the estimators and return ready-to-use
  results.
* :mod:`repro.core.pipeline` — the explicit three-step analyst / data
  owner protocol of Figure 1 (choose query → private answers →
  constrained inference), with privacy-budget accounting on the data-owner
  side.  The examples use this module to show the roles separately; the
  estimators collapse the three steps into one call.
"""

from repro.core.tasks import UnattributedHistogramTask, UniversalHistogramTask
from repro.core.pipeline import Analyst, DataOwner, PrivateSession

__all__ = [
    "UnattributedHistogramTask",
    "UniversalHistogramTask",
    "Analyst",
    "DataOwner",
    "PrivateSession",
]
