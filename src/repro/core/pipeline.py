"""The three-step protocol of Figure 1 with explicit roles.

Step 1 — the **analyst** chooses a query sequence whose answers satisfy
useful constraints (``S`` for unattributed histograms, ``H`` for universal
histograms) and sends it to the data owner.

Step 2 — the **data owner** evaluates the query on the private database,
adds Laplace noise calibrated to the query's sensitivity and the agreed ε
(charging the privacy budget), and returns the noisy answers.

Step 3 — the **analyst** post-processes the noisy answers with constrained
inference.  This step sees only the noisy answers and the constraints, so
it cannot affect the privacy guarantee (Proposition 2).

The estimator classes collapse the three steps into a single call; this
module keeps them separate so that examples, documentation, and tests can
exercise (and assert) the trust boundary explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.histogram import HistogramBuilder, pad_counts
from repro.db.relation import Relation
from repro.exceptions import QueryError
from repro.inference.hierarchical import hierarchical_inference
from repro.inference.isotonic import isotonic_regression
from repro.privacy.budget import PrivacyBudget
from repro.privacy.definitions import PrivacyParameters
from repro.queries.base import NoisyAnswer, QuerySequence
from repro.queries.hierarchical import HierarchicalQuery
from repro.queries.sorted import SortedCountQuery
from repro.utils.arrays import as_float_vector

__all__ = ["DataOwner", "Analyst", "PrivateSession"]


class DataOwner:
    """Holds the private data and answers query sequences under ε-DP.

    The data can be a :class:`~repro.db.relation.Relation` plus a range
    attribute, or a raw count vector (useful for experiments where the
    relational layer is unnecessary).
    """

    def __init__(
        self,
        data: Relation | np.ndarray | list,
        budget: PrivacyBudget,
        attribute: str | None = None,
    ) -> None:
        if isinstance(data, Relation):
            if attribute is None:
                raise QueryError(
                    "a range attribute is required when the data is a Relation"
                )
            self._counts = HistogramBuilder(data, attribute).counts()
        else:
            self._counts = as_float_vector(data, name="counts")
        self.budget = budget

    @property
    def domain_size(self) -> int:
        """Size of the histogram domain the owner can answer queries over."""
        return int(self._counts.size)

    def answer(
        self,
        query: QuerySequence,
        epsilon: float,
        rng: np.random.Generator | int | None = None,
        label: str | None = None,
    ) -> NoisyAnswer:
        """Answer a query sequence, charging ``epsilon`` to the budget.

        The true counts never leave this method; only the noisy answer
        vector is returned.
        """
        if query.domain_size != self._counts.size:
            raise QueryError(
                f"query expects domain size {query.domain_size}, "
                f"data has {self._counts.size}"
            )
        # Charge-after-success: draw the noisy answer first, debit ε only
        # once the fallible randomize step has produced it, so a failed
        # build can never leak budget.  The un-released draw is harmless —
        # it never leaves this method.
        params = PrivacyParameters(epsilon, self.budget.total.delta)
        answer = query.randomize(self._counts, params, rng=rng)
        self.budget.spend(epsilon, label=label or type(query).__name__)
        return answer


class Analyst:
    """Formulates query sequences and post-processes noisy answers.

    The analyst never touches the private data: its methods consume only
    query descriptions and noisy answers.
    """

    def sorted_query(self, domain_size: int) -> SortedCountQuery:
        """Step 1 for an unattributed histogram: the sorted query ``S``."""
        return SortedCountQuery(domain_size)

    def hierarchical_query(
        self, domain_size: int, branching: int = 2
    ) -> HierarchicalQuery:
        """Step 1 for a universal histogram: the hierarchical query ``H``.

        ``domain_size`` must already be a power of ``branching``; use
        :func:`repro.db.histogram.pad_counts` on the owner side otherwise.
        """
        return HierarchicalQuery(domain_size, branching=branching)

    def infer_sorted(self, noisy: NoisyAnswer) -> np.ndarray:
        """Step 3 for ``S``: isotonic regression on the noisy answers."""
        return isotonic_regression(noisy.values)

    def infer_hierarchical(
        self,
        noisy: NoisyAnswer,
        query: HierarchicalQuery,
        nonnegative: bool = True,
    ) -> np.ndarray:
        """Step 3 for ``H``: tree least squares; returns consistent unit counts."""
        consistent = hierarchical_inference(
            noisy.values, query.layout, nonnegative=nonnegative
        )
        return consistent[query.layout.leaf_offset :]


@dataclass
class PrivateSession:
    """Convenience wrapper pairing one analyst with one data owner.

    Provides the two end-to-end flows of the paper as single calls while
    still routing every interaction through the explicit roles (and hence
    the budget accounting).
    """

    owner: DataOwner
    analyst: Analyst

    @classmethod
    def over_counts(
        cls, counts, total_epsilon: float, delta: float = 0.0
    ) -> "PrivateSession":
        """Create a session over a raw count vector with a fresh budget."""
        budget = PrivacyBudget(PrivacyParameters(total_epsilon, delta))
        return cls(owner=DataOwner(counts, budget), analyst=Analyst())

    @classmethod
    def over_relation(
        cls, relation: Relation, attribute: str, total_epsilon: float, delta: float = 0.0
    ) -> "PrivateSession":
        """Create a session over a relation's range attribute."""
        budget = PrivacyBudget(PrivacyParameters(total_epsilon, delta))
        return cls(
            owner=DataOwner(relation, budget, attribute=attribute), analyst=Analyst()
        )

    def unattributed_histogram(
        self, epsilon: float, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Run the full S̄ flow: sorted query, noisy answer, isotonic inference."""
        query = self.analyst.sorted_query(self.owner.domain_size)
        noisy = self.owner.answer(query, epsilon, rng=rng, label="unattributed (S)")
        return self.analyst.infer_sorted(noisy)

    def universal_histogram(
        self,
        epsilon: float,
        branching: int = 2,
        nonnegative: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Run the full H̄ flow, returning consistent unit counts.

        The domain is padded to a power of ``branching`` if necessary; the
        returned estimates cover the original domain.
        """
        original_size = self.owner.domain_size
        padded_size = pad_counts(np.zeros(original_size), branching).size
        if padded_size != original_size:
            # Rebuild an owner over the padded counts so the tree query lines
            # up; the padding buckets are structurally empty so the privacy
            # semantics are unchanged.
            padded_owner = DataOwner(
                pad_counts(self._owner_counts(), branching), self.owner.budget
            )
            query = self.analyst.hierarchical_query(padded_size, branching)
            noisy = padded_owner.answer(query, epsilon, rng=rng, label="universal (H)")
        else:
            query = self.analyst.hierarchical_query(original_size, branching)
            noisy = self.owner.answer(query, epsilon, rng=rng, label="universal (H)")
        leaves = self.analyst.infer_hierarchical(noisy, query, nonnegative=nonnegative)
        return leaves[:original_size]

    def _owner_counts(self) -> np.ndarray:
        # Internal bridge used only for padding; keeps the raw counts out of
        # the Analyst code paths.
        return self.owner._counts  # noqa: SLF001 - deliberate same-module access
