"""Command-line interface for quick private-histogram releases.

The CLI wraps the two high-level tasks so that a data owner can produce a
differentially private release from a CSV of counts (or from one of the
built-in synthetic datasets) without writing Python::

    # Private degree sequence of the bundled social-network stand-in
    python -m repro.cli unattributed --dataset socialnetwork --epsilon 0.1 --seed 7

    # Universal histogram from a file of per-bucket counts (one number per line)
    python -m repro.cli universal --counts-file counts.txt --epsilon 0.5 --out release.csv

    # Compare the estimators on your data (Figure 5 / Figure 6 style tables)
    python -m repro.cli compare-unattributed --dataset nettrace --trials 10

Beyond one-shot releases, the CLI drives the serving tier
(:mod:`repro.serving`): ``materialize`` pays ε once and persists the
consistent release as a ``.npz`` artifact; ``batch-query`` then answers
arbitrarily many range queries from that artifact — offline, with no
access to the private data and no further privacy cost::

    # Materialize a consistent H_bar release to disk (the only ε charge)
    python -m repro.cli materialize --dataset nettrace --epsilon 0.5 \
        --seed 7 --release nettrace.npz

    # Answer 100k random range queries from the artifact (no ε charge)
    python -m repro.cli batch-query --release nettrace.npz --random 100000

    # Answer ranges from a file ("lo hi" per line) and save a CSV
    python -m repro.cli batch-query --release nettrace.npz \
        --queries-file ranges.txt --out answers.csv

For long-lived serving, ``serve-store`` runs an engine over a durable
release *store* directory: the first run pays ε and persists the
artifact; any later run (including after a restart) warm-starts from disk
with zero recomputation and zero additional ε.  ``fleet`` hosts several
datasets behind one façade with per-dataset budgets and a shared store::

    python -m repro.cli serve-store --store releases/ --dataset nettrace \
        --epsilon 0.5 --seed 7 --random 100000
    python -m repro.cli fleet --store releases/ --datasets nettrace searchlogs \
        --epsilon 0.5 --seed 7 --random 10000

The streaming commands (:mod:`repro.streaming`) run the epoch-based
incremental loop: ``ingest`` appends row arrivals to an owner-side stream
directory, ``advance-epoch`` folds the backlog into the next epoch's
release (charging the next ε on the geometric schedule, persisting the
artifact and lineage into the store), and ``serve-stream`` answers
queries from the latest epoch — warm-starting from the stored lineage
with zero ε after a restart::

    python -m repro.cli ingest --stream-dir stream/ --dataset nettrace --rows 5000
    python -m repro.cli advance-epoch --stream-dir stream/ --store releases/ \
        --stream nettrace-live --epsilon0 0.4 --decay 0.5
    python -m repro.cli serve-stream --store releases/ --stream nettrace-live \
        --dataset nettrace --epsilon0 0.4 --decay 0.5 --random 100000

The stream directory holds *true, un-noised* data (the owner's current
counts and pending arrivals) and must stay in the owner's trust domain;
the store and lineage hold only ε-charged releases and are safe to share.

The observability commands (:mod:`repro.obs`) run an instrumented mixed
workload — a static engine served cold then warm, one sharded build,
and one stream epoch — under a scoped metrics/tracing session:
``stats`` prints the per-tenant rollup, span timings, and ε-ledger;
``export-metrics`` emits the same telemetry as Prometheus text
exposition (default) or JSON, with every ledger total bit-equal to the
privacy accountants' own sums::

    python -m repro.cli stats --store releases/
    python -m repro.cli export-metrics --format json --out metrics.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

from repro import obs
from repro.accuracy import AccuracySLO
from repro.analysis.tables import render_table, write_csv
from repro.core.tasks import UnattributedHistogramTask, UniversalHistogramTask
from repro.data.registry import default_registry
from repro.data.synthetic import arrival_stream
from repro.db.histogram import delta_counts
from repro.exceptions import (
    BudgetExhaustedError,
    LineageConflictError,
    ReproError,
    StoreCorruptionError,
)
from repro.obs import EpsilonLedgerExporter
from repro.serving import (
    ESTIMATOR_NAMES,
    BatchQueryPlanner,
    EngineFleet,
    HistogramEngine,
    MaterializedRelease,
    QueryBatch,
    ReleaseStore,
)
from repro.utils.io_atomic import atomic_write_bytes
from repro.sharding import ShardedHistogramEngine
from repro.streaming import GeometricEpsilonSchedule, StreamingHistogramEngine
from repro.utils.random import as_generator

__all__ = ["main", "build_parser"]


def _load_counts(args: argparse.Namespace, task: str) -> np.ndarray:
    """Resolve the input counts from --domain-bits, --counts-file, or --dataset."""
    if getattr(args, "domain_bits", None) is not None:
        if not 1 <= args.domain_bits <= 26:
            raise ReproError(
                f"--domain-bits must be in [1, 26], got {args.domain_bits}"
            )
        rng = as_generator(args.seed)
        return rng.poisson(3.0, size=2**args.domain_bits).astype(np.float64)
    if args.counts_file is not None:
        values = np.loadtxt(args.counts_file, dtype=np.float64, ndmin=1)
        return np.asarray(values, dtype=np.float64)
    registry = default_registry()
    entry = registry.get(args.dataset, scale=args.scale)
    rng = as_generator(args.seed)
    if task == "universal":
        if entry.universal is None:
            raise ReproError(
                f"dataset {args.dataset!r} has no universal-histogram variant"
            )
        return entry.universal(rng)
    return entry.unattributed(rng)


def _write_vector(values: np.ndarray, out: str | None, label: str) -> None:
    rows = [{"bucket": i, label: float(v)} for i, v in enumerate(values)]
    if out:
        path = write_csv(rows, Path(out))
        print(f"wrote {len(rows)} rows to {path}")
    else:
        preview = ", ".join(f"{v:g}" for v in values[:20])
        suffix = ", ..." if values.size > 20 else ""
        print(f"{label} ({values.size} values): {preview}{suffix}")


def _cmd_unattributed(args: argparse.Namespace) -> int:
    counts = _load_counts(args, task="unattributed")
    task = UnattributedHistogramTask(counts)
    release = task.release(epsilon=args.epsilon, rng=args.seed)
    _write_vector(release, args.out, "private_sorted_count")
    return 0


def _cmd_universal(args: argparse.Namespace) -> int:
    counts = _load_counts(args, task="universal")
    task = UniversalHistogramTask(counts, branching=args.branching)
    fitted = task.release(epsilon=args.epsilon, rng=args.seed)
    _write_vector(fitted.unit_counts(), args.out, "private_unit_count")
    print(f"private total: {fitted.total():g}")
    return 0


def _cmd_compare_unattributed(args: argparse.Namespace) -> int:
    counts = _load_counts(args, task="unattributed")
    task = UnattributedHistogramTask(counts)
    comparison = task.compare(
        epsilons=args.epsilons, trials=args.trials, rng=args.seed, dataset=args.dataset
    )
    print(render_table(comparison.to_rows(), title="Average total squared error"))
    if args.out:
        write_csv(comparison.to_rows(), Path(args.out))
        print(f"wrote results to {args.out}")
    return 0


def _cmd_compare_universal(args: argparse.Namespace) -> int:
    counts = _load_counts(args, task="universal")
    task = UniversalHistogramTask(counts, branching=args.branching)
    comparison = task.compare(
        epsilons=args.epsilons,
        trials=args.trials,
        queries_per_size=args.queries_per_size,
        rng=args.seed,
        dataset=args.dataset,
    )
    print(render_table(comparison.to_rows(), title="Average squared error per range query"))
    if args.out:
        write_csv(comparison.to_rows(), Path(args.out))
        print(f"wrote results to {args.out}")
    return 0


def _cmd_materialize(args: argparse.Namespace) -> int:
    counts = _load_counts(args, task="universal")
    engine = HistogramEngine(
        counts, total_epsilon=args.epsilon, branching=args.branching
    )
    release = engine.materialize(args.estimator, epsilon=args.epsilon, seed=args.seed)
    path = release.save(args.release)
    print(
        f"materialized {release.estimator} release: {release.domain_size} buckets, "
        f"ε={release.epsilon:g}, branching={release.branching}, seed={release.seed}, "
        f"private total≈{release.total():g}"
    )
    print(f"dataset fingerprint {release.dataset_fingerprint}; wrote {path}")
    if args.out:
        _write_vector(release.unit_counts(), args.out, "private_unit_count")
    return 0


def _resolve_batch(args: argparse.Namespace, domain_size: int) -> QueryBatch:
    if args.queries_file:
        try:
            bounds = np.loadtxt(args.queries_file, dtype=np.int64, ndmin=2)
        except (OSError, ValueError) as error:
            raise ReproError(
                f"cannot read ranges from {args.queries_file}: {error}"
            ) from error
        return QueryBatch.from_pairs(bounds, name=Path(args.queries_file).name)
    if args.prefixes:
        return QueryBatch.prefixes(domain_size)
    if args.units:
        return QueryBatch.units(domain_size)
    if args.total:
        return QueryBatch.total(domain_size)
    count = args.random if args.random is not None else 1000
    return QueryBatch.random(domain_size, count, rng=args.query_seed)


def _cmd_batch_query(args: argparse.Namespace) -> int:
    release = MaterializedRelease.load(args.release)
    batch = _resolve_batch(args, release.domain_size)
    planner = BatchQueryPlanner()
    start = perf_counter()
    answers = planner.answer(release, batch)
    elapsed = perf_counter() - start
    print(
        f"release: {release.estimator}, ε={release.epsilon:g}, "
        f"{release.domain_size} buckets, fingerprint {release.dataset_fingerprint}"
    )
    rate = f"{len(batch) / elapsed:,.0f} queries/s" if elapsed > 0 else "instant"
    print(
        f"answered {len(batch)} range queries ({batch.name}) in "
        f"{elapsed * 1e3:.2f} ms ({rate}) — no additional privacy cost"
    )
    _write_answers(batch, answers, args.out)
    return 0


def _write_answers(batch: QueryBatch, answers: np.ndarray, out: str | None) -> None:
    if out:
        rows = [
            {"lo": int(lo), "hi": int(hi), "estimate": float(v)}
            for lo, hi, v in zip(batch.los, batch.his, answers)
        ]
        path = write_csv(rows, Path(out))
        print(f"wrote {len(rows)} rows to {path}")
    else:
        preview = ", ".join(f"{v:g}" for v in answers[:10])
        suffix = ", ..." if answers.size > 10 else ""
        print(f"estimates: {preview}{suffix}")


# -- unified serving stats -----------------------------------------------------


def _registry_serving_stats(kind: str) -> dict:
    """Per-process serving figures for one engine kind, read back from the
    metrics-registry JSON snapshot.

    The ``serve-store`` / ``serve-stream`` / ``serve-sharded`` stats
    block is rendered from the same counters and histograms that
    ``export-metrics`` publishes, so the human-readable output and the
    machine exposition cannot drift apart.
    """
    # Caller-gated: the serve commands call this inside `with
    # obs.session():`, which enables observability for its extent.
    snapshot = obs.registry().snapshot()  # statan: ignore[OBS001]

    def sample(section: str, name: str) -> dict | None:
        family = snapshot.get(section, {}).get(name)
        if family is None:
            return None
        for candidate in family["samples"]:
            if candidate["labels"] == {"engine": kind}:
                return candidate
        return None

    def counter(name: str) -> float:
        found = sample("counters", name)
        return found["value"] if found else 0.0

    def histogram_sum(name: str) -> float:
        found = sample("histograms", name)
        return found["sum"] if found else 0.0

    return {
        "batches": int(counter("repro_serve_batches_total")),
        "queries": int(counter("repro_serve_queries_total")),
        "cold_builds": int(counter("repro_serve_cold_builds_total")),
        "answer_seconds": histogram_sum("repro_serve_answer_seconds"),
        "build_seconds": histogram_sum("repro_serve_build_seconds"),
    }


def _print_serving_stats(
    kind: str,
    batch_name: str,
    *,
    via: str = "",
    build_note: bool = False,
    epsilon_line: str | None = None,
) -> None:
    """The one snapshot renderer behind every ``serve-*`` subcommand."""
    stats = _registry_serving_stats(kind)
    seconds = stats["answer_seconds"]
    rate = (
        f"{stats['queries'] / seconds:,.0f} queries/s" if seconds > 0 else "instant"
    )
    build = (
        f"; release resolution took {stats['build_seconds'] * 1e3:.2f} ms"
        if build_note
        else ""
    )
    print(
        f"answered {stats['queries']} range queries ({batch_name}){via} in "
        f"{seconds * 1e3:.2f} ms ({rate}){build}"
    )
    if epsilon_line is not None:
        print(epsilon_line)


def _cmd_serve_store(args: argparse.Namespace) -> int:
    counts = _load_counts(args, task="universal")
    total = args.total_epsilon if args.total_epsilon is not None else args.epsilon
    engine = HistogramEngine(
        counts,
        total_epsilon=total,
        branching=args.branching,
        store=ReleaseStore(args.store),
        slo=_resolve_slo(args),
    )
    batch = _resolve_batch(args, engine.domain_size)
    with obs.session():
        result = engine.submit(
            batch, args.estimator, epsilon=args.epsilon, seed=args.seed
        )
        if engine.materializations == 0:
            print(
                f"warm start from {args.store}: release loaded from disk — "
                "0 materializations, zero additional privacy cost"
            )
        else:
            print(
                f"cold start: materialized {result.estimator} (ε={result.epsilon:g}) "
                f"and persisted it to {args.store}"
            )
        _print_serving_stats(
            "histogram",
            batch.name,
            build_note=True,
            epsilon_line=(
                f"materializations this process: {engine.materializations}; "
                f"ε spent this process: {engine.spent_epsilon:g}"
            ),
        )
        _print_accuracy_summary(engine)
    _write_answers(batch, result.answers, args.out)
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    registry = default_registry()
    fleet = EngineFleet(store=ReleaseStore(args.store) if args.store else None)
    total = args.total_epsilon if args.total_epsilon is not None else args.epsilon
    rows = []
    for name in args.datasets:
        entry = registry.get(name, scale=args.scale)
        if entry.universal is None:
            raise ReproError(
                f"dataset {name!r} has no universal-histogram variant"
            )
        counts = entry.universal(as_generator(args.seed))
        engine = fleet.register(name, counts, total, branching=args.branching)
        batch = QueryBatch.random(engine.domain_size, args.random, rng=args.query_seed)
        result = fleet.submit(
            name, batch, args.estimator, epsilon=args.epsilon, seed=args.seed
        )
        rows.append(
            {
                "dataset": name,
                "domain": engine.domain_size,
                "queries": result.num_queries,
                "warm": result.from_cache,
                "build_ms": round(result.build_seconds * 1e3, 2),
                "answer_ms": round(result.answer_seconds * 1e3, 3),
                "epsilon_spent": engine.spent_epsilon,
            }
        )
    print(render_table(rows, title="Fleet serving summary (per dataset)"))
    stats = fleet.stats()
    print(
        f"fleet: {stats.datasets} datasets, {stats.requests} requests, "
        f"{stats.queries} queries, {stats.materializations} materializations, "
        f"sum of per-dataset ε spent: {stats.spent_epsilon:g}, aggregate "
        f"{stats.queries_per_second:,.0f} queries/s"
    )
    return 0


# -- streaming commands --------------------------------------------------------
#
# The stream directory is owner-side state (true data, never released):
#   <stream-dir>/current_counts.txt   counts already folded into an epoch
#   <stream-dir>/pending.log          arrivals not yet released (one index/line)
#
# `advance-epoch` must commit two files after the epoch durably exists —
# the updated counts and the consumed pending log — which cannot be one
# atomic operation.  The counts file therefore carries a header recording
# the epoch it reflects plus the digest and byte length of the pending
# prefix that epoch consumed; on startup `advance-epoch` uses the lineage
# plus that header to detect and complete an interrupted commit instead
# of double-folding or dropping the backlog (see _recover_stream_state).
# The log is append-only, so "consume" always means dropping a byte
# prefix — rows a concurrent `ingest` appended during a build survive as
# the tail.

_COUNTS_HEADER = re.compile(
    r"#\s*epoch\s+(-?\d+)\s+pending-sha256\s+(\S+)\s+bytes\s+(\d+)"
)


def _stream_counts_path(stream_dir: str) -> Path:
    return Path(stream_dir) / "current_counts.txt"


def _stream_pending_path(stream_dir: str) -> Path:
    return Path(stream_dir) / "pending.log"


def _read_pending_bytes(pending_path: Path) -> bytes:
    return pending_path.read_bytes() if pending_path.exists() else b""


def _parse_pending(raw: bytes, domain_size: int) -> np.ndarray:
    """Row indexes from a pending-log byte snapshot, fully validated."""
    if not raw.strip():
        return np.zeros(0, dtype=np.int64)
    try:
        indexes = np.array([int(line) for line in raw.split()], dtype=np.int64)
    except ValueError as error:
        raise ReproError(f"corrupt pending log: {error}") from error
    delta_counts(indexes, domain_size)  # validates every index eagerly
    return indexes


def _drop_pending_prefix(pending_path: Path, consumed_bytes: int) -> None:
    """Atomically remove the consumed prefix, preserving any appended tail."""
    tail = _read_pending_bytes(pending_path)[consumed_bytes:]
    atomic_write_bytes(pending_path, lambda handle: handle.write(tail))


def _write_stream_counts(
    path: Path, counts: np.ndarray, epoch: int, consumed: bytes
) -> None:
    """Atomically replace the owner's counts file (never leave it torn)."""
    digest = hashlib.sha256(consumed).hexdigest()
    lines = [f"# epoch {epoch} pending-sha256 {digest} bytes {len(consumed)}"]
    lines.extend(f"{value:.1f}" for value in counts)
    payload = ("\n".join(lines) + "\n").encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_bytes(path, lambda handle: handle.write(payload))


def _load_stream_counts(
    args: argparse.Namespace,
) -> tuple[np.ndarray, int, str, int]:
    """The stream's current true counts, initialized from the base dataset.

    Returns ``(counts, epoch, consumed_digest, consumed_bytes)`` where
    ``epoch`` is the epoch the counts reflect (-1 before any release) and
    the digest/length describe the pending-log prefix that epoch's commit
    consumed.
    """
    path = _stream_counts_path(args.stream_dir)
    if path.exists():
        epoch, digest, nbytes = -1, "", 0
        with open(path) as handle:
            match = _COUNTS_HEADER.match(handle.readline())
        if match:
            epoch, digest, nbytes = (
                int(match.group(1)),
                match.group(2),
                int(match.group(3)),
            )
        return np.loadtxt(path, dtype=np.float64, ndmin=1), epoch, digest, nbytes
    counts = _load_counts(args, task="universal")
    _write_stream_counts(path, counts, -1, b"")
    return counts, -1, "", 0


def _load_pending(args: argparse.Namespace, domain_size: int) -> np.ndarray:
    return _parse_pending(
        _read_pending_bytes(_stream_pending_path(args.stream_dir)), domain_size
    )


def _recover_stream_state(
    args: argparse.Namespace,
    counts: np.ndarray,
    counts_epoch: int,
    consumed_digest: str,
    consumed_bytes: int,
    latest_epoch: int,
) -> tuple[np.ndarray, bool]:
    """Complete an `advance-epoch` commit a crash interrupted.

    Returns ``(counts, recovered)``.  Two interruption points are
    distinguishable:

    * counts header behind the lineage (crash before the counts write):
      the pending log was already folded into the released epoch — fold
      the whole log (rows appended after the crash simply reach the next
      release through the counts) and clear it;
    * counts header current but the pending log still starts with the
      byte prefix the commit recorded (crash between the counts write
      and the prefix drop): drop the prefix, keeping any appended tail.
    """
    counts_path = _stream_counts_path(args.stream_dir)
    pending_path = _stream_pending_path(args.stream_dir)
    raw = _read_pending_bytes(pending_path)
    if counts_epoch < latest_epoch:
        pending = _parse_pending(raw, counts.size)
        counts = counts + delta_counts(pending, counts.size)
        _write_stream_counts(counts_path, counts, latest_epoch, raw)
        _drop_pending_prefix(pending_path, len(raw))
        _write_stream_counts(counts_path, counts, latest_epoch, b"")
        print(
            f"recovered interrupted commit: folded {pending.size} released "
            f"rows into the counts for epoch {latest_epoch}"
        )
        return counts, True
    if (
        counts_epoch == latest_epoch
        and consumed_bytes > 0
        and len(raw) >= consumed_bytes
        and hashlib.sha256(raw[:consumed_bytes]).hexdigest() == consumed_digest
    ):
        _drop_pending_prefix(pending_path, consumed_bytes)
        _write_stream_counts(counts_path, counts, latest_epoch, b"")
        print(
            f"recovered interrupted commit: dropped the pending prefix "
            f"already consumed by epoch {latest_epoch}"
        )
        return counts, True
    return counts, False


def _stream_schedule(args: argparse.Namespace) -> GeometricEpsilonSchedule:
    return GeometricEpsilonSchedule(args.epsilon0, decay=args.decay)


def _stream_engine(
    args: argparse.Namespace, counts: np.ndarray, build_first_epoch: bool
) -> StreamingHistogramEngine:
    schedule = _stream_schedule(args)
    total = (
        args.total_epsilon
        if args.total_epsilon is not None
        else schedule.infinite_total
    )
    return StreamingHistogramEngine(
        counts,
        total,
        schedule,
        estimator=args.estimator,
        branching=args.branching,
        seed=args.seed,
        store=ReleaseStore(args.store),
        name=args.stream,
        build_first_epoch=build_first_epoch,
        slo=_resolve_slo(args),
    )


def _print_lineage(engine: StreamingHistogramEngine) -> None:
    rows = [
        {
            "epoch": record.epoch,
            "epsilon": record.epsilon,
            "rows_ingested": record.rows_ingested,
            "total_rows": record.total_rows,
            "seed": record.key.seed,
            "fingerprint": record.key.dataset_fingerprint,
        }
        for record in engine.lineage.records
    ]
    print(render_table(rows, title=f"Epoch lineage for stream {engine.name!r}"))


def _cmd_ingest(args: argparse.Namespace) -> int:
    counts, _, _, _ = _load_stream_counts(args)
    if args.rows_file:
        try:
            indexes = np.loadtxt(args.rows_file, dtype=np.int64, ndmin=1)
        except (OSError, ValueError) as error:
            raise ReproError(
                f"cannot read row indexes from {args.rows_file}: {error}"
            ) from error
    else:
        indexes = next(
            arrival_stream(counts.size, args.rows, batches=1, rng=args.seed)
        )
    delta_counts(indexes, counts.size)  # validates before appending
    pending_path = _stream_pending_path(args.stream_dir)
    # Append-only, O(batch): the backlog is counted when it is folded, not
    # re-read on every ingest.
    with open(pending_path, "a") as handle:
        handle.writelines(f"{index}\n" for index in indexes)
    print(
        f"ingested {indexes.size} rows into {pending_path} "
        f"(run advance-epoch to fold the backlog into the next release)"
    )
    return 0


def _cmd_advance_epoch(args: argparse.Namespace) -> int:
    counts, counts_epoch, consumed_digest, consumed_bytes = _load_stream_counts(args)
    engine = _stream_engine(args, counts, build_first_epoch=False)
    counts, recovered = _recover_stream_state(
        args, counts, counts_epoch, consumed_digest, consumed_bytes,
        len(engine.lineage) - 1,
    )
    pending_path = _stream_pending_path(args.stream_dir)
    raw = _read_pending_bytes(pending_path)
    pending = _parse_pending(raw, counts.size)
    if recovered:
        if not pending.size:
            # The re-run's purpose was completing the interrupted commit;
            # building a zero-row epoch now would burn the next scheduled
            # ε for no new data.
            print("recovery complete; no pending rows, not advancing an epoch")
            return 0
        # Recovery may have folded released rows into the counts; the
        # engine was constructed over the stale vector, so rebuild it
        # over the recovered one (warm resume, zero ε).
        engine = _stream_engine(args, counts, build_first_epoch=False)
    if pending.size:
        engine.ingest(pending)
    record = engine.advance_epoch()
    # Commit the owner-side state only after the epoch (and its lineage)
    # durably exists; a crash anywhere in this multi-file commit is
    # detected and completed by _recover_stream_state on the next run.
    # The pending log only ever loses the byte prefix this build
    # consumed, so rows a concurrent `ingest` appended meanwhile survive
    # as the tail.
    counts_path = _stream_counts_path(args.stream_dir)
    new_counts = counts + delta_counts(pending, counts.size)
    _write_stream_counts(counts_path, new_counts, record.epoch, raw)
    _drop_pending_prefix(pending_path, len(raw))
    # Clear the consumed marker so a later run can never mistake freshly
    # ingested (possibly byte-identical) arrivals for this stale prefix.
    _write_stream_counts(counts_path, new_counts, record.epoch, b"")
    print(
        f"epoch {record.epoch}: folded {record.rows_ingested} pending rows, "
        f"charged ε={record.epsilon:g} (schedule "
        f"ε₀={args.epsilon0:g}·{args.decay:g}^i), "
        f"release {record.key.dataset_fingerprint}"
    )
    _print_lineage(engine)
    print(f"stream total ε across epochs: {engine.lineage.spent_epsilon:g}")
    return 0


def _cmd_serve_stream(args: argparse.Namespace) -> int:
    counts = _load_counts(args, task="universal")
    engine = _stream_engine(args, counts, build_first_epoch=True)
    warm_started = engine.epoch >= 0 and engine.spent_epsilon == 0.0
    if args.epochs:
        if warm_started:
            # The simulation folds synthetic arrivals into the *base*
            # dataset counts; running it against a stream that already
            # has released epochs would silently rebase the stream and
            # drop every row the ingest/advance-epoch flow folded in.
            raise ReproError(
                f"--epochs simulates a fresh demo stream, but "
                f"{args.stream!r} already has {engine.epoch + 1} released "
                f"epochs in {args.store}; drop --epochs to serve it, or "
                f"use `ingest` + `advance-epoch` to keep feeding it"
            )
        stream = arrival_stream(
            engine.domain_size, args.rows_per_epoch, args.epochs, rng=args.seed
        )
        for batch_indexes in stream:
            engine.ingest(batch_indexes)
            engine.advance_epoch()
    batch = _resolve_batch(args, engine.domain_size)
    with obs.session():
        result = engine.submit(batch)
        if warm_started:
            print(
                f"warm start from {args.store}: serving epoch {engine.epoch} from "
                "the stored lineage — zero ε spent at startup"
            )
        _print_lineage(engine)
        _print_serving_stats(
            "stream",
            batch.name,
            via=f" from epoch {result.epoch} (ε={result.epsilon:g})",
            epsilon_line=(
                f"ε spent this process: {engine.spent_epsilon:g}; stream total "
                f"across epochs: {engine.lineage.spent_epsilon:g} "
                f"(schedule limit {_stream_schedule(args).infinite_total:g})"
            ),
        )
        _print_accuracy_summary(engine)
    _write_answers(batch, result.answers, args.out)
    return 0


# -- sharded commands ----------------------------------------------------------


def _sharded_engine(args: argparse.Namespace, counts: np.ndarray) -> ShardedHistogramEngine:
    total = args.total_epsilon if args.total_epsilon is not None else args.epsilon
    return ShardedHistogramEngine(
        counts,
        total_epsilon=total,
        branching=args.branching,
        num_shards=args.shards,
        shard_size=args.shard_size,
        workers=args.workers,
        worker_mode=args.worker_mode,
        store=ReleaseStore(args.store),
        slo=_resolve_slo(args),
    )


def _print_sharded_build(
    args: argparse.Namespace, engine: ShardedHistogramEngine, build_seconds: float
) -> None:
    if engine.materializations == 0:
        print(
            f"warm start from {args.store}: all {engine.num_shards} shard "
            f"artifacts loaded from disk in {build_seconds * 1e3:.1f} ms — "
            "zero builds, zero additional privacy cost"
        )
    else:
        print(
            f"cold start: built {engine.shard_builds} shard releases "
            f"({engine.num_shards} shards, {engine.workers} "
            f"{engine.worker_mode} workers) in "
            f"{build_seconds:.2f} s and persisted them to {args.store}"
        )
    print(
        f"domain {engine.domain_size} buckets in {engine.num_shards} shards; "
        f"ε spent this process: {engine.spent_epsilon:g} (one charge covers "
        "every shard — parallel composition over the disjoint partition)"
    )


def _cmd_materialize_sharded(args: argparse.Namespace) -> int:
    counts = _load_counts(args, task="universal")
    engine = _sharded_engine(args, counts)
    start = perf_counter()
    release = engine.materialize(args.estimator, epsilon=args.epsilon, seed=args.seed)
    build_seconds = perf_counter() - start
    _print_sharded_build(args, engine, build_seconds)
    print(
        f"sharded {release.estimator} release: ε={release.epsilon:g}, "
        f"branching={release.branching}, private total≈{release.total():g}, "
        f"fingerprint {release.dataset_fingerprint}"
    )
    return 0


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    counts = _load_counts(args, task="universal")
    engine = _sharded_engine(args, counts)
    batch = _resolve_batch(args, engine.domain_size)
    with obs.session():
        result = engine.submit(
            batch, args.estimator, epsilon=args.epsilon, seed=args.seed
        )
        _print_sharded_build(args, engine, result.build_seconds)
        _print_serving_stats("sharded", batch.name, via=" through the shard router")
        _print_accuracy_summary(engine)
    _write_answers(batch, result.answers, args.out)
    return 0


# -- observability commands ----------------------------------------------------


def _obs_workload(args: argparse.Namespace) -> EngineFleet:
    """The mixed serving workload the observability commands instrument.

    One fleet exercises every tier: a static engine answers the same
    batch cold then warm, a sharded engine performs one materialization
    and routes a batch through the shard router, and a streaming tenant
    ingests arrivals and advances one epoch.  Every ε is a negative
    power of two, so float summation is exact and each ledger total in
    the export is bit-equal to the accountants' own running sums.
    """
    rng = as_generator(args.seed)
    static_counts = rng.poisson(3.0, size=512).astype(np.float64)
    sharded_counts = rng.poisson(3.0, size=512).astype(np.float64)
    stream_counts = rng.poisson(3.0, size=512).astype(np.float64)
    store = ReleaseStore(args.store) if args.store else None
    fleet = EngineFleet(store=store)
    # The static tenant carries an accuracy SLO so the workload also
    # exercises per-answer scoring and the repro_accuracy_* gauges.
    static = fleet.register(
        "static", static_counts, 0.5, slo=AccuracySLO(target_ci_halfwidth=60.0)
    )
    batch = QueryBatch.random(static.domain_size, args.random, rng=args.query_seed)
    fleet.submit("static", batch, "constrained", epsilon=0.25, seed=args.seed)
    fleet.submit("static", batch, "constrained", epsilon=0.25, seed=args.seed)
    fleet.register_sharded("sharded", sharded_counts, 0.5, num_shards=4)
    fleet.submit("sharded", batch, "constrained", epsilon=0.5, seed=args.seed)
    fleet.register_stream(
        "stream",
        stream_counts,
        1.0,
        schedule=GeometricEpsilonSchedule(0.25, decay=0.5),
        seed=args.seed,
    )
    arrivals = next(arrival_stream(static.domain_size, 200, batches=1, rng=args.seed))
    fleet.ingest("stream", arrivals)
    fleet.advance_epoch("stream")
    fleet.submit_stream("stream", batch)
    return fleet


def _checked_ledger(fleet: EngineFleet, stats) -> dict:
    """The fleet's ε-ledger report, cross-checked against ``FleetStats``.

    The exporter already audits each budget against its own history;
    this adds the outer identity — the exported fleet total must be
    bit-equal to the sum the serving rollup reports — so the CLI can
    never publish telemetry that disagrees with the accounting.
    """
    ledger = EpsilonLedgerExporter().fleet_report(fleet)
    if ledger["total_spent_epsilon"] != stats.spent_epsilon:
        raise ReproError(
            f"ε-ledger drift: exporter total {ledger['total_spent_epsilon']!r} "
            f"!= fleet accounting {stats.spent_epsilon!r}"
        )
    return ledger


def _cmd_stats(args: argparse.Namespace) -> int:
    with obs.session() as (registry, tracer):
        fleet = _obs_workload(args)
        stats = fleet.stats()  # publishes the per-tenant gauges
        ledger = _checked_ledger(fleet, stats)
        tenant_rows = [
            {
                "dataset": name,
                "kind": report["kind"],
                "requests": stats.per_dataset[name].requests,
                "queries": stats.per_dataset[name].queries,
                "cold_builds": stats.per_dataset[name].cold_builds,
                "p95_ms": round(
                    stats.per_dataset[name].p95_batch_seconds * 1e3, 3
                ),
                "slo_ok": (
                    f"{stats.accuracy[name].within_slo}"
                    f"/{stats.accuracy[name].answers}"
                    if name in stats.accuracy
                    else "-"
                ),
                "ci_halfwidth": (
                    round(stats.accuracy[name].mean_halfwidth, 2)
                    if name in stats.accuracy
                    else "-"
                ),
                "epsilon_spent": report["spent_epsilon"],
                "epsilon_budget": report["total_epsilon"],
            }
            for name, report in sorted(ledger["datasets"].items())
        ]
        print(render_table(tenant_rows, title="Observed mixed workload (per tenant)"))
        spans: dict[str, dict] = {}
        for event in tracer.events():
            entry = spans.setdefault(
                event.name, {"span": event.name, "count": 0, "total_ms": 0.0}
            )
            entry["count"] += 1
            entry["total_ms"] += event.duration * 1e3
        span_rows = [
            {**entry, "total_ms": round(entry["total_ms"], 3)}
            for _, entry in sorted(spans.items())
        ]
        print(render_table(span_rows, title="Span timings"))
        counter_rows = [
            {"counter": name, "labels": sample["labels"], "value": sample["value"]}
            for name, family in registry.snapshot()["counters"].items()
            for sample in family["samples"]
        ]
        print(render_table(counter_rows, title="Counters"))
        print(
            f"ε-ledger total: {ledger['total_spent_epsilon']:g} across "
            f"{stats.datasets} tenants ({stats.streams} streams, "
            f"{stats.epochs} epochs) — bit-equal to the fleet accounting"
        )
    return 0


def _cmd_export_metrics(args: argparse.Namespace) -> int:
    with obs.session() as (registry, tracer):
        fleet = _obs_workload(args)
        stats = fleet.stats()  # publishes the per-tenant gauges
        ledger = _checked_ledger(fleet, stats)
        if args.format == "json":
            text = (
                json.dumps(
                    {
                        "epsilon_ledger": ledger,
                        "metrics": registry.snapshot(),
                        "spans": [event.to_json() for event in tracer.events()],
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
        else:
            text = registry.render_prometheus()
    if args.out:
        try:
            Path(args.out).write_text(text)
        except OSError as error:
            raise ReproError(
                f"cannot write metrics to {args.out}: {error}"
            ) from error
        # the exposition itself is the stdout payload, so chatter goes
        # to stderr where it cannot corrupt a piped scrape
        print(f"wrote {args.format} metrics to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Deferred import: the linter is a dev-facing tool and must not tax
    # the serving commands' startup path.
    from repro.statan.driver import run as statan_run

    argv: list[str] = list(args.paths)
    argv += ["--format", args.format]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.select:
        argv += ["--select", args.select]
    if args.list_passes:
        argv.append("--list-passes")
    return statan_run(argv)


def _cmd_datasets(args: argparse.Namespace) -> int:
    registry = default_registry()
    rows = [
        {
            "name": entry.name,
            "scale": entry.scale,
            "has_universal_variant": entry.universal is not None,
            "description": entry.description,
        }
        for entry in registry.entries()
    ]
    print(render_table(rows, title="Built-in synthetic datasets"))
    return 0


def _add_common_arguments(parser: argparse.ArgumentParser, with_privacy: bool = True):
    """Add the shared source/seed/out options; returns the source group.

    The returned mutually-exclusive group lets command-specific code add
    further input sources (e.g. the sharded commands' ``--domain-bits``)
    that argparse then guards against ``--counts-file``/``--dataset`` —
    a silently ignored explicit input must be a loud usage error.
    """
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--counts-file",
        help="text file with one per-bucket count per line (the L(I) vector)",
    )
    source.add_argument(
        "--dataset",
        default="nettrace",
        choices=sorted(default_registry().names()),
        help="built-in synthetic dataset to use instead of a counts file",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=["small", "paper"],
        help="size of the built-in dataset",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--out", help="write the result as CSV to this path")
    if with_privacy:
        parser.add_argument(
            "--epsilon", type=float, default=0.1, help="privacy parameter ε"
        )
    return source


def _add_estimator_arguments(parser: argparse.ArgumentParser) -> None:
    """The release-strategy options shared by every materializing command."""
    parser.add_argument(
        "--estimator",
        default="constrained",
        choices=sorted(ESTIMATOR_NAMES),
        help="release strategy, alias or paper name (constrained = the paper's H_bar)",
    )
    parser.add_argument(
        "--branching", type=int, default=2, help="tree branching factor k"
    )


def _add_stream_arguments(parser: argparse.ArgumentParser) -> None:
    """Store, stream identity, and ε-schedule options for streaming commands."""
    parser.add_argument(
        "--store", required=True,
        help="release store directory (epoch artifacts + lineage; created if missing)",
    )
    parser.add_argument(
        "--stream", default="stream", help="stream name (lineage file identity)"
    )
    parser.add_argument(
        "--epsilon0", type=float, default=0.4,
        help="ε of epoch 0; epoch i charges ε₀·decay^i",
    )
    parser.add_argument(
        "--decay", type=float, default=0.5,
        help="geometric ε decay per epoch, in (0, 1)",
    )
    parser.add_argument(
        "--total-epsilon", type=float, default=None,
        help="total budget this process may spend (defaults to ε₀/(1-decay), "
        "the schedule's infinite-horizon sum)",
    )
    _add_estimator_arguments(parser)


def _add_sharded_arguments(parser: argparse.ArgumentParser, source_group) -> None:
    """Partition, store, and worker options shared by the sharded commands.

    ``source_group`` is the input-source exclusion group from
    :func:`_add_common_arguments`; ``--domain-bits`` joins it so it can
    never silently override an explicitly passed counts file or dataset.
    """
    parser.add_argument(
        "--store", required=True,
        help="release store directory for per-shard artifacts (created if missing)",
    )
    source_group.add_argument(
        "--domain-bits", type=int, default=None, metavar="B",
        help="serve a synthetic Poisson histogram over 2^B buckets instead of "
        "--dataset/--counts-file (massive-domain demos without a data file)",
    )
    geometry = parser.add_mutually_exclusive_group()
    geometry.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="partition the domain into K near-equal shards",
    )
    geometry.add_argument(
        "--shard-size", type=int, default=None, metavar="W",
        help="partition into shards of width W (default 65536, the "
        "cache-resident sweet spot)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker-pool width for parallel shard builds (default: one per "
        "available core, affinity/cgroup aware)",
    )
    parser.add_argument(
        "--worker-mode", choices=("auto", "thread", "process"), default="auto",
        help="how parallel shard builds execute: 'process' uses a spawn "
        "process pool (real multicore — the build kernels hold the GIL, so "
        "threads add no cores), 'thread' stays in-process, and 'auto' "
        "(default) picks by worker count and shard width; releases are "
        "bit-identical in every mode",
    )
    parser.add_argument(
        "--total-epsilon", type=float, default=None,
        help="engine's total budget (defaults to --epsilon)",
    )
    _add_estimator_arguments(parser)


def _add_slo_arguments(parser: argparse.ArgumentParser) -> None:
    """The accuracy-SLO options shared by every serving command."""
    parser.add_argument(
        "--slo-halfwidth", type=float, default=None, metavar="W",
        help="accuracy SLO: target CI halfwidth per answer; enables "
        "per-answer error bars and SLO accounting",
    )
    parser.add_argument(
        "--slo-confidence", type=float, default=0.95, metavar="C",
        help="confidence level of the SLO's intervals (default 0.95)",
    )


def _resolve_slo(args: argparse.Namespace) -> AccuracySLO | None:
    # getattr: shared engine factories also serve commands that do not
    # expose the SLO flags (e.g. advance-epoch, which answers nothing).
    halfwidth = getattr(args, "slo_halfwidth", None)
    if halfwidth is None:
        return None
    return AccuracySLO(
        target_ci_halfwidth=halfwidth,
        confidence=getattr(args, "slo_confidence", 0.95),
    )


def _print_accuracy_summary(engine) -> None:
    """One accuracy line per served batch, for SLO-configured engines."""
    if getattr(engine, "slo", None) is None:
        return
    snapshot = engine.accuracy.snapshot()
    print(
        f"accuracy: {snapshot.within_slo}/{snapshot.answers} answers within "
        f"the ±{engine.slo.target_ci_halfwidth:g} SLO at "
        f"{engine.slo.confidence:.0%} confidence (mean CI halfwidth "
        f"{snapshot.mean_halfwidth:g}, worst {snapshot.max_halfwidth:g})"
    )


def _add_query_arguments(parser: argparse.ArgumentParser) -> None:
    """The query-selection group shared by every batch-answering command."""
    queries = parser.add_mutually_exclusive_group()
    queries.add_argument(
        "--queries-file", help="text file with one inclusive range 'lo hi' per line"
    )
    queries.add_argument(
        "--random", type=int, metavar="N", help="answer N random ranges (default 1000)"
    )
    queries.add_argument(
        "--prefixes", action="store_true", help="answer every prefix range [0, i]"
    )
    queries.add_argument(
        "--units", action="store_true", help="answer every unit count"
    )
    queries.add_argument(
        "--total", action="store_true", help="answer the whole-domain total"
    )
    parser.add_argument(
        "--query-seed", type=int, default=0, help="seed for --random query generation"
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Workload-shape options shared by the observability commands."""
    parser.add_argument(
        "--store",
        default=None,
        help="optional release store directory shared by the workload "
        "(a second run against it warm-starts every tenant)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--random", type=int, default=1000, metavar="N",
        help="random ranges per submitted batch",
    )
    parser.add_argument(
        "--query-seed", type=int, default=0, help="seed for query generation"
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Differentially private histograms with constrained inference "
        "(Hay et al., PVLDB 2010).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    unattributed = subparsers.add_parser(
        "unattributed", help="release a private unattributed histogram (sorted counts)"
    )
    _add_common_arguments(unattributed)
    unattributed.set_defaults(handler=_cmd_unattributed)

    universal = subparsers.add_parser(
        "universal", help="release a private universal histogram (range queries)"
    )
    _add_common_arguments(universal)
    universal.add_argument("--branching", type=int, default=2, help="tree branching factor k")
    universal.set_defaults(handler=_cmd_universal)

    compare_unattributed = subparsers.add_parser(
        "compare-unattributed", help="compare S~, S~r, S_bar on a dataset (Figure 5 style)"
    )
    _add_common_arguments(compare_unattributed, with_privacy=False)
    compare_unattributed.add_argument(
        "--epsilons", type=float, nargs="+", default=[1.0, 0.1, 0.01]
    )
    compare_unattributed.add_argument("--trials", type=int, default=10)
    compare_unattributed.set_defaults(handler=_cmd_compare_unattributed)

    compare_universal = subparsers.add_parser(
        "compare-universal", help="compare L~, H~, H_bar on a dataset (Figure 6 style)"
    )
    _add_common_arguments(compare_universal, with_privacy=False)
    compare_universal.add_argument(
        "--epsilons", type=float, nargs="+", default=[0.1]
    )
    compare_universal.add_argument("--trials", type=int, default=5)
    compare_universal.add_argument("--queries-per-size", type=int, default=50)
    compare_universal.add_argument("--branching", type=int, default=2)
    compare_universal.set_defaults(handler=_cmd_compare_universal)

    materialize = subparsers.add_parser(
        "materialize",
        help="pay ε once and persist a consistent private release as .npz",
    )
    _add_common_arguments(materialize)
    _add_estimator_arguments(materialize)
    materialize.add_argument(
        "--release", required=True, help="write the release artifact (.npz) to this path"
    )
    materialize.set_defaults(handler=_cmd_materialize)

    batch_query = subparsers.add_parser(
        "batch-query",
        help="answer range queries from a materialized release (no privacy cost)",
    )
    batch_query.add_argument(
        "--release", required=True, help="release artifact written by `materialize`"
    )
    _add_query_arguments(batch_query)
    batch_query.add_argument("--out", help="write lo,hi,estimate rows as CSV to this path")
    batch_query.set_defaults(handler=_cmd_batch_query)

    serve_store = subparsers.add_parser(
        "serve-store",
        help="serve queries over a durable release store (warm-starts after restart)",
    )
    _add_common_arguments(serve_store)
    serve_store.add_argument(
        "--store", required=True, help="release store directory (created if missing)"
    )
    _add_estimator_arguments(serve_store)
    serve_store.add_argument(
        "--total-epsilon",
        type=float,
        default=None,
        help="engine's total budget (defaults to --epsilon)",
    )
    _add_query_arguments(serve_store)
    _add_slo_arguments(serve_store)
    serve_store.set_defaults(handler=_cmd_serve_store)

    fleet = subparsers.add_parser(
        "fleet",
        help="serve several datasets behind one fleet façade with per-dataset budgets",
    )
    fleet.add_argument(
        "--datasets",
        nargs="+",
        required=True,
        choices=sorted(default_registry().names()),
        help="built-in datasets to register (each gets its own ε budget)",
    )
    fleet.add_argument(
        "--scale",
        default="small",
        choices=["small", "paper"],
        help="size of the built-in datasets",
    )
    fleet.add_argument("--seed", type=int, default=0, help="random seed")
    fleet.add_argument(
        "--epsilon", type=float, default=0.1, help="privacy parameter ε per release"
    )
    fleet.add_argument(
        "--total-epsilon",
        type=float,
        default=None,
        help="per-dataset total budget (defaults to --epsilon)",
    )
    _add_estimator_arguments(fleet)
    fleet.add_argument(
        "--store", help="shared release store directory (enables fleet warm starts)"
    )
    fleet.add_argument(
        "--random", type=int, default=1000, metavar="N",
        help="random ranges answered per dataset",
    )
    fleet.add_argument(
        "--query-seed", type=int, default=0, help="seed for query generation"
    )
    fleet.set_defaults(handler=_cmd_fleet)

    materialize_sharded = subparsers.add_parser(
        "materialize-sharded",
        help="build a sharded release over a massive domain (one ε, parallel "
        "per-shard builds, every shard persisted)",
    )
    source = _add_common_arguments(materialize_sharded)
    _add_sharded_arguments(materialize_sharded, source)
    materialize_sharded.set_defaults(handler=_cmd_materialize_sharded)

    serve_sharded = subparsers.add_parser(
        "serve-sharded",
        help="serve range queries over a sharded release through the shard "
        "router (warm-starts every shard from the store)",
    )
    source = _add_common_arguments(serve_sharded)
    _add_sharded_arguments(serve_sharded, source)
    _add_query_arguments(serve_sharded)
    _add_slo_arguments(serve_sharded)
    serve_sharded.set_defaults(handler=_cmd_serve_sharded)

    ingest = subparsers.add_parser(
        "ingest",
        help="append row arrivals to an owner-side stream directory",
    )
    _add_common_arguments(ingest, with_privacy=False)
    ingest.add_argument(
        "--stream-dir", required=True,
        help="owner-side stream state directory (created if missing)",
    )
    ingest_rows = ingest.add_mutually_exclusive_group()
    ingest_rows.add_argument(
        "--rows-file", help="text file with one arriving row's domain index per line"
    )
    ingest_rows.add_argument(
        "--rows", type=int, default=1000, metavar="N",
        help="generate N synthetic arrivals (hot-set traffic; default 1000)",
    )
    ingest.set_defaults(handler=_cmd_ingest)

    advance = subparsers.add_parser(
        "advance-epoch",
        help="fold pending arrivals into the next epoch's private release",
    )
    _add_common_arguments(advance, with_privacy=False)
    advance.add_argument(
        "--stream-dir", required=True,
        help="owner-side stream state directory written by `ingest`",
    )
    _add_stream_arguments(advance)
    advance.set_defaults(handler=_cmd_advance_epoch)

    serve_stream = subparsers.add_parser(
        "serve-stream",
        help="serve queries from a stream's latest epoch (zero-ε warm restart)",
    )
    _add_common_arguments(serve_stream, with_privacy=False)
    _add_stream_arguments(serve_stream)
    serve_stream.add_argument(
        "--epochs", type=int, default=0, metavar="K",
        help="simulate K extra epochs of synthetic arrivals before serving",
    )
    serve_stream.add_argument(
        "--rows-per-epoch", type=int, default=1000, metavar="N",
        help="synthetic arrivals per simulated epoch",
    )
    _add_query_arguments(serve_stream)
    _add_slo_arguments(serve_stream)
    serve_stream.set_defaults(handler=_cmd_serve_stream)

    stats = subparsers.add_parser(
        "stats",
        help="run an instrumented mixed workload and print the per-tenant "
        "rollup, span timings, and ε-ledger",
    )
    _add_obs_arguments(stats)
    stats.set_defaults(handler=_cmd_stats)

    export_metrics = subparsers.add_parser(
        "export-metrics",
        help="run an instrumented mixed workload and export its metrics and "
        "ε-ledger as Prometheus text or JSON",
    )
    _add_obs_arguments(export_metrics)
    export_metrics.add_argument(
        "--format",
        default="prometheus",
        choices=["prometheus", "json"],
        help="output format: Prometheus text exposition (default) or a JSON "
        "document with metrics, spans, and the full ε-ledger",
    )
    export_metrics.add_argument(
        "--out", help="write the exposition to this path instead of stdout"
    )
    export_metrics.set_defaults(handler=_cmd_export_metrics)

    datasets = subparsers.add_parser("datasets", help="list the built-in synthetic datasets")
    datasets.set_defaults(handler=_cmd_datasets)

    lint = subparsers.add_parser(
        "lint",
        help="run the repro.statan invariant linter over the source tree",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    lint.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="report format (default: human)",
    )
    lint.add_argument(
        "--baseline", help="baseline file of accepted findings"
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file, report every finding",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="accept the current findings into the baseline file",
    )
    lint.add_argument(
        "--select", help="comma-separated finding codes to run (e.g. EPS001,DET001)"
    )
    lint.add_argument(
        "--list-passes", action="store_true",
        help="list the registered passes and exit",
    )
    lint.set_defaults(handler=_cmd_lint)

    return parser


#: Exit codes for the failure classes scripts most often branch on.
#: 2 stays the generic :class:`~repro.exceptions.ReproError` code (and is
#: what argparse itself uses for bad usage); the specific codes let a
#: caller distinguish "budget spent" (back off) from "store damaged"
#: (operator attention) from "lineage conflict" (stale or forked state).
EXIT_BUDGET_EXHAUSTED = 3
EXIT_STORE_CORRUPTION = 4
EXIT_LINEAGE_CONFLICT = 5


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.cli``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BudgetExhaustedError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_BUDGET_EXHAUSTED
    except StoreCorruptionError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_STORE_CORRUPTION
    except LineageConflictError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_LINEAGE_CONFLICT
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
