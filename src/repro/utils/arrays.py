"""Array validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DomainError, QueryError

__all__ = [
    "as_float_vector",
    "as_float_vector_or_matrix",
    "as_nonnegative_counts",
    "as_range_bounds",
    "require_power_of",
]


def as_float_vector(values, name: str = "values") -> np.ndarray:
    """Coerce ``values`` into a 1-D float64 array, validating shape and finiteness."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise DomainError(f"{name} must be 1-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise DomainError(f"{name} must be non-empty")
    if not np.all(np.isfinite(array)):
        raise DomainError(f"{name} contains NaN or infinite entries")
    return array


def as_float_vector_or_matrix(values, name: str = "values") -> np.ndarray:
    """Coerce into a 1-D or 2-D float64 array, validating shape and finiteness.

    The 2-D form is the trial-batched layout used throughout the library:
    row ``t`` holds trial ``t``'s vector.  Callers that accept both shapes
    branch on ``result.ndim``.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.ndim not in (1, 2):
        raise DomainError(
            f"{name} must be 1- or 2-dimensional, got shape {array.shape}"
        )
    if array.size == 0:
        raise DomainError(f"{name} must be non-empty")
    if not np.all(np.isfinite(array)):
        raise DomainError(f"{name} contains NaN or infinite entries")
    return array


def as_nonnegative_counts(values, name: str = "counts") -> np.ndarray:
    """Like :func:`as_float_vector` but additionally requires entries >= 0."""
    array = as_float_vector(values, name=name)
    if np.any(array < 0):
        raise DomainError(f"{name} must be non-negative")
    return array


def as_range_bounds(
    los, his, domain_size: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Coerce and validate a batch of inclusive range bounds.

    Returns ``(los, his)`` as ``int64`` arrays after checking they are
    1-dimensional, equal-length, with ``0 <= lo <= hi`` everywhere and —
    when ``domain_size`` is given — ``hi < domain_size``.  Shared by the
    sorted-column index, the materialized release, and the query batch so
    the three batch entry points validate (and report) identically.
    """
    los = np.asarray(los, dtype=np.int64)
    his = np.asarray(his, dtype=np.int64)
    if los.ndim != 1 or his.ndim != 1 or los.size != his.size:
        raise QueryError(
            "range bounds must be two 1-dimensional arrays of equal length, "
            f"got shapes {los.shape} and {his.shape}"
        )
    if los.size:
        if los.min() < 0:
            raise QueryError(f"ranges must start at >= 0, got lo={los.min()}")
        if np.any(los > his):
            bad = int(np.argmax(los > his))
            raise QueryError(
                f"empty interval: lo={los[bad]} > hi={his[bad]} at position {bad}"
            )
        if domain_size is not None and his.max() >= domain_size:
            raise QueryError(
                f"ranges exceed the domain of size {domain_size}: hi={his.max()}"
            )
    return los, his


def require_power_of(n: int, base: int, name: str = "size") -> int:
    """Validate that ``n`` is a positive power of ``base`` (including base**0)."""
    if base < 2:
        raise DomainError(f"base must be >= 2, got {base}")
    if n < 1:
        raise DomainError(f"{name} must be positive, got {n}")
    value = n
    while value % base == 0:
        value //= base
    if value != 1:
        raise DomainError(f"{name}={n} is not a power of {base}")
    return n
