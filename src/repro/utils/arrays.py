"""Array validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DomainError

__all__ = ["as_float_vector", "as_nonnegative_counts", "require_power_of"]


def as_float_vector(values, name: str = "values") -> np.ndarray:
    """Coerce ``values`` into a 1-D float64 array, validating shape and finiteness."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise DomainError(f"{name} must be 1-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise DomainError(f"{name} must be non-empty")
    if not np.all(np.isfinite(array)):
        raise DomainError(f"{name} contains NaN or infinite entries")
    return array


def as_nonnegative_counts(values, name: str = "counts") -> np.ndarray:
    """Like :func:`as_float_vector` but additionally requires entries >= 0."""
    array = as_float_vector(values, name=name)
    if np.any(array < 0):
        raise DomainError(f"{name} must be non-negative")
    return array


def require_power_of(n: int, base: int, name: str = "size") -> int:
    """Validate that ``n`` is a positive power of ``base`` (including base**0)."""
    if base < 2:
        raise DomainError(f"base must be >= 2, got {base}")
    if n < 1:
        raise DomainError(f"{name} must be positive, got {n}")
    value = n
    while value % base == 0:
        value //= base
    if value != 1:
        raise DomainError(f"{name}={n} is not a power of {base}")
    return n
