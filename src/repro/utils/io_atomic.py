"""Atomic file writes and the canonical blocking-I/O call catalog.

This module is the single home of the write-then-rename crash-safety
protocol used by every durable surface in the repo — the release store's
artifacts and manifest (:mod:`repro.serving.store`), the monolithic and
sharded stream lineages (:mod:`repro.streaming.lineage`,
:mod:`repro.sharding.lineage`), and the CLI's owner-side stream state.
Each write lands in a temporary file in the *same directory* as the
target (so the final ``os.replace`` is a same-filesystem rename, which
POSIX guarantees to be atomic), is flushed and fsynced, and only then
renamed onto the destination.  A crash mid-write therefore leaves either
the old file or the new file, never a truncation.

It also exports :data:`BLOCKING_CALL_NAMES`,
:data:`BLOCKING_PATH_METHODS`, and :data:`BLOCKING_WAIT_NAMES` — the
allowlist of call shapes that the ``LOCK002`` static-analysis pass
(:mod:`repro.statan.locks`) treats as blocking (file I/O and backoff
waits).  Keeping the catalog next to the helpers means a new I/O
primitive added here is automatically policed at every lock-holding
call site.

The write path carries the repo's two crash-simulation fault points
(``io.flush`` and ``io.replace``, consulted behind the
``if faults.enabled():`` gate — zero overhead when injection is off).
An injected :class:`~repro.faults.injector.CrashFault` at ``io.replace``
deliberately leaves the temp file on disk, exactly as a process killed
between fsync and rename would; the next write to the same path sweeps
any such stale temp files before creating its own.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro import faults
from repro.faults.injector import CrashFault

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "BLOCKING_CALL_NAMES",
    "BLOCKING_PATH_METHODS",
    "BLOCKING_WAIT_NAMES",
]

#: Bare and dotted call names (as they appear in source) that perform
#: blocking file I/O.  Consumed by statan's LOCK002 pass: none of these
#: may be called while a ``# guarded-by:`` lock is held.
BLOCKING_CALL_NAMES = frozenset(
    {
        "open",
        "atomic_write_bytes",
        "atomic_write_json",
        "io_atomic.atomic_write_bytes",
        "io_atomic.atomic_write_json",
        "os.replace",
        "os.rename",
        "os.fsync",
        "os.fdopen",
        "os.remove",
        "os.unlink",
        "os.makedirs",
        "tempfile.mkstemp",
        "tempfile.mkdtemp",
        "json.dump",
        "json.load",
        "np.save",
        "np.savez",
        "np.savez_compressed",
        "np.load",
        "numpy.save",
        "numpy.savez",
        "numpy.savez_compressed",
        "numpy.load",
        "shutil.copy",
        "shutil.copy2",
        "shutil.move",
        "shutil.rmtree",
    }
)

#: Method names that perform blocking file I/O when invoked on a
#: :class:`~pathlib.Path`.  Kept separate from the dotted names because
#: a static pass can only see the attribute name, not the receiver type;
#: the list deliberately omits ambiguous names (``replace`` is also a
#: ``str`` method) — the dotted ``os.replace`` form covers those.
BLOCKING_PATH_METHODS = frozenset(
    {
        "read_text",
        "read_bytes",
        "write_text",
        "write_bytes",
        "mkdir",
        "rmdir",
        "touch",
    }
)

#: Call shapes that *wait* rather than touch the filesystem — backoff
#: sleeps and the shared retry runner.  LOCK002 treats these exactly
#: like blocking I/O: a ``# guarded-by:`` lock held across a retry wait
#: stalls every reader behind the backoff schedule.
BLOCKING_WAIT_NAMES = frozenset(
    {
        "sleep",
        "time.sleep",
        "run_with_retry",
        "retry.run_with_retry",
        "faults.run_with_retry",
        # Futures barriers: joining a worker pool while holding a lock
        # stalls every reader behind the slowest outstanding build.
        "wait",
        "futures.wait",
        "as_completed",
        "futures.as_completed",
    }
)


def _sweep_stale_temps(path: Path) -> None:
    """Remove temp files a crashed writer left next to ``path``.

    A process killed between writing its temp file and the atomic rename
    leaks one ``.{name}.XXXXXXXX.tmp`` sibling.  They are harmless to
    correctness (the rename never happened, so ``path`` is intact) but
    accumulate; the next writer owns the path and may clean them.
    """
    for stale in path.parent.glob(f".{path.name}.*.tmp"):
        stale.unlink(missing_ok=True)


def atomic_write_bytes(path: Path, write) -> None:
    """Run ``write(handle)`` against a temp file, then rename onto ``path``.

    ``write`` receives a binary file handle; whatever it writes becomes
    the complete new content of ``path``.  The temp file is created in
    ``path``'s directory so the final ``os.replace`` is an atomic
    same-filesystem rename; on any failure the temp file is removed and
    the original ``path`` (if any) is left untouched.  The one
    exception is an injected :class:`CrashFault` (chaos testing), which
    simulates a hard process death: the temp file is left behind, and
    swept up by the next write to the same path.
    """
    path = Path(path)
    _sweep_stale_temps(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
            if faults.enabled():
                faults.check("io.flush")
            handle.flush()
            os.fsync(handle.fileno())
        if faults.enabled():
            faults.check("io.replace")
        os.replace(tmp, path)
    except CrashFault:
        # A simulated crash cleans nothing up — that is the point: the
        # recovery tests must see exactly what a killed process leaves.
        raise
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_json(path: Path, document) -> None:
    """Atomically serialize ``document`` as stable, readable JSON at ``path``.

    The shared implementation behind every JSON ledger in the repo (store
    manifest, stream lineages): ``indent=2`` + ``sort_keys=True`` keeps
    the on-disk form diff-friendly and byte-stable for identical
    documents, and parent directories are created on demand.
    """
    path = Path(path)
    payload = json.dumps(document, indent=2, sort_keys=True).encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_bytes(path, lambda handle: handle.write(payload))
