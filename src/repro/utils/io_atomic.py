"""Atomic file writes and the canonical blocking-I/O call catalog.

This module is the single home of the write-then-rename crash-safety
protocol used by every durable surface in the repo — the release store's
artifacts and manifest (:mod:`repro.serving.store`), the monolithic and
sharded stream lineages (:mod:`repro.streaming.lineage`,
:mod:`repro.sharding.lineage`), and the CLI's owner-side stream state.
Each write lands in a temporary file in the *same directory* as the
target (so the final ``os.replace`` is a same-filesystem rename, which
POSIX guarantees to be atomic), is flushed and fsynced, and only then
renamed onto the destination.  A crash mid-write therefore leaves either
the old file or the new file, never a truncation.

It also exports :data:`BLOCKING_CALL_NAMES` and
:data:`BLOCKING_PATH_METHODS` — the allowlist of call shapes that the
``LOCK002`` static-analysis pass (:mod:`repro.statan.locks`) treats as
blocking file I/O.  Keeping the catalog next to the helpers means a new
I/O primitive added here is automatically policed at every lock-holding
call site.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "BLOCKING_CALL_NAMES",
    "BLOCKING_PATH_METHODS",
]

#: Bare and dotted call names (as they appear in source) that perform
#: blocking file I/O.  Consumed by statan's LOCK002 pass: none of these
#: may be called while a ``# guarded-by:`` lock is held.
BLOCKING_CALL_NAMES = frozenset(
    {
        "open",
        "atomic_write_bytes",
        "atomic_write_json",
        "io_atomic.atomic_write_bytes",
        "io_atomic.atomic_write_json",
        "os.replace",
        "os.rename",
        "os.fsync",
        "os.fdopen",
        "os.remove",
        "os.unlink",
        "os.makedirs",
        "tempfile.mkstemp",
        "tempfile.mkdtemp",
        "json.dump",
        "json.load",
        "np.save",
        "np.savez",
        "np.savez_compressed",
        "np.load",
        "numpy.save",
        "numpy.savez",
        "numpy.savez_compressed",
        "numpy.load",
        "shutil.copy",
        "shutil.copy2",
        "shutil.move",
        "shutil.rmtree",
    }
)

#: Method names that perform blocking file I/O when invoked on a
#: :class:`~pathlib.Path`.  Kept separate from the dotted names because
#: a static pass can only see the attribute name, not the receiver type;
#: the list deliberately omits ambiguous names (``replace`` is also a
#: ``str`` method) — the dotted ``os.replace`` form covers those.
BLOCKING_PATH_METHODS = frozenset(
    {
        "read_text",
        "read_bytes",
        "write_text",
        "write_bytes",
        "mkdir",
        "rmdir",
        "touch",
    }
)


def atomic_write_bytes(path: Path, write) -> None:
    """Run ``write(handle)`` against a temp file, then rename onto ``path``.

    ``write`` receives a binary file handle; whatever it writes becomes
    the complete new content of ``path``.  The temp file is created in
    ``path``'s directory so the final ``os.replace`` is an atomic
    same-filesystem rename; on any failure the temp file is removed and
    the original ``path`` (if any) is left untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_json(path: Path, document) -> None:
    """Atomically serialize ``document`` as stable, readable JSON at ``path``.

    The shared implementation behind every JSON ledger in the repo (store
    manifest, stream lineages): ``indent=2`` + ``sort_keys=True`` keeps
    the on-disk form diff-friendly and byte-stable for identical
    documents, and parent directories are created on demand.
    """
    path = Path(path)
    payload = json.dumps(document, indent=2, sort_keys=True).encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_bytes(path, lambda handle: handle.write(payload))
