"""Small shared utilities (random-state handling, array validation)."""

from repro.utils.random import as_generator, spawn_generators
from repro.utils.arrays import (
    as_float_vector,
    as_nonnegative_counts,
    require_power_of,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "as_float_vector",
    "as_nonnegative_counts",
    "require_power_of",
]
