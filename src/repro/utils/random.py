"""Random-state handling.

Every randomized API in the library accepts ``rng`` as either ``None``
(fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
convention uniform and makes experiments reproducible by passing a single
seed at the top level.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["as_generator", "spawn_generators", "trial_streams"]


def as_generator(rng: np.random.Generator | int | None = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` draws fresh OS entropy; an ``int`` seeds a new PCG64 stream;
    an existing generator is returned unchanged (not copied) so that
    callers sharing one generator consume a single stream.
    """
    if rng is None:
        # The documented fresh-entropy contract of rng=None: callers who
        # need bit-reproducibility pass a seed; unseeded is the explicit
        # opt-out, so DET001's no-unseeded-rng rule does not apply here.
        return np.random.default_rng()  # statan: ignore[DET001]
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator, got {type(rng).__name__}"
    )


def spawn_generators(rng: np.random.Generator | int | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent child generators from one parent.

    Used by experiment runners so that each trial has an independent,
    reproducible stream regardless of how many samples earlier trials drew.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = as_generator(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def trial_streams(
    rng, trials: int
) -> list[np.random.Generator] | None:
    """Interpret ``rng`` as a per-trial seed schedule, when it is one.

    The batched (``*_many``) APIs accept ``rng`` in two forms:

    * a single stream — ``None``, an ``int`` seed, or a ``Generator`` —
      the fast path, where the whole ``(trials, n)`` noise matrix is drawn
      in one vectorized RNG call;
    * a *seed schedule* — a sequence of ``trials`` per-trial seeds or
      generators (``[s0, .., sT]`` or the output of
      :func:`spawn_generators`).  Trial ``t`` then consumes exactly the
      stream the scalar API would consume with ``rng=schedule[t]``, which
      makes batched outputs bit-for-bit equal to ``trials`` scalar calls.

    Returns the list of per-trial generators for a schedule, or ``None``
    for the single-stream case (the caller draws the matrix in one call).
    """
    if trials < 0:
        raise ValueError(f"trials must be non-negative, got {trials}")
    if rng is None or isinstance(rng, np.random.Generator):
        return None
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return None
    if isinstance(rng, np.ndarray):
        if rng.ndim != 1 or rng.dtype.kind not in "iu":
            raise TypeError(
                "a seed-schedule array must be 1-dimensional and integer-typed, "
                f"got shape {rng.shape} dtype {rng.dtype}"
            )
        rng = rng.tolist()
    if isinstance(rng, Sequence):
        if len(rng) != trials:
            raise ValueError(
                f"seed schedule has {len(rng)} entries for {trials} trials"
            )
        return [as_generator(entry) for entry in rng]
    raise TypeError(
        "rng must be None, an int seed, a numpy Generator, or a sequence of "
        f"per-trial seeds/generators, got {type(rng).__name__}"
    )
