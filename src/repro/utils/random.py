"""Random-state handling.

Every randomized API in the library accepts ``rng`` as either ``None``
(fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
convention uniform and makes experiments reproducible by passing a single
seed at the top level.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_generators"]


def as_generator(rng: np.random.Generator | int | None = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` draws fresh OS entropy; an ``int`` seeds a new PCG64 stream;
    an existing generator is returned unchanged (not copied) so that
    callers sharing one generator consume a single stream.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator, got {type(rng).__name__}"
    )


def spawn_generators(rng: np.random.Generator | int | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent child generators from one parent.

    Used by experiment runners so that each trial has an independent,
    reproducible stream regardless of how many samples earlier trials drew.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = as_generator(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]
