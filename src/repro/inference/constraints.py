"""Constraint sets γ_Q and their satisfaction checks.

Constraints are properties of the *query*, not the data (Section 1), so
they are known to the analyst a priori.  The two constraint families in
the paper are represented explicitly so that code (and tests) can ask
three questions about any vector: does it satisfy the constraints, how
badly does it violate them, and project-onto-them via the corresponding
inference routine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConstraintViolationError
from repro.queries.hierarchical import TreeLayout
from repro.utils.arrays import as_float_vector

__all__ = ["OrderingConstraints", "TreeConsistencyConstraints"]


@dataclass(frozen=True)
class OrderingConstraints:
    """γ_S: the answer vector must be non-decreasing (``s[i] <= s[i+1]``)."""

    length: int
    tolerance: float = 1e-9

    def check_shape(self, values) -> np.ndarray:
        values = as_float_vector(values, name="values")
        if values.size != self.length:
            raise ConstraintViolationError(
                f"vector has length {values.size}, constraints expect {self.length}"
            )
        return values

    def satisfied_by(self, values) -> bool:
        """True when the vector is sorted in non-decreasing order."""
        values = self.check_shape(values)
        if values.size <= 1:
            return True
        return bool(np.all(values[1:] - values[:-1] >= -self.tolerance))

    def violation_count(self, values) -> int:
        """Number of adjacent pairs that are out of order."""
        values = self.check_shape(values)
        if values.size <= 1:
            return 0
        return int(np.sum(values[:-1] - values[1:] > self.tolerance))

    def max_violation(self, values) -> float:
        """Largest amount by which an adjacent pair is out of order."""
        values = self.check_shape(values)
        if values.size <= 1:
            return 0.0
        return float(max(0.0, np.max(values[:-1] - values[1:])))

    def require(self, values) -> np.ndarray:
        """Validate, raising :class:`ConstraintViolationError` when violated."""
        values = self.check_shape(values)
        if not self.satisfied_by(values):
            raise ConstraintViolationError(
                f"ordering constraints violated at {self.violation_count(values)} "
                f"positions (max gap {self.max_violation(values):.3g})"
            )
        return values


@dataclass(frozen=True)
class TreeConsistencyConstraints:
    """γ_H: every internal node's count equals the sum of its children."""

    layout: TreeLayout
    tolerance: float = 1e-6

    def check_shape(self, values) -> np.ndarray:
        values = as_float_vector(values, name="values")
        if values.size != self.layout.num_nodes:
            raise ConstraintViolationError(
                f"vector has length {values.size}, "
                f"tree has {self.layout.num_nodes} nodes"
            )
        return values

    def residuals(self, values) -> np.ndarray:
        """Per-internal-node residual ``value - sum(children)``.

        Vectorised level by level; residuals are listed in breadth-first
        order of the internal nodes.
        """
        values = self.check_shape(values)
        residuals = np.empty(self.layout.num_internal, dtype=np.float64)
        k = self.layout.branching
        for level in range(self.layout.height - 1):
            parents = values[self.layout.level_slice(level)]
            children = values[self.layout.level_slice(level + 1)]
            child_sums = children.reshape(-1, k).sum(axis=1)
            level_slice = self.layout.level_slice(level)
            residuals[level_slice.start : level_slice.stop] = parents - child_sums
        return residuals

    def satisfied_by(self, values) -> bool:
        """True when every parent equals the sum of its children (within tolerance)."""
        if self.layout.num_internal == 0:
            self.check_shape(values)
            return True
        return bool(np.all(np.abs(self.residuals(values)) <= self.tolerance))

    def violation_count(self, values) -> int:
        """Number of internal nodes violating the sum constraint."""
        if self.layout.num_internal == 0:
            self.check_shape(values)
            return 0
        return int(np.sum(np.abs(self.residuals(values)) > self.tolerance))

    def max_violation(self, values) -> float:
        """Largest absolute parent-vs-children discrepancy."""
        if self.layout.num_internal == 0:
            self.check_shape(values)
            return 0.0
        return float(np.max(np.abs(self.residuals(values))))

    def require(self, values) -> np.ndarray:
        """Validate, raising :class:`ConstraintViolationError` when violated."""
        values = self.check_shape(values)
        if not self.satisfied_by(values):
            raise ConstraintViolationError(
                f"tree-consistency constraints violated at "
                f"{self.violation_count(values)} nodes "
                f"(max residual {self.max_violation(values):.3g})"
            )
        return values
