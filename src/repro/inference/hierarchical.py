"""Hierarchical constrained inference (Theorem 3) for the ``H`` query.

Given the noisy breadth-first tree counts ``h̃``, the minimum-L2 vector
satisfying the parent-equals-sum-of-children constraints γ_H is computed
by two linear passes over the tree:

1. **Bottom-up** — compute an intermediate estimate ``z[v]`` for every
   node: leaves keep their noisy value, and an internal node of height
   ``l`` (leaves have height 1) takes the inverse-variance-weighted
   average of its own noisy count and the sum of its children's ``z``
   values::

       z[v] = (k^l - k^(l-1))/(k^l - 1) * h̃[v]
            + (k^(l-1) - 1)/(k^l - 1)   * Σ_{u ∈ succ(v)} z[u]

2. **Top-down** — the root's final estimate is ``z[root]``; descending the
   tree, any discrepancy between a parent's final estimate and the sum of
   its children's ``z`` values is divided equally among the ``k``
   children::

       h̄[v] = z[v] + (1/k) * ( h̄[parent(v)] - Σ_{w ∈ succ(parent(v))} z[w] )

Both passes are vectorised level by level *and across Monte Carlo trials*:
every entry point accepts either one noisy tree (a 1-D vector of
``num_nodes`` values) or a stacked batch of ``trials`` independent noisy
trees (a ``(trials, num_nodes)`` matrix).  The per-level
``reshape(-1, k).sum`` becomes ``reshape(trials, -1, k).sum(axis=2)``, so
inferring 64 trials costs one pass over a matrix instead of 64 scalar
passes — row ``t`` of the batched result is bit-for-bit the scalar result
for row ``t`` of the input.

The module also implements the Section 4.2 non-negativity heuristic: after
inference, any subtree whose root estimate is ``<= 0`` is zeroed out
entirely.  This is exposed as an option rather than always applied, so the
ablation benchmark can quantify its effect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InferenceError
from repro.queries.hierarchical import TreeLayout
from repro.utils.arrays import as_float_vector_or_matrix

__all__ = ["HierarchicalInference", "hierarchical_inference"]


@dataclass
class HierarchicalInference:
    """Constrained-inference engine bound to one tree layout."""

    layout: TreeLayout

    # -- main entry points ----------------------------------------------------

    def infer(self, noisy_values) -> np.ndarray:
        """Minimum-L2 consistent tree counts ``h̄`` for the noisy vector ``h̃``.

        Accepts one tree (1-D, ``num_nodes`` entries) or a trial batch
        (``(trials, num_nodes)``); the output matches the input shape.
        Leaves are the last ``num_leaves`` entries of each row.
        """
        values, batched = self._check(noisy_values)
        z_levels = self._bottom_up(values)
        h_levels = self._top_down(z_levels)
        return self._flatten(h_levels, batched)

    def infer_leaves(self, noisy_values) -> np.ndarray:
        """Convenience: the consistent estimates of the unit counts only."""
        return self.infer(noisy_values)[..., self.layout.leaf_offset :]

    def infer_nonnegative(self, noisy_values) -> np.ndarray:
        """Inference followed by the Section 4.2 non-negativity heuristic.

        After computing ``h̄``, every subtree whose root estimate is
        ``<= 0`` is set to zero (the root and all of its descendants).
        The result is still consistent and non-negative wherever the
        heuristic fired; remaining small negative leaf estimates (under a
        positive parent) are left untouched, matching the paper.
        """
        values = self.infer(noisy_values)
        return self.zero_nonpositive_subtrees(values)

    # -- heuristics --------------------------------------------------------------

    def zero_nonpositive_subtrees(self, values) -> np.ndarray:
        """Zero out every subtree whose root has a non-positive estimate.

        Works on one tree or a ``(trials, num_nodes)`` batch; the "zeroed"
        mask propagates down the levels independently per trial.
        """
        values, batched = self._check(values)
        values = values.copy()
        k = self.layout.branching
        zeroed = values[:, self.layout.level_slice(0)] <= 0.0
        values[:, self.layout.level_slice(0)][zeroed] = 0.0
        for level in range(1, self.layout.height):
            level_values = values[:, self.layout.level_slice(level)]
            inherited = np.repeat(zeroed, k, axis=1)
            zeroed = inherited | (level_values <= 0.0)
            # Only zero where the node itself or an ancestor triggered the
            # heuristic; other nodes keep their inferred value.
            level_values[zeroed] = 0.0
        return values if batched else values[0]

    # -- internals ----------------------------------------------------------------

    def _check(self, values) -> tuple[np.ndarray, bool]:
        """Coerce to a ``(trials, num_nodes)`` matrix; flag whether input was 2-D."""
        values = as_float_vector_or_matrix(values, name="noisy tree counts")
        batched = values.ndim == 2
        if not batched:
            values = values[np.newaxis, :]
        if values.shape[1] != self.layout.num_nodes:
            raise InferenceError(
                f"expected {self.layout.num_nodes} node values per tree, "
                f"got {values.shape[1]}"
            )
        return values, batched

    def _split_levels(self, values: np.ndarray) -> list[np.ndarray]:
        return [
            values[:, self.layout.level_slice(level)].copy()
            for level in range(self.layout.height)
        ]

    def _flatten(self, levels: list[np.ndarray], batched: bool) -> np.ndarray:
        stacked = np.concatenate(levels, axis=1)
        return stacked if batched else stacked[0]

    def _bottom_up(self, noisy: np.ndarray) -> list[np.ndarray]:
        """Compute the ``z`` estimates level by level, leaves first."""
        k = self.layout.branching
        height = self.layout.height
        trials = noisy.shape[0]
        levels = self._split_levels(noisy)
        z_levels: list[np.ndarray] = [np.empty(0)] * height
        z_levels[height - 1] = levels[height - 1].copy()
        for level in range(height - 2, -1, -1):
            node_height = height - level  # leaves have height 1
            child_sums = z_levels[level + 1].reshape(trials, -1, k).sum(axis=2)
            k_l = float(k**node_height)
            k_lm1 = float(k ** (node_height - 1))
            own_weight = (k_l - k_lm1) / (k_l - 1.0)
            child_weight = (k_lm1 - 1.0) / (k_l - 1.0)
            z_levels[level] = own_weight * levels[level] + child_weight * child_sums
        return z_levels

    def _top_down(self, z_levels: list[np.ndarray]) -> list[np.ndarray]:
        """Distribute parent/child discrepancies downward (Theorem 3 recurrence)."""
        k = self.layout.branching
        height = self.layout.height
        trials = z_levels[0].shape[0]
        h_levels: list[np.ndarray] = [np.empty(0)] * height
        h_levels[0] = z_levels[0].copy()
        for level in range(1, height):
            parent_h = h_levels[level - 1]
            child_sums = z_levels[level].reshape(trials, -1, k).sum(axis=2)
            corrections = (parent_h - child_sums) / k
            h_levels[level] = z_levels[level] + np.repeat(corrections, k, axis=1)
        return h_levels


def hierarchical_inference(
    noisy_values, layout: TreeLayout, nonnegative: bool = False
) -> np.ndarray:
    """Functional front-end: consistent tree counts for ``noisy_values``.

    Parameters
    ----------
    noisy_values:
        Breadth-first noisy node counts ``h̃`` — one tree (1-D) or a
        stacked trial batch (``(trials, num_nodes)``).
    layout:
        The tree geometry the counts were produced for.
    nonnegative:
        Apply the Section 4.2 zero-out-non-positive-subtrees heuristic.
    """
    engine = HierarchicalInference(layout)
    if nonnegative:
        return engine.infer_nonnegative(noisy_values)
    return engine.infer(noisy_values)
