"""Brute-force constrained least-squares oracles.

The closed-form inference algorithms (Theorems 1 and 3) are efficient but
intricate; these oracles restate the underlying optimisation problems in
the most direct way possible and solve them with generic numerical
machinery.  They exist so the test suite can confirm, on small instances,
that the closed forms solve exactly the problem the paper says they solve.

* :func:`ols_tree_inference` — Section 4.1 observes that finding ``h̄`` is
  linear regression: the unknowns are the true leaf counts ``x``; every
  noisy node count is a fixed linear combination ``A·x`` plus noise, so
  the minimum-L2 consistent vector is ``A·x̂`` with
  ``x̂ = (AᵀA)⁻¹Aᵀh̃`` (ordinary least squares through the strategy
  matrix).
* :func:`isotonic_oracle` — the isotonic problem re-parametrised as a
  bounded least-squares problem: ``s[i] = t + Σ_{j<=i} u_j`` with
  ``u_j >= 0``, solved with :func:`scipy.optimize.lsq_linear`.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.exceptions import InferenceError
from repro.queries.hierarchical import HierarchicalQuery
from repro.utils.arrays import as_float_vector

__all__ = ["ols_tree_inference", "isotonic_oracle"]


def ols_tree_inference(noisy_values, query: HierarchicalQuery) -> np.ndarray:
    """Ordinary-least-squares solution to the tree-consistency problem.

    Returns the consistent breadth-first node vector ``A·x̂``.  Cost is
    cubic in the number of leaves — use only on validation-sized trees.
    """
    from repro.queries.matrix import strategy_matrix

    noisy_values = as_float_vector(noisy_values, name="noisy tree counts")
    if noisy_values.size != query.layout.num_nodes:
        raise InferenceError(
            f"expected {query.layout.num_nodes} node values, got {noisy_values.size}"
        )
    matrix = strategy_matrix(query)
    gram = matrix.T @ matrix
    try:
        leaf_estimate = np.linalg.solve(gram, matrix.T @ noisy_values)
    except np.linalg.LinAlgError as exc:
        raise InferenceError("strategy matrix is rank deficient") from exc
    return matrix @ leaf_estimate


def isotonic_oracle(values, max_iterations: int = 20_000) -> np.ndarray:
    """Solve the isotonic regression problem with a generic bounded solver.

    The ordered vector is parametrised as ``s[0] = t`` and
    ``s[i] = t + Σ_{j <= i} u_j`` with increments ``u_j >= 0``; minimising
    ``||values - s||²`` over ``(t, u)`` is a bounded linear least-squares
    problem handled by :func:`scipy.optimize.lsq_linear`.

    Intended for small vectors (tests compare it against PAVA); the design
    matrix is dense ``n × n``.
    """
    values = as_float_vector(values, name="values")
    n = values.size
    if n == 1:
        return values.copy()
    # Design matrix: column 0 is the intercept t, column j >= 1 contributes
    # the increment u_j to all positions >= j.
    design = np.zeros((n, n), dtype=np.float64)
    design[:, 0] = 1.0
    for j in range(1, n):
        design[j:, j] = 1.0
    lower = np.full(n, 0.0)
    lower[0] = -np.inf
    upper = np.full(n, np.inf)
    result = optimize.lsq_linear(
        design,
        values,
        bounds=(lower, upper),
        max_iter=max_iterations,
        tol=1e-12,
    )
    if not result.success:
        raise InferenceError(f"isotonic oracle failed to converge: {result.message}")
    return design @ result.x
