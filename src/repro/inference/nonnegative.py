"""Non-negativity and integrality post-processing.

The Section 5 experiments enforce integrality and non-negativity on every
estimator's final unit counts by "rounding to the nearest non-negative
integer"; the sorted baseline ``S̃r`` additionally sorts first.  These
small helpers implement that shared post-processing.  Like constrained
inference itself, they operate only on the mechanism's output and
therefore cannot affect the privacy guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.utils.arrays import as_float_vector_or_matrix

__all__ = ["round_to_nonnegative_integers", "clip_nonnegative", "sort_and_round"]


def round_to_nonnegative_integers(values) -> np.ndarray:
    """Round each entry to the nearest integer and clip negatives to zero.

    Accepts one vector or a ``(trials, n)`` batch; entirely elementwise, so
    batched rows equal the corresponding scalar results bit for bit.
    """
    values = as_float_vector_or_matrix(values, name="values")
    return np.clip(np.rint(values), 0.0, None)


def clip_nonnegative(values) -> np.ndarray:
    """Clip negative entries to zero without rounding (vector or batch)."""
    values = as_float_vector_or_matrix(values, name="values")
    return np.clip(values, 0.0, None)


def sort_and_round(values) -> np.ndarray:
    """The S̃r baseline: sort ascending, then round to non-negative integers.

    Sorting restores consistency with the ordering constraints of the
    sorted query; the comparison against constrained inference in Figure 5
    shows that *how* consistency is restored matters.  A ``(trials, n)``
    batch is sorted row by row.
    """
    values = as_float_vector_or_matrix(values, name="values")
    fitted = np.sort(values, axis=-1)
    # np.sort returned a fresh array; round and clip it in place.
    np.rint(fitted, out=fitted)
    np.clip(fitted, 0.0, None, out=fitted)
    return fitted
