"""Isotonic regression: constrained inference for the sorted query ``S``.

Given the noisy answer ``s̃`` to the sorted query, the minimum-L2
consistent answer is the vector ``s̄`` minimising ``||s̃ - s̄||_2`` subject
to ``s̄[1] <= s̄[2] <= ... <= s̄[n]`` — least-squares regression under
ordering constraints, i.e. isotonic regression.

Two implementations are provided:

* :func:`isotonic_regression_pava` — the Pool Adjacent Violators Algorithm
  (Barlow et al.), linear time: scan the sequence keeping a stack of
  blocks; whenever a new value breaks the ordering against the last block,
  merge blocks (replacing them by their weighted mean) until the stack is
  non-decreasing again.  This is the production implementation used by the
  estimators.
* :func:`isotonic_regression_minmax` — the closed form of the paper's
  Theorem 1: ``s̄[k] = min_{j >= k} max_{i <= j} mean(s̃[i..j])``.
  Because the inner maximum does not depend on ``k``, it can be computed
  in ``O(n²)`` as a suffix minimum of per-``j`` prefix maxima.  It is kept
  as an executable statement of the theorem and as an oracle for the PAVA
  implementation (tests assert the two agree to numerical precision).
* :func:`isotonic_regression_blocks` — the trial-vectorized production
  implementation: a NumPy block-merge that accepts one sequence (1-D) or a
  whole Monte Carlo batch (``(trials, n)``, rows independent) and
  repeatedly pools maximal runs of adjacent violating blocks until the
  ordering holds.  Each merged block's value is the weighted mean of the
  *original* entries it covers, computed per-segment with
  ``np.add.reduceat``, so a one-row call is bit-for-bit identical to the
  corresponding row of a many-row call — the property the batched
  estimators rely on.  The scalar stack-based PAVA above is kept as the
  oracle it is tested against.

All variants accept optional positive weights (weighted isotonic
regression), which the library uses when averaging repeated trials.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InferenceError
from repro.utils.arrays import as_float_vector, as_float_vector_or_matrix

__all__ = [
    "isotonic_regression",
    "isotonic_regression_pava",
    "isotonic_regression_minmax",
    "isotonic_regression_blocks",
]


def _check_inputs(values, weights) -> tuple[np.ndarray, np.ndarray]:
    values = as_float_vector(values, name="values")
    if weights is None:
        weights = np.ones_like(values)
    else:
        weights = as_float_vector(weights, name="weights")
        if weights.size != values.size:
            raise InferenceError(
                f"weights length {weights.size} does not match values length {values.size}"
            )
        if np.any(weights <= 0):
            raise InferenceError("weights must be strictly positive")
    return values, weights


def isotonic_regression_pava(values, weights=None) -> np.ndarray:
    """Minimum-L2 non-decreasing fit of ``values`` via Pool Adjacent Violators.

    Runs in ``O(n)`` time and memory: each input element is pushed onto the
    block stack once and each merge removes a block permanently.

    Parameters
    ----------
    values:
        The (noisy) sequence to fit.
    weights:
        Optional positive per-element weights; the fit minimises
        ``sum_i w_i (values[i] - fit[i])²``.
    """
    values, weights = _check_inputs(values, weights)
    n = values.size
    # Block stack: for each block keep (weighted mean, total weight, count).
    means = np.empty(n, dtype=np.float64)
    totals = np.empty(n, dtype=np.float64)
    counts = np.empty(n, dtype=np.int64)
    top = -1
    for i in range(n):
        top += 1
        means[top] = values[i]
        totals[top] = weights[i]
        counts[top] = 1
        # Merge while the ordering is violated against the previous block.
        while top > 0 and means[top - 1] > means[top]:
            merged_weight = totals[top - 1] + totals[top]
            means[top - 1] = (
                totals[top - 1] * means[top - 1] + totals[top] * means[top]
            ) / merged_weight
            totals[top - 1] = merged_weight
            counts[top - 1] += counts[top]
            top -= 1
    fitted = np.empty(n, dtype=np.float64)
    position = 0
    for block in range(top + 1):
        fitted[position : position + counts[block]] = means[block]
        position += counts[block]
    return fitted


def isotonic_regression_minmax(values, weights=None) -> np.ndarray:
    """Minimum-L2 non-decreasing fit via the Theorem 1 min-max formula.

    ``s̄[k] = L_k = min_{j in [k, n]} max_{i in [1, j]} M̃[i, j]`` where
    ``M̃[i, j]`` is the (weighted) mean of ``values[i..j]``.  Complexity is
    ``O(n²)``; intended for validation and for small sequences.
    """
    values, weights = _check_inputs(values, weights)
    n = values.size
    weighted = np.concatenate(([0.0], np.cumsum(values * weights)))
    weight_sums = np.concatenate(([0.0], np.cumsum(weights)))

    def mean(i: int, j: int) -> float:
        # Inclusive 0-based mean of values[i..j].
        return (weighted[j + 1] - weighted[i]) / (weight_sums[j + 1] - weight_sums[i])

    # G[j] = max_{i <= j} mean(i, j); the inner maximum of the theorem.
    suffix_candidates = np.empty(n, dtype=np.float64)
    for j in range(n):
        best = -np.inf
        for i in range(j + 1):
            best = max(best, mean(i, j))
        suffix_candidates[j] = best
    # L_k = min_{j >= k} G[j]: a suffix minimum.
    fitted = np.empty(n, dtype=np.float64)
    running = np.inf
    for k in range(n - 1, -1, -1):
        running = min(running, suffix_candidates[k])
        fitted[k] = running
    return fitted


def _check_inputs_matrix(values, weights) -> tuple[np.ndarray, np.ndarray | None, bool]:
    """Coerce to a ``(trials, n)`` matrix plus optional matching weights."""
    values = as_float_vector_or_matrix(values, name="values")
    batched = values.ndim == 2
    if not batched:
        values = values[np.newaxis, :]
    if weights is None:
        return values, None, batched
    weights = as_float_vector_or_matrix(weights, name="weights")
    if weights.ndim == 1:
        if weights.size != values.shape[1]:
            raise InferenceError(
                f"weights length {weights.size} does not match values length "
                f"{values.shape[1]}"
            )
        weights = np.broadcast_to(weights, values.shape)
    if weights.shape != values.shape:
        raise InferenceError(
            f"weights shape {weights.shape} does not match values shape {values.shape}"
        )
    if np.any(weights <= 0):
        raise InferenceError("weights must be strictly positive")
    return values, weights, batched


def isotonic_regression_blocks(values, weights=None) -> np.ndarray:
    """Minimum-L2 non-decreasing fit via vectorized block merging.

    Accepts one sequence (1-D) or a stacked Monte Carlo batch
    (``(trials, n)``; each row is fitted independently).  The rows are laid
    out in one flat block array and every round pools the maximal runs of
    adjacent blocks that violate the ordering (runs never cross a row
    boundary); block counts shrink geometrically, so a handful of
    vectorized rounds replaces the per-element Python scan of
    :func:`isotonic_regression_pava`.

    Merged block values are (weighted) means of the original entries,
    accumulated per segment with ``np.add.reduceat`` — never with prefix
    sums across rows — so row ``t`` of a batched call is bit-for-bit equal
    to a 1-D call on row ``t`` alone.  Agreement with the scalar PAVA
    oracle is to numerical precision (identical block partitions, means
    accumulated in a different order).
    """
    values, weights, batched = _check_inputs_matrix(values, weights)
    trials, n = values.shape
    total = trials * n
    unweighted = weights is None
    if unweighted:
        # First round straight on the elements, in 2-D: row boundaries are
        # implicit (column 0 always opens a group) and the element values
        # are the block means (``v / 1.0 == v`` exactly), so the initial
        # per-block bookkeeping arrays never have to materialise at full
        # element size.
        opens = np.empty((trials, n), dtype=bool)
        opens[:, 0] = True
        np.less_equal(values[:, :-1], values[:, 1:], out=opens[:, 1:])
        group_starts = np.flatnonzero(opens.ravel())
        if group_starts.size == total:
            fitted = values.astype(np.float64, copy=True)
            return fitted if batched else fitted[0]
        vsum = np.add.reduceat(values.ravel(), group_starts)
        starts = group_starts
        interior = (group_starts % n) != 0
        wsum = np.diff(starts, append=total).astype(np.float64)
    else:
        vsum = (values * weights).ravel()
        wsum = weights.ravel().astype(np.float64, copy=True)
        # Block state, in flat element order: start index, value/weight
        # sums, and whether the block is interior to its row (only those
        # are merge candidates).
        starts = np.arange(total, dtype=np.int64)
        interior = np.ones(total, dtype=bool)
        interior[0::n] = False
    means = vsum / wsum
    while True:
        # A block opens a merge group unless it violates the ordering
        # against its predecessor within the same row; each maximal run of
        # violation-chained blocks then collapses into one block.
        opens = (means[:-1] <= means[1:]) | ~interior[1:]
        opens_at = np.flatnonzero(opens)
        if opens_at.size + 1 == means.size:
            break
        group_starts = np.empty(opens_at.size + 1, dtype=np.int64)
        group_starts[0] = 0
        np.add(opens_at, 1, out=group_starts[1:])
        vsum = np.add.reduceat(vsum, group_starts)
        starts = starts[group_starts]
        interior = interior[group_starts]
        if unweighted:
            # Unit weights: a block's weight is its element count, which
            # the start offsets already encode (bit-identical to summing
            # the unit weights).
            wsum = np.diff(starts, append=total).astype(np.float64)
        else:
            wsum = np.add.reduceat(wsum, group_starts)
        means = vsum / wsum
    lengths = np.diff(starts, append=total)
    fitted = np.repeat(means, lengths).reshape(trials, n)
    return fitted if batched else fitted[0]


def isotonic_regression(values, weights=None, method: str = "pava") -> np.ndarray:
    """Dispatching front-end for isotonic regression.

    ``method`` is ``"pava"`` (default, the linear-time scalar scan),
    ``"blocks"`` (vectorized block merging; accepts a ``(trials, n)``
    batch), or ``"minmax"`` (the Theorem 1 formula, quadratic time).
    """
    if method == "pava":
        return isotonic_regression_pava(values, weights)
    if method == "minmax":
        return isotonic_regression_minmax(values, weights)
    if method == "blocks":
        return isotonic_regression_blocks(values, weights)
    raise InferenceError(f"unknown isotonic regression method {method!r}")
