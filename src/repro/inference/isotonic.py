"""Isotonic regression: constrained inference for the sorted query ``S``.

Given the noisy answer ``s̃`` to the sorted query, the minimum-L2
consistent answer is the vector ``s̄`` minimising ``||s̃ - s̄||_2`` subject
to ``s̄[1] <= s̄[2] <= ... <= s̄[n]`` — least-squares regression under
ordering constraints, i.e. isotonic regression.

Two implementations are provided:

* :func:`isotonic_regression_pava` — the Pool Adjacent Violators Algorithm
  (Barlow et al.), linear time: scan the sequence keeping a stack of
  blocks; whenever a new value breaks the ordering against the last block,
  merge blocks (replacing them by their weighted mean) until the stack is
  non-decreasing again.  This is the production implementation used by the
  estimators.
* :func:`isotonic_regression_minmax` — the closed form of the paper's
  Theorem 1: ``s̄[k] = min_{j >= k} max_{i <= j} mean(s̃[i..j])``.
  Because the inner maximum does not depend on ``k``, it can be computed
  in ``O(n²)`` as a suffix minimum of per-``j`` prefix maxima.  It is kept
  as an executable statement of the theorem and as an oracle for the PAVA
  implementation (tests assert the two agree to numerical precision).

Both accept optional positive weights (weighted isotonic regression), which
the library uses when averaging repeated trials.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InferenceError
from repro.utils.arrays import as_float_vector

__all__ = [
    "isotonic_regression",
    "isotonic_regression_pava",
    "isotonic_regression_minmax",
]


def _check_inputs(values, weights) -> tuple[np.ndarray, np.ndarray]:
    values = as_float_vector(values, name="values")
    if weights is None:
        weights = np.ones_like(values)
    else:
        weights = as_float_vector(weights, name="weights")
        if weights.size != values.size:
            raise InferenceError(
                f"weights length {weights.size} does not match values length {values.size}"
            )
        if np.any(weights <= 0):
            raise InferenceError("weights must be strictly positive")
    return values, weights


def isotonic_regression_pava(values, weights=None) -> np.ndarray:
    """Minimum-L2 non-decreasing fit of ``values`` via Pool Adjacent Violators.

    Runs in ``O(n)`` time and memory: each input element is pushed onto the
    block stack once and each merge removes a block permanently.

    Parameters
    ----------
    values:
        The (noisy) sequence to fit.
    weights:
        Optional positive per-element weights; the fit minimises
        ``sum_i w_i (values[i] - fit[i])²``.
    """
    values, weights = _check_inputs(values, weights)
    n = values.size
    # Block stack: for each block keep (weighted mean, total weight, count).
    means = np.empty(n, dtype=np.float64)
    totals = np.empty(n, dtype=np.float64)
    counts = np.empty(n, dtype=np.int64)
    top = -1
    for i in range(n):
        top += 1
        means[top] = values[i]
        totals[top] = weights[i]
        counts[top] = 1
        # Merge while the ordering is violated against the previous block.
        while top > 0 and means[top - 1] > means[top]:
            merged_weight = totals[top - 1] + totals[top]
            means[top - 1] = (
                totals[top - 1] * means[top - 1] + totals[top] * means[top]
            ) / merged_weight
            totals[top - 1] = merged_weight
            counts[top - 1] += counts[top]
            top -= 1
    fitted = np.empty(n, dtype=np.float64)
    position = 0
    for block in range(top + 1):
        fitted[position : position + counts[block]] = means[block]
        position += counts[block]
    return fitted


def isotonic_regression_minmax(values, weights=None) -> np.ndarray:
    """Minimum-L2 non-decreasing fit via the Theorem 1 min-max formula.

    ``s̄[k] = L_k = min_{j in [k, n]} max_{i in [1, j]} M̃[i, j]`` where
    ``M̃[i, j]`` is the (weighted) mean of ``values[i..j]``.  Complexity is
    ``O(n²)``; intended for validation and for small sequences.
    """
    values, weights = _check_inputs(values, weights)
    n = values.size
    weighted = np.concatenate(([0.0], np.cumsum(values * weights)))
    weight_sums = np.concatenate(([0.0], np.cumsum(weights)))

    def mean(i: int, j: int) -> float:
        # Inclusive 0-based mean of values[i..j].
        return (weighted[j + 1] - weighted[i]) / (weight_sums[j + 1] - weight_sums[i])

    # G[j] = max_{i <= j} mean(i, j); the inner maximum of the theorem.
    suffix_candidates = np.empty(n, dtype=np.float64)
    for j in range(n):
        best = -np.inf
        for i in range(j + 1):
            best = max(best, mean(i, j))
        suffix_candidates[j] = best
    # L_k = min_{j >= k} G[j]: a suffix minimum.
    fitted = np.empty(n, dtype=np.float64)
    running = np.inf
    for k in range(n - 1, -1, -1):
        running = min(running, suffix_candidates[k])
        fitted[k] = running
    return fitted


def isotonic_regression(values, weights=None, method: str = "pava") -> np.ndarray:
    """Dispatching front-end for isotonic regression.

    ``method`` is ``"pava"`` (default, linear time) or ``"minmax"``
    (the Theorem 1 formula, quadratic time).
    """
    if method == "pava":
        return isotonic_regression_pava(values, weights)
    if method == "minmax":
        return isotonic_regression_minmax(values, weights)
    raise InferenceError(f"unknown isotonic regression method {method!r}")
