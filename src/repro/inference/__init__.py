"""Constrained inference: the paper's core contribution.

Given the noisy output ``q̃`` of a differentially private query sequence
and the constraint set ``γ_Q`` that the *true* answers are known to
satisfy, constrained inference finds the minimum-L2 consistent vector
``q̄`` (Definition 2.4).  Post-processing cannot affect the privacy
guarantee (Proposition 2) but can dramatically reduce error.

Modules:

* :mod:`repro.inference.isotonic` — ordering constraints (the sorted query
  ``S``): the Theorem 1 min-max closed form and the linear-time Pool
  Adjacent Violators algorithm, which coincide.
* :mod:`repro.inference.hierarchical` — tree-consistency constraints (the
  hierarchical query ``H``): the Theorem 3 two-pass recurrence, vectorised
  level by level, plus the Section 4.2 non-negativity heuristic.
* :mod:`repro.inference.least_squares` — brute-force constrained
  least-squares oracles (ordinary least squares through the strategy
  matrix; bounded least squares for the isotonic problem) used to validate
  the closed forms.
* :mod:`repro.inference.constraints` — explicit constraint objects with
  satisfaction checks, used by tests and by the public API to report
  whether raw noisy answers were consistent.
* :mod:`repro.inference.nonnegative` — rounding / clipping helpers shared
  by all estimators.
"""

from repro.inference.constraints import (
    OrderingConstraints,
    TreeConsistencyConstraints,
)
from repro.inference.isotonic import (
    isotonic_regression,
    isotonic_regression_pava,
    isotonic_regression_minmax,
    isotonic_regression_blocks,
)
from repro.inference.hierarchical import (
    HierarchicalInference,
    hierarchical_inference,
)
from repro.inference.least_squares import (
    ols_tree_inference,
    isotonic_oracle,
)
from repro.inference.nonnegative import (
    round_to_nonnegative_integers,
    clip_nonnegative,
)

__all__ = [
    "OrderingConstraints",
    "TreeConsistencyConstraints",
    "isotonic_regression",
    "isotonic_regression_pava",
    "isotonic_regression_minmax",
    "isotonic_regression_blocks",
    "HierarchicalInference",
    "hierarchical_inference",
    "ols_tree_inference",
    "isotonic_oracle",
    "round_to_nonnegative_integers",
    "clip_nonnegative",
]
