"""Synthetic stand-in for the paper's Search Logs dataset.

The original dataset combines published summary statistics with a short
real query log to form a synthetic series of search-term frequencies from
January 1 2004 onward (16 time slots per day).  It is used two ways:

* **Unattributed histogram** (Section 5.1): the 3-month search frequency
  of the top 20,000 keywords — a Zipf-like frequency table.
* **Universal histogram** (Section 5.2): the temporal frequency of a
  single term ("Obama") over the full time grid — a bursty, sparse series
  on a dyadic domain of 2^16 slots.

The generator reproduces both shapes: a Zipf keyword table, and a bursty
temporal series with a baseline, periodic structure, rare spikes, and a
large election-season burst near the end of the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.domain import TimeGridDomain
from repro.exceptions import DomainError
from repro.utils.random import as_generator
from repro.data.synthetic import zipf_counts

__all__ = ["SearchLogsGenerator", "SearchLogsDataset"]


@dataclass
class SearchLogsDataset:
    """Materialised search-log data.

    Attributes
    ----------
    keyword_counts:
        Frequency of each of the top keywords over a 3-month window
        (descending rank order, i.e. ``keyword_counts[0]`` is the most
        frequent term) — used by the unattributed-histogram experiment.
    term_series:
        Temporal frequency of the tracked term over the full time grid —
        used by the universal-histogram experiment.
    domain:
        The time grid domain of ``term_series``.
    """

    keyword_counts: np.ndarray
    term_series: np.ndarray
    domain: TimeGridDomain

    def sorted_keyword_counts(self) -> np.ndarray:
        """Keyword frequencies in ascending order (the ``S(I)`` input)."""
        return np.sort(self.keyword_counts)

    @property
    def num_keywords(self) -> int:
        return int(self.keyword_counts.size)

    @property
    def num_slots(self) -> int:
        return int(self.term_series.size)


class SearchLogsGenerator:
    """Generates keyword-frequency tables and a bursty temporal term series."""

    def __init__(
        self,
        num_keywords: int = 20_000,
        num_slots: int = 2**16,
        slots_per_day: int = 16,
        zipf_exponent: float = 1.2,
        total_keyword_volume: float = 5_000_000.0,
        baseline_rate: float = 0.05,
        num_bursts: int = 6,
        burst_height: float = 40.0,
    ) -> None:
        if num_keywords <= 0:
            raise DomainError(f"num_keywords must be positive, got {num_keywords}")
        if num_slots <= 0:
            raise DomainError(f"num_slots must be positive, got {num_slots}")
        self.num_keywords = int(num_keywords)
        self.num_slots = int(num_slots)
        self.slots_per_day = int(slots_per_day)
        self.zipf_exponent = float(zipf_exponent)
        self.total_keyword_volume = float(total_keyword_volume)
        self.baseline_rate = float(baseline_rate)
        self.num_bursts = int(num_bursts)
        self.burst_height = float(burst_height)

    def generate(
        self, rng: np.random.Generator | int | None = None
    ) -> SearchLogsDataset:
        """Generate the keyword table and the tracked-term time series."""
        generator = as_generator(rng)
        keyword = zipf_counts(
            self.num_keywords,
            exponent=self.zipf_exponent,
            total=self.total_keyword_volume,
            rng=generator,
        )
        # Present the table in rank (descending) order, as a search-engine
        # "top keywords" report would.
        keyword = np.sort(keyword)[::-1].copy()
        series = self._term_series(generator)
        domain = TimeGridDomain(
            self.num_slots, slots_per_day=self.slots_per_day, name="t"
        )
        return SearchLogsDataset(
            keyword_counts=keyword, term_series=series, domain=domain
        )

    def _term_series(self, generator: np.random.Generator) -> np.ndarray:
        """Bursty, non-stationary series for a single query term.

        Shape: near-zero interest early on, diurnal modulation, a handful
        of medium bursts (news events), and one long, large burst late in
        the timeline (an election season), matching the qualitative shape
        the paper describes for the "Obama" series.
        """
        slots = np.arange(self.num_slots, dtype=np.float64)
        # Interest ramps up over the timeline.
        ramp = np.clip((slots / self.num_slots - 0.55) / 0.45, 0.0, 1.0) ** 2
        # Diurnal modulation within each day.
        within_day = slots % self.slots_per_day
        diurnal = 0.5 + 0.5 * np.sin(2 * np.pi * within_day / self.slots_per_day)
        rate = self.baseline_rate * (0.2 + ramp) * (0.5 + diurnal)
        series = generator.poisson(rate).astype(np.float64)
        # Medium bursts at random times (news events).
        for _ in range(self.num_bursts):
            center = int(generator.integers(self.num_slots // 3, self.num_slots))
            width = int(generator.integers(4, 12 * self.slots_per_day))
            lo = max(0, center - width // 2)
            hi = min(self.num_slots, lo + width)
            positions = np.arange(lo, hi, dtype=np.float64)
            shape = np.exp(-0.5 * ((positions - center) / max(1.0, width / 4.0)) ** 2)
            series[lo:hi] += generator.poisson(self.burst_height * shape + 1e-12)
        # One long election-season burst near the end.
        season_lo = int(self.num_slots * 0.85)
        season = np.arange(season_lo, self.num_slots, dtype=np.float64)
        season_shape = 1.0 - np.abs(
            (season - (season_lo + self.num_slots) / 2.0)
            / max(1.0, (self.num_slots - season_lo) / 2.0)
        )
        series[season_lo:] += generator.poisson(
            2.0 * self.burst_height * np.clip(season_shape, 0.0, 1.0) + 1e-12
        )
        return series
