"""Dataset generators used by the experiments.

The paper evaluates on three private datasets (NetTrace, Social Network,
Search Logs) that are not publicly distributable.  Following the
reproduction plan in ``DESIGN.md``, this subpackage provides synthetic
generators whose outputs have the statistical properties the algorithms
are sensitive to:

* heavy-tailed (power-law / Zipf) count distributions with long runs of
  duplicate values — the regime where Theorem 2 predicts large gains for
  the sorted/constrained estimator;
* large, sparse domains (most unit buckets empty) — the regime where the
  non-negativity heuristic of Section 4.2 matters;
* bursty, non-stationary time series on a dyadic time grid — the Search
  Logs universal-histogram workload.

All generators take an explicit ``numpy.random.Generator`` (or a seed) so
experiments are reproducible, and produce either raw count vectors or full
:class:`~repro.db.relation.Relation` instances for end-to-end runs.
"""

from repro.data.synthetic import (
    SyntheticSpec,
    arrival_stream,
    powerlaw_counts,
    zipf_counts,
    uniform_counts,
    sparse_counts,
    bimodal_counts,
    piecewise_constant_counts,
    clustered_counts,
)
from repro.data.graph import (
    degree_sequence,
    degrees_from_edges,
    sample_powerlaw_degrees,
    random_bipartite_edges,
)
from repro.data.nettrace import NetTraceGenerator, NetTraceDataset
from repro.data.socialnetwork import SocialNetworkGenerator, SocialNetworkDataset
from repro.data.searchlogs import SearchLogsGenerator, SearchLogsDataset
from repro.data.registry import DatasetRegistry, default_registry

__all__ = [
    "SyntheticSpec",
    "arrival_stream",
    "powerlaw_counts",
    "zipf_counts",
    "uniform_counts",
    "sparse_counts",
    "bimodal_counts",
    "piecewise_constant_counts",
    "clustered_counts",
    "degree_sequence",
    "degrees_from_edges",
    "sample_powerlaw_degrees",
    "random_bipartite_edges",
    "NetTraceGenerator",
    "NetTraceDataset",
    "SocialNetworkGenerator",
    "SocialNetworkDataset",
    "SearchLogsGenerator",
    "SearchLogsDataset",
    "DatasetRegistry",
    "default_registry",
]
