"""Synthetic stand-in for the paper's Social Network dataset.

The original dataset is a friendship graph of roughly 11,000 students from
one university; the experiment publishes its degree sequence under
differential privacy.  Social-network degree sequences are heavy tailed
(power-law-ish) with very long runs of duplicated low degrees — precisely
the structure Theorem 2 rewards — so the stand-in samples a power-law
degree sequence and (optionally) materialises a friendship edge list with
those degrees via a configuration-model style pairing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.domain import IntegerDomain
from repro.exceptions import DomainError
from repro.utils.random import as_generator
from repro.data.graph import sample_powerlaw_degrees

__all__ = ["SocialNetworkGenerator", "SocialNetworkDataset"]


@dataclass
class SocialNetworkDataset:
    """Materialised social-network data.

    ``degrees[i]`` is the degree of node ``i``; the degree sequence (the
    unattributed histogram studied in Section 5.1) is the sorted copy.
    """

    degrees: np.ndarray
    domain: IntegerDomain

    def degree_sequence(self) -> np.ndarray:
        """Degrees in ascending order (the paper's ``S(I)``)."""
        return np.sort(self.degrees)

    @property
    def num_nodes(self) -> int:
        return int(self.degrees.size)

    @property
    def num_edges(self) -> float:
        """Number of edges implied by the degree sum (each edge counted twice)."""
        return float(self.degrees.sum() / 2.0)

    def distinct_degree_count(self) -> int:
        """Number of distinct degree values ``d`` (the Theorem 2 parameter)."""
        return int(np.unique(self.degrees).size)


class SocialNetworkGenerator:
    """Generates a power-law degree sequence resembling a student friendship graph."""

    def __init__(
        self,
        num_nodes: int = 11_000,
        exponent: float = 2.3,
        min_degree: int = 1,
        max_degree: int | None = 1_000,
    ) -> None:
        if num_nodes <= 0:
            raise DomainError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        self.exponent = float(exponent)
        self.min_degree = int(min_degree)
        self.max_degree = max_degree if max_degree is None else int(max_degree)

    def generate(
        self, rng: np.random.Generator | int | None = None
    ) -> SocialNetworkDataset:
        """Sample a degree sequence for the configured graph size."""
        generator = as_generator(rng)
        degrees = sample_powerlaw_degrees(
            self.num_nodes,
            exponent=self.exponent,
            min_degree=self.min_degree,
            max_degree=self.max_degree,
            rng=generator,
        )
        # A graphical degree sequence needs an even degree sum; fix the
        # parity by bumping one node, which does not change the shape of
        # the distribution.
        if int(degrees.sum()) % 2 == 1:
            degrees[int(generator.integers(0, degrees.size))] += 1
        return SocialNetworkDataset(
            degrees=degrees, domain=IntegerDomain(self.num_nodes, name="node")
        )

    def generate_edges(
        self, rng: np.random.Generator | int | None = None
    ) -> tuple[list[tuple[int, int]], SocialNetworkDataset]:
        """Materialise an undirected edge list with (approximately) the sampled degrees.

        Uses a configuration-model pairing of degree stubs; self-loops and
        multi-edges are dropped, so realised degrees can be slightly below
        the sampled ones.  The returned dataset reflects the *realised*
        degrees so that relational and vector pipelines agree exactly.
        """
        generator = as_generator(rng)
        dataset = self.generate(generator)
        stubs = np.repeat(
            np.arange(dataset.num_nodes, dtype=np.int64),
            dataset.degrees.astype(np.int64),
        )
        generator.shuffle(stubs)
        if stubs.size % 2 == 1:
            stubs = stubs[:-1]
        pairs = stubs.reshape(-1, 2)
        seen: set[tuple[int, int]] = set()
        edges: list[tuple[int, int]] = []
        for u, v in pairs:
            u, v = int(u), int(v)
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            edges.append(key)
        realised = np.zeros(dataset.num_nodes, dtype=np.float64)
        for u, v in edges:
            realised[u] += 1
            realised[v] += 1
        realised_dataset = SocialNetworkDataset(degrees=realised, domain=dataset.domain)
        return edges, realised_dataset
