"""Synthetic stand-in for the paper's NetTrace dataset.

The original NetTrace is an IP-level trace collected at a university
gateway; the paper uses it two ways:

* **Unattributed histogram** (Section 5.1): the number of internal hosts
  each external host connects to (~65K external hosts), a heavy-tailed
  multiset of connection counts.
* **Universal histogram** (Section 5.2): the number of connections per
  external host *with* the host identity retained, over a large sparse
  address domain, queried with random ranges.

The generator below produces a bipartite connection relation
``R(src, dst)`` whose out-degree distribution is power-law with many
duplicate small degrees, embedded in a sparse address domain (most
addresses never appear).  Both the relation and the derived count vectors
are exposed, so experiments can run either end-to-end through the
relational substrate or directly on count vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.domain import IntegerDomain
from repro.db.histogram import pad_counts
from repro.db.relation import Column, Relation, Schema
from repro.exceptions import DomainError
from repro.utils.random import as_generator
from repro.data.graph import sample_powerlaw_degrees

__all__ = ["NetTraceGenerator", "NetTraceDataset"]


@dataclass
class NetTraceDataset:
    """Materialised NetTrace-like data.

    Attributes
    ----------
    counts:
        Per-address connection counts over the full (sparse) address
        domain; ``counts[i]`` is the number of connections of address ``i``
        (zero for addresses not present in the trace).
    active_counts:
        Counts restricted to the addresses that appear at least once — the
        vector whose sorted version is the Section 5.1 unattributed
        histogram.
    domain:
        Integer domain of the full address space.
    """

    counts: np.ndarray
    active_counts: np.ndarray
    domain: IntegerDomain

    def sorted_counts(self) -> np.ndarray:
        """The unattributed histogram of active hosts (ascending order)."""
        return np.sort(self.active_counts)

    def padded_counts(self, branching: int = 2) -> np.ndarray:
        """Full-domain counts padded to a power of ``branching``."""
        return pad_counts(self.counts, branching)

    @property
    def num_active_hosts(self) -> int:
        """Number of addresses with at least one connection."""
        return int(self.active_counts.size)

    @property
    def total_connections(self) -> float:
        """Total number of connections in the trace."""
        return float(self.counts.sum())


class NetTraceGenerator:
    """Generates NetTrace-like connection data.

    Parameters
    ----------
    num_active_hosts:
        Number of external hosts that actually appear in the trace
        (the paper's unattributed histogram has ~65K of them).
    domain_bits:
        The address domain is ``2**domain_bits`` buckets; active hosts are
        scattered uniformly over it, making the domain sparse as in the
        real trace.
    exponent, max_degree:
        Shape of the per-host connection-count distribution.
    """

    def __init__(
        self,
        num_active_hosts: int = 65_000,
        domain_bits: int = 16,
        exponent: float = 2.0,
        min_degree: int = 1,
        max_degree: int = 10_000,
    ) -> None:
        if num_active_hosts <= 0:
            raise DomainError(
                f"num_active_hosts must be positive, got {num_active_hosts}"
            )
        if domain_bits <= 0 or domain_bits > 26:
            raise DomainError(f"domain_bits must be in [1, 26], got {domain_bits}")
        self.num_active_hosts = int(num_active_hosts)
        self.domain_bits = int(domain_bits)
        self.exponent = float(exponent)
        self.min_degree = int(min_degree)
        self.max_degree = int(max_degree)

    @property
    def domain_size(self) -> int:
        """Size of the full address domain."""
        return 2**self.domain_bits

    def generate(self, rng: np.random.Generator | int | None = None) -> NetTraceDataset:
        """Generate count vectors for the trace."""
        generator = as_generator(rng)
        active = sample_powerlaw_degrees(
            self.num_active_hosts,
            exponent=self.exponent,
            min_degree=self.min_degree,
            max_degree=self.max_degree,
            rng=generator,
        )
        domain_size = self.domain_size
        counts = np.zeros(domain_size, dtype=np.float64)
        # Hosts that appear in the trace can exceed the domain size only by
        # misconfiguration; guard explicitly rather than silently wrapping.
        if self.num_active_hosts > domain_size:
            raise DomainError(
                "more active hosts than addresses: "
                f"{self.num_active_hosts} > {domain_size}"
            )
        positions = generator.choice(
            domain_size, size=self.num_active_hosts, replace=False
        )
        counts[positions] = active
        return NetTraceDataset(
            counts=counts,
            active_counts=active.copy(),
            domain=IntegerDomain(domain_size, name="src"),
        )

    def generate_relation(
        self,
        rng: np.random.Generator | int | None = None,
        num_destinations: int = 256,
        max_records: int | None = 500_000,
    ) -> tuple[Relation, NetTraceDataset]:
        """Generate an explicit ``R(src, dst)`` relation plus its count vectors.

        The relation materialises one record per connection, so for large
        configurations ``max_records`` caps the total (scaling counts down
        proportionally) to keep end-to-end runs laptop-sized.
        """
        generator = as_generator(rng)
        dataset = self.generate(generator)
        counts = dataset.counts
        total = counts.sum()
        if max_records is not None and total > max_records:
            scale = max_records / total
            counts = np.floor(counts * scale)
            active_mask = dataset.counts > 0
            counts[active_mask] = np.maximum(counts[active_mask], 1.0)
            dataset = NetTraceDataset(
                counts=counts,
                active_counts=counts[active_mask].copy(),
                domain=dataset.domain,
            )
        src_domain = dataset.domain
        dst_domain = IntegerDomain(num_destinations, name="dst")
        schema = Schema.of(Column("src", src_domain), Column("dst", dst_domain))
        sources = np.repeat(
            np.arange(src_domain.size, dtype=np.int64), counts.astype(np.int64)
        )
        destinations = generator.integers(0, num_destinations, size=sources.size)
        relation = Relation(
            schema,
            {"src": sources.tolist(), "dst": destinations.tolist()},
        )
        return relation, dataset
