"""Generic synthetic count-vector generators.

These are the building blocks for the dataset stand-ins (NetTrace, Social
Network, Search Logs) and for controlled experiments that sweep the
structural properties the theory depends on: the number of distinct counts
``d`` (Theorem 2), sparsity (Section 4.2 / Figure 6), and domain size.

Every generator returns a float64 vector of non-negative counts over a
domain of the requested size and takes an explicit random generator/seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.exceptions import DomainError
from repro.utils.random import as_generator

__all__ = [
    "SyntheticSpec",
    "powerlaw_counts",
    "zipf_counts",
    "uniform_counts",
    "sparse_counts",
    "bimodal_counts",
    "piecewise_constant_counts",
    "clustered_counts",
    "arrival_stream",
]


def arrival_stream(
    domain_size: int,
    rows_per_batch: int,
    batches: int,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.7,
    drift: float = 0.0,
    rng: np.random.Generator | int | None = None,
):
    """Yield ``batches`` arrays of row arrivals (domain indexes) over time.

    Models the live-counter traffic the streaming tier ingests: a small
    "hot set" of buckets receives ``hot_weight`` of the rows (heavy-tailed
    arrivals, like popular hosts or keywords), and the hot set's location
    shifts by ``drift`` of the domain per batch (non-stationarity, like a
    news cycle moving through search logs).  Each yielded array feeds
    directly into :meth:`repro.streaming.engine.StreamingHistogramEngine.ingest`.
    """
    domain_size = _check_size(domain_size)
    if rows_per_batch <= 0 or batches <= 0:
        raise DomainError(
            f"rows_per_batch and batches must be positive, got "
            f"{rows_per_batch}, {batches}"
        )
    if not 0.0 < hot_fraction <= 1.0:
        raise DomainError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
    if not 0.0 <= hot_weight <= 1.0:
        raise DomainError(f"hot_weight must be in [0, 1], got {hot_weight}")
    generator = as_generator(rng)
    # Validation above runs at call time; only the drawing is deferred
    # (a generator function would postpone even the argument checks to
    # the first iteration, far from the bad call site).
    return _arrival_batches(
        domain_size, rows_per_batch, batches, hot_fraction, hot_weight, drift,
        generator,
    )


def _arrival_batches(
    domain_size, rows_per_batch, batches, hot_fraction, hot_weight, drift,
    generator,
):
    hot_size = max(1, int(round(domain_size * hot_fraction)))
    hot_start = int(generator.integers(0, domain_size))
    for batch in range(batches):
        hot = generator.random(size=rows_per_batch) < hot_weight
        indexes = np.empty(rows_per_batch, dtype=np.int64)
        num_hot = int(hot.sum())
        indexes[hot] = (
            hot_start + generator.integers(0, hot_size, size=num_hot)
        ) % domain_size
        indexes[~hot] = generator.integers(
            0, domain_size, size=rows_per_batch - num_hot
        )
        yield indexes
        hot_start = (hot_start + int(round(domain_size * drift))) % domain_size


def _check_size(size: int) -> int:
    if size <= 0:
        raise DomainError(f"size must be positive, got {size}")
    return int(size)


def powerlaw_counts(
    size: int,
    exponent: float = 2.0,
    scale: float = 50.0,
    max_count: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Counts drawn from a discrete power-law (Pareto) distribution.

    Typical degree distributions of real networks have exponent between
    1.5 and 3; long runs of duplicate small values emerge naturally, which
    is the regime where the sorted-constrained estimator shines.

    Parameters
    ----------
    size:
        Number of buckets (e.g. number of hosts / graph nodes).
    exponent:
        Pareto tail exponent; larger means lighter tail.
    scale:
        Multiplier applied before flooring to integers.
    max_count:
        Optional cap (e.g. a graph node cannot have more neighbours than
        ``size - 1``).
    """
    size = _check_size(size)
    if exponent <= 0:
        raise DomainError(f"exponent must be positive, got {exponent}")
    generator = as_generator(rng)
    raw = generator.pareto(exponent, size=size) * float(scale)
    counts = np.floor(raw)
    if max_count is not None:
        counts = np.minimum(counts, float(max_count))
    return counts.astype(np.float64)


def zipf_counts(
    size: int,
    exponent: float = 1.3,
    total: float = 1_000_000.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Deterministically shaped Zipf frequency table with multinomial jitter.

    Rank ``r`` receives an expected share proportional to ``r**-exponent``
    of ``total`` observations; the realised counts are a multinomial draw,
    so small ranks are exactly Zipf-shaped and the long tail contains many
    duplicated small counts (keyword-frequency style data).
    """
    size = _check_size(size)
    if exponent <= 0:
        raise DomainError(f"exponent must be positive, got {exponent}")
    if total < 0:
        raise DomainError(f"total must be non-negative, got {total}")
    generator = as_generator(rng)
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks**-exponent
    probabilities = weights / weights.sum()
    counts = generator.multinomial(int(total), probabilities)
    return counts.astype(np.float64)


def uniform_counts(
    size: int,
    low: int = 0,
    high: int = 100,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Counts drawn uniformly at random from ``[low, high]`` (inclusive)."""
    size = _check_size(size)
    if low > high or low < 0:
        raise DomainError(f"need 0 <= low <= high, got low={low}, high={high}")
    generator = as_generator(rng)
    return generator.integers(low, high + 1, size=size).astype(np.float64)


def sparse_counts(
    size: int,
    density: float = 0.05,
    mean_count: float = 20.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A mostly-empty histogram: each bucket is non-zero with prob. ``density``.

    Non-zero buckets get a Poisson(``mean_count``) value (at least 1).
    Models the large, sparse address/time domains of the universal-histogram
    experiments, where most leaves are zero.
    """
    size = _check_size(size)
    if not 0.0 <= density <= 1.0:
        raise DomainError(f"density must be in [0, 1], got {density}")
    if mean_count < 0:
        raise DomainError(f"mean_count must be non-negative, got {mean_count}")
    generator = as_generator(rng)
    mask = generator.random(size) < density
    counts = np.zeros(size, dtype=np.float64)
    occupied = int(mask.sum())
    if occupied:
        counts[mask] = np.maximum(1, generator.poisson(mean_count, size=occupied))
    return counts


def bimodal_counts(
    size: int,
    low_mean: float = 2.0,
    high_mean: float = 500.0,
    high_fraction: float = 0.1,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Two populations of buckets: many small counts and a few large ones.

    Useful for stressing the crossover behaviour between the identity and
    hierarchical strategies on ranges that mix dense and sparse regions.
    """
    size = _check_size(size)
    if not 0.0 <= high_fraction <= 1.0:
        raise DomainError(f"high_fraction must be in [0, 1], got {high_fraction}")
    generator = as_generator(rng)
    high_mask = generator.random(size) < high_fraction
    counts = generator.poisson(low_mean, size=size).astype(np.float64)
    num_high = int(high_mask.sum())
    if num_high:
        counts[high_mask] = generator.poisson(high_mean, size=num_high)
    return counts


def piecewise_constant_counts(
    size: int,
    num_pieces: int = 10,
    low: int = 0,
    high: int = 1000,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A histogram made of ``num_pieces`` constant runs.

    After sorting, such data has exactly ``d <= num_pieces`` distinct
    values — the knob that Theorem 2's ``O(d log^3 n / eps^2)`` bound turns
    on.  The Figure 3 illustration is a special case (one long run plus a
    single outlier).
    """
    size = _check_size(size)
    if num_pieces <= 0 or num_pieces > size:
        raise DomainError(
            f"num_pieces must be in [1, size], got {num_pieces} for size {size}"
        )
    generator = as_generator(rng)
    boundaries = np.sort(
        generator.choice(np.arange(1, size), size=num_pieces - 1, replace=False)
    ) if num_pieces > 1 else np.array([], dtype=np.int64)
    levels = generator.integers(low, high + 1, size=num_pieces).astype(np.float64)
    counts = np.empty(size, dtype=np.float64)
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [size]))
    for level, start, end in zip(levels, starts, ends):
        counts[start:end] = level
    return counts


def clustered_counts(
    size: int,
    num_clusters: int = 5,
    cluster_width: int = 50,
    peak: float = 200.0,
    background: float = 0.2,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Bursty data: a low-rate background with a few dense clusters.

    Models temporal query-frequency series (the "Obama" series of the
    Search Logs experiment): mostly near-zero activity punctuated by
    bursts whose interior is locally smooth.
    """
    size = _check_size(size)
    if num_clusters < 0:
        raise DomainError(f"num_clusters must be non-negative, got {num_clusters}")
    if cluster_width <= 0:
        raise DomainError(f"cluster_width must be positive, got {cluster_width}")
    generator = as_generator(rng)
    counts = generator.poisson(background, size=size).astype(np.float64)
    for _ in range(num_clusters):
        center = int(generator.integers(0, size))
        width = max(1, int(generator.normal(cluster_width, cluster_width / 4)))
        lo = max(0, center - width // 2)
        hi = min(size, lo + width)
        positions = np.arange(lo, hi)
        if positions.size == 0:
            continue
        shape = np.exp(-0.5 * ((positions - center) / max(1.0, width / 4.0)) ** 2)
        counts[lo:hi] += generator.poisson(peak * shape + 1e-12)
    return counts


@dataclass
class SyntheticSpec:
    """A named, reproducible recipe for a synthetic count vector.

    Experiments describe their data as a ``SyntheticSpec`` so the exact
    generator, parameters, and seed are recorded alongside results.
    """

    name: str
    generator: Callable[..., np.ndarray]
    size: int
    params: dict = field(default_factory=dict)
    seed: int | None = None

    def realize(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Generate the count vector.  ``rng`` overrides the stored seed."""
        chosen = rng if rng is not None else self.seed
        return self.generator(self.size, rng=as_generator(chosen), **self.params)

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.name}(size={self.size}{', ' + params if params else ''})"
