"""Graph utilities: edges, degree sequences, and degree-sequence sampling.

The unattributed-histogram experiments treat a histogram as the degree
sequence of a graph (NetTrace is a bipartite connection graph, Social
Network a friendship graph).  These helpers convert edge lists to degree
sequences, sample realistic power-law degree sequences directly, and
generate random bipartite edge sets with a prescribed out-degree
distribution for end-to-end relational runs.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DomainError
from repro.utils.random import as_generator

__all__ = [
    "degrees_from_edges",
    "degree_sequence",
    "sample_powerlaw_degrees",
    "random_bipartite_edges",
]


def degrees_from_edges(
    edges: Iterable[tuple], num_nodes: int | None = None, side: int = 0
) -> np.ndarray:
    """Out-degree of each node from an edge list.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` pairs.  Node ids on the counted ``side``
        must be integers in ``[0, num_nodes)`` when ``num_nodes`` is given.
    num_nodes:
        Size of the node set on the counted side.  If omitted it is taken
        to be ``max(node id) + 1``.
    side:
        Which endpoint to count: ``0`` counts occurrences of ``u`` (out-
        degrees), ``1`` counts ``v`` (in-degrees).
    """
    if side not in (0, 1):
        raise DomainError(f"side must be 0 or 1, got {side}")
    counter: Counter = Counter()
    max_seen = -1
    for edge in edges:
        node = int(edge[side])
        if node < 0:
            raise DomainError(f"negative node id {node} in edge {edge!r}")
        counter[node] += 1
        max_seen = max(max_seen, node)
    if num_nodes is None:
        num_nodes = max_seen + 1 if max_seen >= 0 else 0
    if max_seen >= num_nodes:
        raise DomainError(
            f"edge references node {max_seen} but num_nodes={num_nodes}"
        )
    degrees = np.zeros(num_nodes, dtype=np.float64)
    for node, degree in counter.items():
        degrees[node] = degree
    return degrees


def degree_sequence(degrees: Sequence[float]) -> np.ndarray:
    """The degree sequence: degrees sorted in ascending order.

    This is exactly the paper's ``S(I)`` for a graph dataset — the
    unattributed histogram of the unit-count vector.
    """
    array = np.asarray(degrees, dtype=np.float64)
    if array.ndim != 1:
        raise DomainError(f"degrees must be 1-dimensional, got shape {array.shape}")
    return np.sort(array)


def sample_powerlaw_degrees(
    num_nodes: int,
    exponent: float = 2.5,
    min_degree: int = 1,
    max_degree: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Sample a discrete power-law degree sequence ``P(d) ∝ d**-exponent``.

    Degrees range over ``[min_degree, max_degree]`` (default cap
    ``num_nodes - 1``).  Real social-network degree sequences are well
    approximated by exponents between 2 and 3 and contain very long runs
    of duplicated small degrees, which this sampler reproduces.
    """
    if num_nodes <= 0:
        raise DomainError(f"num_nodes must be positive, got {num_nodes}")
    if exponent <= 1.0:
        raise DomainError(f"exponent must exceed 1, got {exponent}")
    if min_degree < 0:
        raise DomainError(f"min_degree must be non-negative, got {min_degree}")
    if max_degree is None:
        max_degree = max(min_degree, num_nodes - 1)
    if max_degree < min_degree:
        raise DomainError(
            f"max_degree ({max_degree}) must be >= min_degree ({min_degree})"
        )
    generator = as_generator(rng)
    support = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    # Avoid 0**-exponent when min_degree == 0 by offsetting the weight argument.
    weights = np.power(np.maximum(support, 1.0), -exponent)
    probabilities = weights / weights.sum()
    return generator.choice(support, size=num_nodes, p=probabilities).astype(np.float64)


def random_bipartite_edges(
    out_degrees: Sequence[int],
    num_destinations: int,
    rng: np.random.Generator | int | None = None,
) -> list[tuple[int, int]]:
    """Random bipartite edge list with the given per-source out-degrees.

    Each source ``i`` gets ``out_degrees[i]`` edges whose destinations are
    chosen uniformly (with replacement — the relation is a bag of packets,
    not a simple graph), matching how the NetTrace relation counts one row
    per transmission.
    """
    if num_destinations <= 0:
        raise DomainError(f"num_destinations must be positive, got {num_destinations}")
    generator = as_generator(rng)
    edges: list[tuple[int, int]] = []
    for source, degree in enumerate(out_degrees):
        degree = int(degree)
        if degree < 0:
            raise DomainError(f"negative out-degree {degree} for source {source}")
        if degree == 0:
            continue
        destinations = generator.integers(0, num_destinations, size=degree)
        edges.extend((source, int(dst)) for dst in destinations)
    return edges
