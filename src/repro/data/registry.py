"""A registry of named dataset configurations for experiments.

The benchmark harnesses refer to datasets by name ("nettrace",
"socialnetwork", "searchlogs") at two scales: ``paper`` (the sizes used in
the paper, suitable for the full benchmark run) and ``small`` (scaled-down
versions used by the test suite and quick examples so they finish in
seconds).  Registering the configurations in one place keeps the figures,
examples, and tests in agreement about what each named dataset means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ExperimentError
from repro.data.nettrace import NetTraceGenerator
from repro.data.socialnetwork import SocialNetworkGenerator
from repro.data.searchlogs import SearchLogsGenerator

__all__ = ["DatasetRegistry", "default_registry", "DatasetEntry"]


@dataclass(frozen=True)
class DatasetEntry:
    """One named dataset configuration.

    ``unattributed`` returns the count multiset for the Section 5.1
    experiments; ``universal`` returns the full-domain count vector for the
    Section 5.2 experiments (or ``None`` if the dataset is only used for
    one task, as Social Network is).
    """

    name: str
    scale: str
    unattributed: Callable[[np.random.Generator], np.ndarray]
    universal: Callable[[np.random.Generator], np.ndarray] | None
    description: str


class DatasetRegistry:
    """Mapping of ``(name, scale)`` to dataset constructors."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], DatasetEntry] = {}

    def register(self, entry: DatasetEntry) -> None:
        """Register an entry, refusing silent overwrites."""
        key = (entry.name, entry.scale)
        if key in self._entries:
            raise ExperimentError(f"dataset {key} already registered")
        self._entries[key] = entry

    def get(self, name: str, scale: str = "paper") -> DatasetEntry:
        """Look up a dataset configuration by name and scale."""
        try:
            return self._entries[(name, scale)]
        except KeyError:
            available = sorted(self._entries)
            raise ExperimentError(
                f"no dataset registered for name={name!r}, scale={scale!r}; "
                f"available: {available}"
            ) from None

    def names(self, scale: str | None = None) -> list[str]:
        """Names of all registered datasets (optionally for one scale)."""
        return sorted(
            {name for (name, s) in self._entries if scale is None or s == scale}
        )

    def entries(self) -> list[DatasetEntry]:
        """All registered entries."""
        return list(self._entries.values())


def _nettrace_entry(scale: str, hosts: int, bits: int) -> DatasetEntry:
    generator = NetTraceGenerator(num_active_hosts=hosts, domain_bits=bits)
    return DatasetEntry(
        name="nettrace",
        scale=scale,
        unattributed=lambda rng: generator.generate(rng).active_counts,
        universal=lambda rng: generator.generate(rng).counts,
        description=(
            f"NetTrace-like bipartite connection counts: {hosts} active hosts "
            f"over a 2^{bits} address domain"
        ),
    )


def _socialnetwork_entry(scale: str, nodes: int) -> DatasetEntry:
    generator = SocialNetworkGenerator(num_nodes=nodes)
    return DatasetEntry(
        name="socialnetwork",
        scale=scale,
        unattributed=lambda rng: generator.generate(rng).degrees,
        universal=None,
        description=f"Social-network-like power-law degree sequence over {nodes} nodes",
    )


def _searchlogs_entry(scale: str, keywords: int, slots: int) -> DatasetEntry:
    generator = SearchLogsGenerator(num_keywords=keywords, num_slots=slots)
    return DatasetEntry(
        name="searchlogs",
        scale=scale,
        unattributed=lambda rng: generator.generate(rng).keyword_counts,
        universal=lambda rng: generator.generate(rng).term_series,
        description=(
            f"Search-log-like data: top-{keywords} keyword frequencies and a "
            f"bursty term series over {slots} time slots"
        ),
    )


def default_registry() -> DatasetRegistry:
    """The registry with the paper-scale and test-scale configurations."""
    registry = DatasetRegistry()
    # Paper-scale: matches the sizes reported in Section 5 / Appendix C.
    registry.register(_nettrace_entry("paper", hosts=65_000, bits=16))
    registry.register(_socialnetwork_entry("paper", nodes=11_000))
    registry.register(_searchlogs_entry("paper", keywords=20_000, slots=2**16))
    # Small-scale: same shapes, two orders of magnitude smaller, for tests
    # and quick examples.
    registry.register(_nettrace_entry("small", hosts=600, bits=10))
    registry.register(_socialnetwork_entry("small", nodes=500))
    registry.register(_searchlogs_entry("small", keywords=400, slots=2**10))
    return registry
