"""The sharded serving façade: massive domains, one ε, parallel builds.

:class:`ShardedHistogramEngine` is the sharded sibling of
:class:`~repro.serving.engine.HistogramEngine`: it partitions a huge
unit-count domain with a :class:`~repro.sharding.plan.ShardPlan`, builds
one hierarchical release *per shard* on a worker pool, and serves range
batches through the :class:`~repro.sharding.router.ShardRouter`.

**Privacy accounting (parallel composition).**  The shards partition the
domain, so neighbouring databases (one record added or removed) differ
in exactly one shard's sub-histogram.  Running an ε-DP mechanism
independently on every shard is therefore ε-DP *overall* — the charge
for a whole sharded materialization is one ε, exactly the monolithic
charge, for any shard count.  Two invariants make the argument hold:

* **disjointness** — shards are contiguous, non-overlapping, and cover
  the domain (enforced by :class:`ShardPlan`);
* **independent noise** — every shard draws from its own stream, seeded
  by :func:`derive_shard_seed` (a hash of the request's base seed and
  the shard index, so no two requests can alias a stream);
  :class:`~repro.sharding.release.ShardedRelease` additionally refuses
  duplicated shard seeds outright, since a reused seed over identical
  sub-histograms would reuse the same noise and void the argument.

ε is charged **once per sharded materialization, only when at least one
shard was actually built** (all-warm resolutions are pure
post-processing and free), and only *after* every shard's computation
has succeeded — a failing shard build charges nothing and caches
nothing.  When some shards come warm from the cache/store and others are
built cold, the engine still charges the full ε: conservative (never an
under-charge), and the common cases — all cold, all warm — are exact.

Each shard persists as a normal versioned
:class:`~repro.serving.store.ReleaseStore` artifact under its own
:class:`~repro.serving.release.ReleaseKey` (sub-histogram fingerprint,
estimator, ε, branching, per-shard seed), so a restarted engine over the
same data and parameters warm-starts every shard from disk with zero
recomputation and zero additional ε — the monolithic warm-start story,
shard by shard.
"""

from __future__ import annotations

import hashlib
import threading
from time import perf_counter

from repro import faults, obs
from repro.accuracy.models import UncertaintyModel, composite_uncertainty_model
from repro.accuracy.slo import AccuracySLO, AccuracyStats
from repro.db.histogram import HistogramBuilder
from repro.db.relation import Relation
from repro.exceptions import BudgetExhaustedError, PrivacyBudgetError, ReproError
from repro.faults.retry import RetryPolicy, run_with_retry
from repro.privacy.budget import PrivacyBudget
from repro.privacy.definitions import PrivacyParameters
from repro.queries.workload import RangeWorkload
from repro.serving.cache import ReleaseCache
from repro.serving.engine import (
    canonical_estimator_name,
    compute_release_leaves,
    record_submit_metrics,
    score_batch_accuracy,
)
from repro.serving.planner import BatchResult, QueryBatch
from repro.serving.release import MaterializedRelease, ReleaseKey, fingerprint_counts
from repro.serving.stats import ServingStats
from repro.serving.store import ReleaseStore
from repro.sharding.plan import ShardPlan, resolve_plan
from repro.sharding.pool import (
    ShardBuildSpec,
    effective_cpu_count,
    resolve_worker_mode,
    run_shard_builds,
)
from repro.sharding.release import ShardedRelease
from repro.sharding.router import ShardRouter
from repro.utils.arrays import as_float_vector

__all__ = ["derive_shard_seed", "build_shard_releases", "ShardedHistogramEngine"]


def resolve_workers(workers: int | None, num_shards: int) -> int:
    """Worker-pool width: explicit, else one per *available* core.

    The default sizes from the effective CPU budget
    (:func:`~repro.sharding.pool.effective_cpu_count` — affinity mask /
    cgroup aware), capped at the shard count.  Raw ``os.cpu_count()``
    would oversubscribe a container pinned to a slice of the box.
    """
    if workers is not None:
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        return int(workers)
    return max(1, min(num_shards, effective_cpu_count()))


def resolve_shard_cache(
    cache: ReleaseCache | None,
    store: ReleaseStore | None,
    cache_capacity: int | None,
    num_shards: int,
) -> ReleaseCache:
    """The engines' shared cache/store resolution (default: two shard sets)."""
    if cache is not None and store is not None:
        raise ReproError(
            "pass either a shared cache or a store, not both; attach the "
            "store to the shared ReleaseCache instead"
        )
    if cache is not None:
        return cache
    capacity = (
        cache_capacity if cache_capacity is not None else max(32, 2 * num_shards)
    )
    return ReleaseCache(capacity, store=store)


def derive_shard_seed(base_seed: int, *indices: int) -> int:
    """A deterministic, collision-resistant seed for one shard's mechanism.

    A naive ``base_seed + shard`` schedule collides across *requests*
    with nearby base seeds — shard ``s`` of ``materialize(seed=1)`` and
    shard ``s+1`` of ``materialize(seed=0)`` would share a seed, and for
    equal-width shards that means the same noise realization backs two
    separately ε-charged releases (given one, the other adds no fresh
    randomness — the composition guarantee breaks).  Hashing the whole
    ``(base_seed, *indices)`` identity instead keeps every (request,
    shard) pair on its own noise stream with overwhelming probability,
    while releases stay deterministic functions of their identity.

    Returns a non-negative 63-bit integer (fits the artifact's int64).
    """
    payload = ":".join(str(int(value)) for value in (base_seed, *indices))
    digest = hashlib.sha256(payload.encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def build_shard_releases(
    shard_counts,
    shard_keys,
    *,
    delta: float = 0.0,
    workers: int = 1,
    worker_mode: str = "thread",
    retry: RetryPolicy | None = None,
) -> list[MaterializedRelease]:
    """Compute one release per shard, in shard order, on a worker pool.

    Pure computation: nothing is cached, persisted, or charged — callers
    sequence the ε charge *after* every shard has succeeded so a failure
    anywhere leaks nothing.  Results are deterministic functions of
    ``(counts, key)`` regardless of worker count, worker mode, or
    completion order, and the pooled paths fail fast: the first shard
    failure cancels every build not yet started
    (:func:`~repro.sharding.pool.run_shard_builds`).

    ``worker_mode`` selects the pool (``"thread"``, ``"process"``, or
    ``"auto"`` by shard width — see
    :func:`~repro.sharding.pool.resolve_worker_mode`).  The process pool
    is the one that actually scales: the build kernels hold the GIL, so
    threads add no cores.

    **Fault and obs semantics are parent-side, for every mode.**  The
    ``shard.build`` fault point is consulted here, in shard order, for
    all shards *before* any build is dispatched — so an armed schedule
    consumes one deterministic invocation sequence whether the builds
    then run inline, on threads, or in worker processes, and an injected
    failure aborts before any kernel work.  With a ``retry`` policy each
    shard's fault check is retried independently (safe pre-charge: a
    recomputed shard is bit-identical and no ε has been charged yet).
    Metrics likewise: pooled workers return per-shard durations and the
    parent records them; per-shard ``shard.build`` spans are emitted
    only on the inline ``workers=1`` path (worker processes are bare —
    see :mod:`repro.sharding.pool`).
    """
    shard_counts = list(shard_counts)
    shard_keys = list(shard_keys)
    if len(shard_counts) != len(shard_keys):
        raise ReproError(
            f"{len(shard_counts)} shard count vectors but {len(shard_keys)} keys"
        )
    shard_width = max((counts.size for counts in shard_counts), default=0)
    mode = resolve_worker_mode(worker_mode, workers=workers, shard_width=shard_width)

    if faults.enabled():
        # Before any mechanism work, for every shard, in shard order: an
        # injected shard failure aborts the whole epoch/materialization
        # pre-charge and pre-dispatch, and schedules see the same
        # invocation sequence in every worker mode.
        for index in range(len(shard_keys)):
            if retry is None:
                faults.check("shard.build")
            else:
                run_with_retry(
                    retry,
                    lambda: faults.check("shard.build"),
                    describe=f"build shard {index}",
                )

    def assemble(key: ReleaseKey, leaves) -> MaterializedRelease:
        return MaterializedRelease(
            leaves,
            estimator=key.estimator,
            epsilon=key.epsilon,
            dataset_fingerprint=key.dataset_fingerprint,
            branching=key.branching,
            seed=key.seed,
        )

    def build_one(index: int) -> MaterializedRelease:
        key = shard_keys[index]
        if obs.enabled():
            shard_start = perf_counter()
            with obs.tracer().span(
                "shard.build", shard=index, estimator=key.estimator
            ):
                leaves = compute_release_leaves(
                    shard_counts[index], key, delta=delta
                )
            registry = obs.registry()
            registry.histogram(
                "repro_shard_build_seconds", "Per-shard release build latency"
            ).observe(perf_counter() - shard_start)
            registry.counter(
                "repro_shard_builds_total", "Individual shard releases built"
            ).inc()
        else:
            leaves = compute_release_leaves(shard_counts[index], key, delta=delta)
        return assemble(key, leaves)

    if workers <= 1 or len(shard_keys) <= 1:
        return [build_one(i) for i in range(len(shard_keys))]

    specs = [
        ShardBuildSpec(shard_counts[i], shard_keys[i], delta)
        for i in range(len(shard_keys))
    ]
    outcomes = run_shard_builds(specs, workers=workers, mode=mode)
    if obs.enabled():
        registry = obs.registry()
        build_seconds = registry.histogram(
            "repro_shard_build_seconds", "Per-shard release build latency"
        )
        builds_total = registry.counter(
            "repro_shard_builds_total", "Individual shard releases built"
        )
        for outcome in outcomes:
            build_seconds.observe(outcome.seconds)
            builds_total.inc()
    return [
        assemble(key, outcome.leaves)
        for key, outcome in zip(shard_keys, outcomes)
    ]


class ShardedHistogramEngine:
    """Long-lived sharded private-histogram server over one huge dataset.

    Parameters
    ----------
    data:
        A :class:`Relation` (with ``attribute``) or a raw unit-count
        vector covering the full domain.
    total_epsilon:
        Overall budget for every release this engine materializes
        (sequential composition across releases; parallel composition
        *within* each sharded release).  Omit it (and pass ``budget``)
        to share another accountant's budget.
    num_shards / shard_size / plan:
        The partition geometry — at most one of the three; the default
        is :data:`~repro.sharding.plan.DEFAULT_SHARD_SIZE`-wide shards.
    workers:
        Worker-pool width for parallel shard builds (default: one per
        *available* CPU core — affinity/cgroup aware — capped at the
        shard count).
    worker_mode:
        ``"thread"``, ``"process"``, or ``"auto"`` (default): how
        parallel builds execute.  Only the process pool scales past one
        core (the build kernels hold the GIL); ``"auto"`` picks it when
        ``workers > 1`` and shards are wide enough that kernel time
        dominates the pickle/IPC cost.  Bit-identity of releases and ε
        accounting are mode-independent.
    cache / cache_capacity / store:
        As for :class:`~repro.serving.engine.HistogramEngine`; the
        default private cache is sized to hold at least two full shard
        sets.  Note the engine keeps strong references to its own
        assembled releases, so cache evictions never force a re-charge.
    budget / spend_label:
        As for :class:`~repro.serving.engine.HistogramEngine`.
    retry:
        Optional :class:`~repro.faults.retry.RetryPolicy` applied to
        each cold shard build (pure recomputation, pre-charge — retries
        never touch ε).  Store writes take their own policy on the
        :class:`~repro.serving.store.ReleaseStore` itself.
    """

    def __init__(
        self,
        data,
        total_epsilon: float | None = None,
        *,
        attribute: str | None = None,
        delta: float = 0.0,
        branching: int = 2,
        num_shards: int | None = None,
        shard_size: int | None = None,
        plan: ShardPlan | None = None,
        workers: int | None = None,
        worker_mode: str = "auto",
        cache: ReleaseCache | None = None,
        cache_capacity: int | None = None,
        store: ReleaseStore | None = None,
        budget: PrivacyBudget | None = None,
        spend_label: str | None = None,
        retry: RetryPolicy | None = None,
        slo: AccuracySLO | None = None,
    ) -> None:
        if isinstance(data, Relation):
            if attribute is None:
                raise ReproError(
                    "a range attribute is required when the data is a Relation"
                )
            counts = HistogramBuilder(data, attribute).counts()
        else:
            counts = as_float_vector(data, name="counts")
        self._counts = counts
        self.fingerprint = fingerprint_counts(counts)
        self.default_branching = int(branching)
        self.plan = resolve_plan(
            counts.size, num_shards=num_shards, shard_size=shard_size, plan=plan
        )
        self.workers = resolve_workers(workers, self.plan.num_shards)
        self.worker_mode = resolve_worker_mode(
            worker_mode,
            workers=self.workers,
            shard_width=int(self.plan.sizes.max()),
        )
        self.retry = retry
        if budget is not None:
            if total_epsilon is not None:
                raise ReproError(
                    "pass either total_epsilon or a shared budget, not both"
                )
            self._budget = budget
        elif total_epsilon is None:
            raise ReproError("either total_epsilon or a shared budget is required")
        else:
            self._budget = PrivacyBudget(PrivacyParameters(total_epsilon, delta))
        self._spend_label = spend_label
        self.cache = resolve_shard_cache(
            cache, store, cache_capacity, self.plan.num_shards
        )
        self.router = ShardRouter()
        self.stats = ServingStats()
        #: sharded materializations that actually charged ε in this
        #: process; all-warm resolutions leave it untouched.
        self.materializations = 0  # guarded-by: _materialize_lock
        #: individual shard releases built cold by this engine.
        self.shard_builds = 0  # guarded-by: _materialize_lock
        self._materialize_lock = threading.Lock()
        self._releases: dict[tuple, ShardedRelease] = {}  # guarded-by: _materialize_lock
        #: freshly built shard releases whose store write failed; the
        #: persist is retried on the next materialize/submit (ε for them
        #: was charged exactly once and is never re-spent).
        self._unpersisted: list[MaterializedRelease] = []  # guarded-by: _materialize_lock
        self._shard_counts = self.plan.split(counts)
        self._shard_fingerprints = [
            fingerprint_counts(sub) for sub in self._shard_counts
        ]
        self.slo = slo
        self.accuracy = AccuracyStats()
        # Composite uncertainty models per (estimator, shard ε's,
        # branching); racy rebuilds are benign (identical inputs).
        self._uncertainty_models: dict[tuple, UncertaintyModel] = {}

    # -- budget ----------------------------------------------------------------

    @property
    def budget(self) -> PrivacyBudget:
        return self._budget

    @property
    def spent_epsilon(self) -> float:
        return self._budget.spent_epsilon

    @property
    def remaining_epsilon(self) -> float:
        return self._budget.remaining_epsilon

    @property
    def domain_size(self) -> int:
        return int(self._counts.size)

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    # -- materialization -------------------------------------------------------

    def shard_keys(
        self,
        estimator: str = "constrained",
        *,
        epsilon: float,
        branching: int | None = None,
        seed: int = 0,
    ) -> list[ReleaseKey]:
        """The per-shard release identities a request resolves to.

        Validated before any ε is spent.  Shard ``s`` seeds with
        :func:`derive_shard_seed(seed, s) <derive_shard_seed>`:
        pairwise-distinct — across shards *and* across requests with
        different base seeds — which keeps every shard's noise stream
        independent, the precondition of the parallel-composition charge.
        """
        branching = self.default_branching if branching is None else int(branching)
        if branching < 2:
            raise ReproError(f"branching factor must be >= 2, got {branching}")
        PrivacyParameters(float(epsilon))  # validates ε > 0
        estimator = canonical_estimator_name(estimator)
        return [
            ReleaseKey(
                dataset_fingerprint=self._shard_fingerprints[s],
                estimator=estimator,
                epsilon=float(epsilon),
                branching=branching,
                seed=derive_shard_seed(seed, s),
            )
            for s in range(self.plan.num_shards)
        ]

    def materialize(
        self,
        estimator: str = "constrained",
        *,
        epsilon: float,
        branching: int | None = None,
        seed: int = 0,
    ) -> ShardedRelease:
        """The sharded release for ``(estimator, ε, branching, seed)``, cached."""
        release, _ = self._materialize(estimator, epsilon, branching, seed)
        return release

    def _materialize(
        self, estimator, epsilon, branching, seed
    ) -> tuple[ShardedRelease, bool]:
        keys = self.shard_keys(
            estimator, epsilon=epsilon, branching=branching, seed=seed
        )
        identity = (
            keys[0].estimator,
            keys[0].epsilon,
            keys[0].branching,
            int(seed),
            self.plan,
        )
        # Lock-free warm path: an identity this engine already assembled
        # is served without touching the build lock, so warm traffic is
        # never stalled behind another identity's multi-second cold build.
        # Reads are benign races on a dict that only ever grows: a miss
        # falls through to the locked double-check below.
        assembled = self._releases.get(identity)  # statan: ignore[LOCK001]
        if assembled is not None:
            if self._unpersisted:  # statan: ignore[LOCK001] racy peek; locked flush re-checks
                with self._materialize_lock:
                    self._flush_unpersisted_locked()
            return assembled, False
        with self._materialize_lock:
            assembled = self._releases.get(identity)
            if assembled is not None:
                return assembled, False
            self._flush_unpersisted_locked()
            shard_releases: list[MaterializedRelease | None] = []
            cold: list[int] = []
            for s, key in enumerate(keys):
                found = self.cache.get(key)
                if found is None and self.cache.store is not None:
                    found = self.cache.store.get(key)
                    if found is not None:
                        self.cache.put(key, found)
                shard_releases.append(found)
                if found is None:
                    cold.append(s)
            built = bool(cold)
            fresh: list[MaterializedRelease] = []
            if built:
                epsilon_value = keys[0].epsilon
                # Fail fast before the build; the authoritative check is
                # the atomic spend() after it.
                if not self._budget.can_spend(epsilon_value):
                    raise BudgetExhaustedError(
                        f"cannot materialize sharded {keys[0].estimator} at "
                        f"ε={epsilon_value:g}: only "
                        f"{self._budget.remaining_epsilon:g} of "
                        f"{self._budget.total.epsilon:g} remains"
                    )
                if obs.enabled():
                    with obs.tracer().span(
                        "shard.materialize",
                        estimator=keys[0].estimator,
                        cold_shards=len(cold),
                        num_shards=self.plan.num_shards,
                    ):
                        # statan: ignore[LOCK002] cold builds are serialized
                        # under this lock by design (double-builds would
                        # double-charge ε); warm reads use the lock-free
                        # fast path above, so a backoff here stalls no one.
                        fresh = build_shard_releases(  # statan: ignore[LOCK002]
                            [self._shard_counts[s] for s in cold],
                            [keys[s] for s in cold],
                            delta=self._budget.total.delta,
                            workers=self.workers,
                            worker_mode=self.worker_mode,
                            retry=self.retry,
                        )
                else:
                    fresh = build_shard_releases(  # statan: ignore[LOCK002]
                        [self._shard_counts[s] for s in cold],
                        [keys[s] for s in cold],
                        delta=self._budget.total.delta,
                        workers=self.workers,
                        worker_mode=self.worker_mode,
                        retry=self.retry,
                    )
                # One ε for the whole sharded release, by parallel
                # composition over the disjoint shards — charged only now
                # that every shard's computation has succeeded, and
                # *before* anything is cached or persisted, so a failed
                # charge leaves no free-to-replay artifacts behind.
                self._budget.spend(
                    epsilon_value,
                    label=self._spend_label
                    or (
                        f"materialize-sharded {keys[0].estimator} "
                        f"({len(cold)}/{self.plan.num_shards} shards)"
                    ),
                )
                for s, release in zip(cold, fresh):
                    self.cache.put(keys[s], release)
                    shard_releases[s] = release
                self.materializations += 1
                self.shard_builds += len(cold)
            # The assembled release is recorded before the (fallible)
            # store writes: once ε is charged the release must survive a
            # persist failure in memory, so no retry can ever rebuild —
            # and therefore re-charge — what was already paid for.
            assembled = ShardedRelease(
                self.plan,
                shard_releases,
                dataset_fingerprint=self.fingerprint,
            )
            self._releases[identity] = assembled
            if fresh:
                self._persist_shards_locked(fresh)
            return assembled, built

    def _persist_shards_locked(self, releases: list[MaterializedRelease]) -> None:
        """Write fresh shard artifacts to the store, queueing failures.

        A failing write raises (durability loss must be loud) but the
        unwritten remainder is parked in :attr:`_unpersisted` and retried
        on the next request — mirroring the monolithic cache's persist
        contract: the ε was charged exactly once and is never re-spent.
        """
        if self.cache.store is None:
            return
        pending = list(releases)
        while pending:
            try:
                self.cache.store.put(pending[0])
            except BaseException:
                self._unpersisted.extend(pending)
                raise
            pending.pop(0)

    def _flush_unpersisted_locked(self) -> None:
        """Retry store writes that failed after their ε was charged.

        The caller must hold the materialize lock; a failing retry
        re-parks the remainder (via :meth:`_persist_shards_locked`) and raises.
        """
        if not self._unpersisted:
            return
        pending, self._unpersisted = self._unpersisted, []
        self._persist_shards_locked(pending)

    # -- serving ---------------------------------------------------------------

    def uncertainty_model(
        self, estimator: str, shard_epsilons, branching: int
    ) -> UncertaintyModel:
        """The (cached) composite uncertainty model for one shard set.

        Variance composes across shard pieces exactly as counts do: each
        shard's model covers its local domain at its own ε, and a query's
        variance is the sum over the pieces the router would answer from.
        Homogeneous additive shard models collapse to one global model,
        making the reported variance independent of the shard count.
        """
        epsilons = tuple(float(value) for value in shard_epsilons)
        key = (canonical_estimator_name(estimator), epsilons, int(branching))
        model = self._uncertainty_models.get(key)
        if model is None:
            model = composite_uncertainty_model(
                self.plan.starts,
                self.domain_size,
                key[0],
                epsilons,
                branching=key[2],
            )
            self._uncertainty_models[key] = model
        return model

    def submit(
        self,
        batch: QueryBatch | RangeWorkload,
        estimator: str = "constrained",
        *,
        epsilon: float,
        branching: int | None = None,
        seed: int = 0,
        with_accuracy: bool | None = None,
    ) -> BatchResult:
        """Answer a batch of range queries through the shard router.

        Same contract as :meth:`HistogramEngine.submit`: the first
        submission for a release identity pays the ε and build cost,
        every later one is pure post-processing at prefix-sum speed, and
        ``with_accuracy`` (or a configured SLO) attaches per-answer
        variance/CI columns scored on the composite uncertainty model.
        """
        if isinstance(batch, RangeWorkload):
            batch = QueryBatch.from_workload(batch)
        build_start = perf_counter()
        release, built = self._materialize(estimator, epsilon, branching, seed)
        answer_start = perf_counter()
        answers = self.router.answer(release, batch)
        answer_seconds = perf_counter() - answer_start
        build_seconds = answer_start - build_start
        self.stats.record_batch(
            len(batch), answer_seconds, build_seconds=build_seconds, cold=built
        )
        if obs.enabled():
            record_submit_metrics(
                "sharded", len(batch), answer_seconds, build_seconds, built
            )
        variances = ci_los = ci_his = confidence = None
        if with_accuracy or (with_accuracy is None and self.slo is not None):
            model = self.uncertainty_model(
                release.estimator, release.shard_epsilons, release.branching
            )
            variances, ci_los, ci_his, confidence = score_batch_accuracy(
                model, batch, answers, self.slo, self.accuracy, "sharded"
            )
        return BatchResult(
            answers=answers,
            estimator=release.estimator,
            epsilon=release.epsilon,
            build_seconds=build_seconds,
            answer_seconds=answer_seconds,
            from_cache=not built,
            variances=variances,
            ci_los=ci_los,
            ci_his=ci_his,
            confidence=confidence,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedHistogramEngine(domain_size={self.domain_size}, "
            f"num_shards={self.num_shards}, workers={self.workers}, "
            f"worker_mode={self.worker_mode!r}, "
            f"spent_epsilon={self.spent_epsilon:g})"
        )
