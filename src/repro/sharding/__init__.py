"""Sharded massive-domain releases: partition, build in parallel, route.

The serving tier answers millions of queries from one materialized
release, but every layer below this one materializes a single monolithic
tree per attribute — capping practical domain size and build
parallelism.  This package removes that cap by sharding the *data
structure*:

* :class:`ShardPlan` — a contiguous partition of the unit-count domain
  into non-empty shards; every routing decision is one ``searchsorted``
  over its boundaries (:mod:`repro.sharding.plan`);
* :func:`build_shard_releases` /
  :class:`ShardedHistogramEngine` — one hierarchical release per shard,
  built in parallel on a worker pool, each persisting as a normal
  versioned store artifact under its own
  :class:`~repro.serving.release.ReleaseKey`
  (:mod:`repro.sharding.engine`);
* the worker pool itself (:mod:`repro.sharding.pool`) — thread or
  spawn-process execution behind a ``worker_mode`` knob; only the
  process pool scales past one core (the build kernels hold the GIL),
  and releases are bit-identical for any ``(workers, worker_mode)``;
* :class:`ShardedRelease` — the assembled, immutable serving artifact:
  per-shard prefix indexes that bake in the cumulated totals of all
  preceding shards, so full-shard spans cost O(1)
  (:mod:`repro.sharding.release`);
* :class:`ShardRouter` — decomposes each range query into ≤ 2
  partial-shard pieces plus a run of full shards, and batch-routes
  100k+ queries with vectorized grouped dispatch; its answers are
  **bit-identical** to a monolithic release over the same leaves
  (:mod:`repro.sharding.router`);
* :class:`ShardedStreamingEngine` /
  :class:`~repro.sharding.lineage.ShardedLineage` — per-shard epoch
  refresh: only shards whose ingest deltas cross the refresh threshold
  are re-released, the lineage records the refresh set, and warm
  restarts re-assemble the latest epoch with zero ε
  (:mod:`repro.sharding.streaming`).

Privacy invariants
------------------

1. **One ε per sharded release (parallel composition).**  Shards
   partition the domain, so neighbouring databases differ in exactly one
   shard's sub-histogram; running an ε-DP mechanism independently per
   shard is ε-DP overall.  A sharded materialization therefore charges
   the shared :class:`~repro.privacy.budget.PrivacyBudget` exactly the
   monolithic ε — bit-exactly, for any shard count — and a sharded
   stream's epoch charges its schedule εᵢ once however many shards it
   refreshes.
2. **Independent shard noise.**  Parallel composition requires each
   shard's mechanism to draw its own randomness: shard ``s`` seeds with
   :func:`~repro.sharding.engine.derive_shard_seed(base_seed, s)
   <repro.sharding.engine.derive_shard_seed>` (streams hash
   ``(base_seed, epoch, s)``) — a hash, not an offset, so requests with
   nearby base seeds can never alias a noise stream — and
   :class:`ShardedRelease` refuses duplicated shard seeds outright.
3. **Charge only on success, once.**  Shard builds are computed before
   anything is cached or persisted; ε is charged only after *every*
   shard in the build set has succeeded, and an all-warm resolution
   (cache or store) charges nothing — assembly and routing are pure
   post-processing (Proposition 2).
4. **Exactness of stitching.**  The assembled release's index is the
   same ``cumsum`` a monolithic release computes, so routed answers are
   bit-identical to a monolithic release over the same leaves — sharding
   changes cost, never answers.

Quickstart::

    import numpy as np
    from repro.serving import QueryBatch, ReleaseStore
    from repro.sharding import ShardedHistogramEngine

    counts = np.random.default_rng(0).poisson(3, size=1 << 22)
    engine = ShardedHistogramEngine(
        counts, total_epsilon=1.0, shard_size=1 << 16,
        store=ReleaseStore("releases"),
    )
    batch = QueryBatch.random(engine.domain_size, 100_000, rng=0)
    result = engine.submit(batch, "constrained", epsilon=0.1, seed=7)
    engine.spent_epsilon      # 0.1 — one ε for all 64 shards
    engine.num_shards         # 64, built in parallel, each persisted
"""

from repro.sharding.engine import (
    ShardedHistogramEngine,
    build_shard_releases,
    derive_shard_seed,
)
from repro.sharding.lineage import ShardedLineage, ShardEpochRecord
from repro.sharding.plan import DEFAULT_SHARD_SIZE, ShardPlan, resolve_plan
from repro.sharding.pool import (
    WORKER_MODES,
    effective_cpu_count,
    resolve_worker_mode,
    shutdown_worker_pools,
)
from repro.sharding.release import ShardedRelease
from repro.sharding.router import ShardedQueryPlan, ShardRouter
from repro.sharding.streaming import ShardedStreamingEngine

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "ShardPlan",
    "resolve_plan",
    "ShardedRelease",
    "ShardedQueryPlan",
    "ShardRouter",
    "build_shard_releases",
    "derive_shard_seed",
    "WORKER_MODES",
    "effective_cpu_count",
    "resolve_worker_mode",
    "shutdown_worker_pools",
    "ShardedHistogramEngine",
    "ShardedLineage",
    "ShardEpochRecord",
    "ShardedStreamingEngine",
]
