"""Per-shard epoch refresh: only touched shards pay for freshness.

:class:`ShardedStreamingEngine` is the sharded sibling of
:class:`~repro.streaming.engine.StreamingHistogramEngine`.  Live traffic
over a massive domain is rarely uniform — a hot set of buckets churns
while most of the domain sleeps — so re-releasing the *whole* domain
every epoch wastes both wall-clock and accuracy.  The sharded loop
refreshes selectively:

* rows arrive through :meth:`ingest` into one domain-wide
  :class:`~repro.streaming.buffer.IngestBuffer`;
* :meth:`advance_epoch` drains the buffer, splits the delta by shard,
  and re-releases **only the shards whose pending rows meet the
  per-shard refresh threshold**; sub-threshold deltas are restored to
  the buffer and ride into a later epoch, losing nothing;
* the epoch charges the schedule's εᵢ **once** for the whole refresh
  set: refreshed shards hold disjoint data, so the epoch is εᵢ-DP by
  parallel composition, and epochs compose sequentially to Σ εᵢ —
  enforced across restarts by the
  :class:`~repro.sharding.lineage.ShardedLineage` ledger exactly like
  the monolithic stream;
* untouched shards keep serving their existing releases (their data did
  not change), and the epoch publishes by rebuilding one immutable
  :class:`~repro.sharding.release.ShardedRelease` and swapping it in
  atomically — readers never observe a torn epoch;
* every refreshed shard persists as a normal store artifact and the
  lineage records the refresh set plus the complete per-shard key set,
  so a restarted engine re-assembles and serves the latest epoch with
  **zero** additional ε.

Seeds: the shard refreshed in epoch ``i`` at position ``s`` draws with
:func:`~repro.sharding.engine.derive_shard_seed(base_seed, i, s)
<repro.sharding.engine.derive_shard_seed>` — pairwise distinct across
every (epoch, shard) pair and collision-resistant across streams with
different base seeds, which keeps all noise draws independent (the
precondition of both composition arguments).
"""

from __future__ import annotations

import threading
from time import perf_counter

import numpy as np

from repro import faults, obs
from repro.accuracy.models import UncertaintyModel, composite_uncertainty_model
from repro.accuracy.slo import AccuracySLO, AccuracyStats
from repro.db.histogram import HistogramBuilder
from repro.db.relation import Relation
from repro.exceptions import (
    BudgetExhaustedError,
    LineageConflictError,
    PrivacyBudgetError,
    ReproError,
)
from repro.faults.degrade import CircuitBreaker
from repro.faults.retry import RetryPolicy
from repro.privacy.budget import PrivacyBudget
from repro.privacy.definitions import PrivacyParameters
from repro.queries.workload import RangeWorkload
from repro.serving.cache import ReleaseCache
from repro.serving.engine import (
    canonical_estimator_name,
    record_submit_metrics,
    score_batch_accuracy,
)
from repro.serving.planner import QueryBatch
from repro.serving.release import MaterializedRelease, ReleaseKey, fingerprint_counts
from repro.serving.stats import ServingStats
from repro.serving.store import ReleaseStore, stream_ledger_path
from repro.sharding.engine import (
    build_shard_releases,
    derive_shard_seed,
    resolve_shard_cache,
    resolve_workers,
)
from repro.sharding.lineage import ShardedLineage, ShardEpochRecord
from repro.sharding.plan import ShardPlan, resolve_plan
from repro.sharding.pool import resolve_worker_mode
from repro.sharding.release import ShardedRelease
from repro.sharding.router import ShardRouter
from repro.streaming.buffer import IngestBuffer
from repro.streaming.engine import StreamBatchResult
from repro.streaming.policy import EpsilonSchedule
from repro.utils.arrays import as_float_vector

__all__ = ["ShardedStreamingEngine"]


class ShardedStreamingEngine:
    """Epoch-refreshed sharded private-histogram server over live data.

    Parameters
    ----------
    data:
        The *current* database: a :class:`Relation` (with ``attribute``)
        or a raw unit-count vector over the full domain.
    total_epsilon:
        Lifetime budget every epoch composes against (checked against
        the lineage ledger across restarts, like the monolithic stream).
    schedule:
        Per-epoch ε schedule; epoch ``i`` charges ``schedule.epsilon_for(i)``
        regardless of how many shards it refreshes.
    refresh_rows:
        Per-shard refresh threshold: a shard is re-released in an epoch
        iff at least this many pending rows landed in it (default 1 —
        any touched shard refreshes; untouched shards never rebuild).
    num_shards / shard_size / plan:
        Partition geometry, as for
        :class:`~repro.sharding.engine.ShardedHistogramEngine`.
    estimator / branching / seed / workers / worker_mode / store /
    cache / name / build_first_epoch:
        As for the monolithic streaming engine / sharded serving engine.
        Epoch 0 (when built) refreshes every shard; ``worker_mode``
        selects how refresh builds execute (thread/process/auto), with
        epoch releases bit-identical in every mode.
    retry / breaker:
        As for the monolithic streaming engine: the retry policy wraps
        per-shard builds and lineage persists (never an ε charge), and
        the circuit breaker flags batches ``degraded=True`` while epoch
        builds are failing, healing on the first success.
    slo:
        Optional :class:`~repro.accuracy.slo.AccuracySLO`.  When set,
        every answered batch is scored against the current epoch's
        composite uncertainty model (per-answer variance and CI) and
        folded into :attr:`accuracy`.

    Adaptive schedules
    ------------------
    When ``schedule`` exposes ``allocates_per_shard = True`` (an
    :class:`~repro.accuracy.schedule.AdaptiveEpsilonAllocator`), each
    epoch asks the allocator which shards to refresh instead of applying
    the uniform ``refresh_rows`` threshold.  Grants never exceed the
    epoch's scheduled envelope ``εᵢ`` and refreshed shards hold disjoint
    data, so the epoch still charges exactly ``εᵢ`` once (parallel
    composition) — lifetime Σε accounting, lineage records, and the
    ε-ledger audit stay bit-identical to a uniform schedule.
    """

    def __init__(
        self,
        data,
        total_epsilon: float,
        schedule: EpsilonSchedule,
        *,
        attribute: str | None = None,
        refresh_rows: int = 1,
        num_shards: int | None = None,
        shard_size: int | None = None,
        plan: ShardPlan | None = None,
        estimator: str = "constrained",
        branching: int = 2,
        seed: int = 0,
        delta: float = 0.0,
        workers: int | None = None,
        worker_mode: str = "auto",
        store: ReleaseStore | None = None,
        cache: ReleaseCache | None = None,
        cache_capacity: int | None = None,
        name: str = "sharded-stream",
        build_first_epoch: bool = True,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        slo: AccuracySLO | None = None,
    ) -> None:
        if isinstance(data, Relation):
            if attribute is None:
                raise ReproError(
                    "a range attribute is required when the data is a Relation"
                )
            counts = HistogramBuilder(data, attribute).counts()
        else:
            counts = as_float_vector(data, name="counts").copy()
        if not hasattr(schedule, "epsilon_for"):
            raise ReproError(
                f"schedule must implement epsilon_for(epoch), got {schedule!r}"
            )
        if refresh_rows < 1:
            raise ReproError(
                f"refresh_rows threshold must be >= 1, got {refresh_rows}"
            )
        self._counts = counts  # guarded-by: _advance_lock
        #: immutable after construction; serves lock-free domain_size reads
        self._domain_size = int(counts.size)
        self.schedule = schedule
        self.refresh_rows = int(refresh_rows)
        self.estimator = canonical_estimator_name(estimator)
        self.branching = int(branching)
        self.base_seed = int(seed)
        self.name = str(name)
        if not self.name:
            raise ReproError("a stream name is required")
        self.plan = resolve_plan(
            counts.size, num_shards=num_shards, shard_size=shard_size, plan=plan
        )
        self.workers = resolve_workers(workers, self.plan.num_shards)
        self.worker_mode = resolve_worker_mode(
            worker_mode,
            workers=self.workers,
            shard_width=int(self.plan.sizes.max()),
        )
        self.cache = resolve_shard_cache(
            cache, store, cache_capacity, self.plan.num_shards
        )
        self._budget = PrivacyBudget(PrivacyParameters(total_epsilon, delta))
        self._buffer = IngestBuffer(counts.size)
        self.router = ShardRouter()
        self.stats = ServingStats()
        self._advance_lock = threading.Lock()
        self._serve_lock = threading.Lock()
        #: epochs built (and charged) by this process.
        self.materializations = 0  # guarded-by: _serve_lock
        self._resume_unvalidated = False  # guarded-by: _advance_lock
        #: (epoch, assembled release, that epoch's scheduled εᵢ)
        self._current: tuple[int, ShardedRelease, float] | None = None  # guarded-by: _serve_lock
        #: per-shard releases currently served, refreshed selectively.
        self.retry = retry
        self.breaker = breaker if breaker is not None else CircuitBreaker(name=self.name)
        self.slo = slo
        self.accuracy = AccuracyStats()
        # Composite uncertainty models per epoch ε-vector; racy rebuilds
        # are benign (same inputs build the same immutable model).
        self._uncertainty_models: dict[tuple, UncertaintyModel] = {}
        #: the schedule doubles as a per-shard allocator when it opts in.
        self._allocator = (
            schedule if getattr(schedule, "allocates_per_shard", False) else None
        )
        self._shard_releases: list[MaterializedRelease] | None = None  # guarded-by: _serve_lock
        self.lineage = self._open_lineage()
        if len(self.lineage):
            with self._advance_lock:
                self._resume_from_lineage_locked()
        elif build_first_epoch:
            self.advance_epoch()

    # -- construction helpers --------------------------------------------------

    def _open_lineage(self) -> ShardedLineage:
        store = self.cache.store
        if store is None:
            return ShardedLineage(retry=self.retry)
        return ShardedLineage(
            stream_ledger_path(store.root, self.name, ".sharded.json"),
            retry=self.retry,
        )

    def _resume_from_lineage_locked(self) -> None:
        """Warm restart: re-assemble the latest epoch, spending zero ε.

        Caller holds ``_advance_lock`` (the ``_locked`` convention); the
        re-assembled release is still published under ``_serve_lock``.
        """
        latest = self.lineage.latest
        store = self.cache.store
        if store is None:
            raise ReproError(
                f"sharded stream {self.name!r} has lineage but no store to "
                f"load its shard artifacts from"
            )
        if latest.num_shards != self.plan.num_shards:
            raise LineageConflictError(
                f"sharded stream {self.name!r} was built with "
                f"{latest.num_shards} shards but the engine was constructed "
                f"with {self.plan.num_shards}; the plan is part of the "
                f"stream's identity"
            )
        # The strategy (estimator, branching), the seed schedule, and the
        # ε schedule are part of the stream's identity exactly like the
        # plan: a resume with different parameters must fail here, before
        # any epoch can charge ε against releases it could never assemble
        # or extend (or extend the lineage with off-schedule charges).
        last_refresh: list[int | None] = [None] * self.plan.num_shards
        for record in self.lineage.records:
            for s in record.refreshed:
                last_refresh[s] = record.epoch
        for s, key in enumerate(latest.shard_keys):
            if key.estimator != self.estimator or key.branching != self.branching:
                raise LineageConflictError(
                    f"sharded stream {self.name!r} was built with "
                    f"({key.estimator}, b={key.branching}) but the engine "
                    f"was constructed with ({self.estimator}, "
                    f"b={self.branching}); the estimator and branching are "
                    f"part of the stream's identity"
                )
            if last_refresh[s] is None:
                raise LineageConflictError(
                    f"sharded stream {self.name!r} has a malformed lineage: "
                    f"shard {s} carries a key but no epoch ever refreshed it"
                )
            expected = derive_shard_seed(self.base_seed, last_refresh[s], s)
            if key.seed != expected:
                raise LineageConflictError(
                    f"sharded stream {self.name!r} was built under a "
                    f"different base seed: shard {s} (last refreshed in "
                    f"epoch {last_refresh[s]}) carries seed {key.seed}, but "
                    f"base seed {self.base_seed} derives {expected}; the "
                    f"seed schedule is part of the stream's identity"
                )
            scheduled = float(self.schedule.epsilon_for(last_refresh[s]))
            if self._allocator is not None:
                # An adaptive allocator grants per-shard ε anywhere in
                # (0, εᵢ]; the epoch's envelope is the identity.
                if not 0.0 < key.epsilon <= scheduled:
                    raise LineageConflictError(
                        f"sharded stream {self.name!r} was built under a "
                        f"different ε schedule: shard {s} (last refreshed "
                        f"in epoch {last_refresh[s]}) carries "
                        f"ε={key.epsilon:g}, outside the envelope "
                        f"ε={scheduled:g} the supplied schedule prescribes "
                        f"for that epoch; the ε schedule is part of the "
                        f"stream's identity"
                    )
            elif key.epsilon != scheduled:
                raise LineageConflictError(
                    f"sharded stream {self.name!r} was built under a "
                    f"different ε schedule: shard {s} (last refreshed in "
                    f"epoch {last_refresh[s]}) was charged ε={key.epsilon:g} "
                    f"but the supplied schedule prescribes ε={scheduled:g} "
                    f"for that epoch; the ε schedule is part of the "
                    f"stream's identity"
                )
        releases = []
        for s, key in enumerate(latest.shard_keys):
            release = self.cache.get(key)
            if release is None:
                release = store.get(key)
                if release is not None:
                    self.cache.put(key, release)
            if release is None:
                raise ReproError(
                    f"sharded stream {self.name!r} has lineage through epoch "
                    f"{latest.epoch} but shard {s}'s artifact is missing "
                    f"from the store"
                )
            releases.append(release)
        assembled = ShardedRelease(
            self.plan,
            releases,
            dataset_fingerprint=fingerprint_counts(self._counts),
        )
        with self._serve_lock:
            self._shard_releases = releases
            self._current = (latest.epoch, assembled, latest.epsilon)
        self._resume_unvalidated = True

    # -- budget ----------------------------------------------------------------

    @property
    def budget(self) -> PrivacyBudget:
        return self._budget

    @property
    def spent_epsilon(self) -> float:
        """ε spent by *this process* (a warm restart starts at zero)."""
        return self._budget.spent_epsilon

    @property
    def remaining_epsilon(self) -> float:
        return self._budget.remaining_epsilon

    # -- ingestion -------------------------------------------------------------

    @property
    def domain_size(self) -> int:
        return self._domain_size

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def pending_rows(self) -> int:
        return self._buffer.pending_rows

    def ingest(self, indexes) -> int:
        """Ingest rows given as domain indexes (buffered until an epoch)."""
        rows = self._buffer.add(indexes)
        self._record_ingest(rows)
        return rows

    def ingest_counts(self, delta) -> int:
        """Ingest a pre-aggregated delta count vector."""
        rows = self._buffer.add_counts(delta)
        self._record_ingest(rows)
        return rows

    def _record_ingest(self, rows: int) -> None:
        if obs.enabled():
            obs.registry().counter(
                "repro_stream_ingest_rows_total", "Rows ingested into streams"
            ).inc(rows, stream=self.name)

    def pending_rows_per_shard(self) -> np.ndarray:
        """Pending backlog split by shard (what the threshold is judged on)."""
        delta = self._buffer.pending_counts()
        return np.add.reduceat(delta, self.plan.starts)

    # -- epoch building --------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Index of the epoch currently being served (-1 before epoch 0)."""
        with self._serve_lock:
            return self._current[0] if self._current is not None else -1

    def advance_epoch(self) -> ShardEpochRecord | None:
        """Build and publish the next partial-refresh epoch synchronously.

        Drains the buffer, re-releases every shard whose pending rows
        meet :attr:`refresh_rows` (all shards on epoch 0), restores
        sub-threshold deltas for a later epoch, charges the schedule's
        εᵢ once on success, records the refresh set in the lineage, and
        swaps the assembled release in atomically.  Returns ``None``
        without building (or charging) when no shard meets the
        threshold; on any failure the drained rows are restored and no
        ε is spent.
        """
        with self._advance_lock:
            try:
                record = self._advance_locked()
            except Exception as error:
                self.breaker.record_failure(error)
                raise
        if record is not None:
            # A below-threshold no-op exercised no build path, so it
            # neither heals nor harms the breaker.
            self.breaker.record_success()
        return record

    def _advance_locked(self) -> ShardEpochRecord | None:
        epoch = self.lineage.next_epoch
        epsilon = self.schedule.epsilon_for(epoch)
        if self._resume_unvalidated:
            # Same stale-base refusal as the monolithic stream: building
            # on counts that disagree with the lineage's row ledger would
            # silently drop previously folded rows.
            recorded = self.lineage.latest.total_rows
            current = float(self._counts.sum())
            if abs(current - recorded) > 0.5 + 1e-9 * abs(recorded):
                raise LineageConflictError(
                    f"sharded stream {self.name!r} resumed at epoch "
                    f"{self.lineage.latest.epoch} whose release covered "
                    f"{recorded:g} rows, but the supplied counts hold "
                    f"{current:g}; pass the stream's *current* database to "
                    f"keep building"
                )
            self._resume_unvalidated = False
        delta, rows = self._buffer.drain()
        bootstrap = self._shard_releases is None
        shard_rows = np.add.reduceat(delta, self.plan.starts)
        grants = None
        if self._allocator is not None:
            # The allocator decides the refresh set and per-shard grants;
            # every grant is bounded by this epoch's envelope εᵢ, so the
            # single εᵢ charge below still covers the whole refresh set
            # by parallel composition.
            grants = self._allocator.allocate(
                epoch, shard_rows, bootstrap=bootstrap
            )
            refreshed = [
                s for s in range(self.plan.num_shards) if grants[s] > 0.0
            ]
        elif bootstrap:
            refreshed = list(range(self.plan.num_shards))
        else:
            refreshed = [
                s
                for s in range(self.plan.num_shards)
                if shard_rows[s] >= self.refresh_rows
            ]
        if not refreshed:
            # Nothing crossed the threshold: no build, no charge; the
            # backlog rides into a later epoch untouched.
            self._buffer.restore(delta, rows)
            return None
        # The epoch will actually build and charge: enforce the lifetime
        # budget only now, so an exhausted stream polled with an empty or
        # sub-threshold backlog stays a free no-op (the documented
        # contract) instead of raising on every tick.
        lifetime = max(self.lineage.spent_epsilon, self._budget.spent_epsilon)
        if lifetime + epsilon > self._budget.total.epsilon + 1e-12:
            self._restore_backlog(delta, rows)
            raise BudgetExhaustedError(
                f"epoch {epoch} would charge ε={epsilon:g}, but the stream "
                f"has already spent ε={lifetime:g} of its lifetime "
                f"{self._budget.total.epsilon:g} across its lineage"
            )
        # Split the drained delta: refreshed shards fold now, the rest of
        # the backlog goes straight back to the buffer.
        refresh_mask = np.zeros(self.plan.num_shards, dtype=bool)
        refresh_mask[refreshed] = True
        fold_mask = np.repeat(refresh_mask, self.plan.sizes)
        fold = np.where(fold_mask, delta, 0.0)
        ride_along = np.where(fold_mask, 0.0, delta)
        fold_rows = int(round(float(shard_rows[list(refreshed)].sum())))
        if ride_along.any():
            self._buffer.restore(ride_along, rows - fold_rows)
        counts = self._counts + fold if fold.any() else self._counts
        shard_counts = self.plan.split(counts)
        keys = [
            ReleaseKey(
                dataset_fingerprint=fingerprint_counts(shard_counts[s]),
                estimator=self.estimator,
                epsilon=float(epsilon if grants is None else grants[s]),
                branching=self.branching,
                seed=derive_shard_seed(self.base_seed, epoch, s),
            )
            for s in refreshed
        ]
        try:
            if faults.enabled():
                # Injected before any shard build: a failed epoch charges
                # nothing and the folded rows are restored below.
                faults.check("stream.epoch_build")
            if obs.enabled():
                build_start = perf_counter()
                with obs.tracer().span(
                    "stream.advance_epoch",
                    stream=self.name,
                    epoch=epoch,
                    epsilon=epsilon,
                    refreshed_shards=len(refreshed),
                ):
                    fresh = build_shard_releases(
                        [shard_counts[s] for s in refreshed],
                        keys,
                        delta=self._budget.total.delta,
                        workers=self.workers,
                        worker_mode=self.worker_mode,
                        retry=self.retry,
                    )
                registry = obs.registry()
                registry.histogram(
                    "repro_stream_epoch_build_seconds",
                    "Epoch build latency (seconds)",
                ).observe(perf_counter() - build_start, stream=self.name)
                registry.histogram(
                    "repro_stream_refresh_shards",
                    "Shards re-released per epoch (refresh-set size)",
                    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
                ).observe(len(refreshed), stream=self.name)
            else:
                fresh = build_shard_releases(
                    [shard_counts[s] for s in refreshed],
                    keys,
                    delta=self._budget.total.delta,
                    workers=self.workers,
                    worker_mode=self.worker_mode,
                    retry=self.retry,
                )
        except BaseException:
            # Nothing was charged or cached; the folded rows rejoin the
            # backlog for the next attempt.
            self._restore_backlog(fold, fold_rows)
            raise
        # One εᵢ for the whole refresh set (parallel composition over the
        # disjoint refreshed shards), only now that every build succeeded.
        self._budget.spend(
            epsilon,
            label=(
                f"epoch {epoch} sharded ({self.estimator}, "
                f"{len(refreshed)}/{self.plan.num_shards} shards)"
            ),
        )
        try:
            # Everything between the charge and publication — cache
            # fills, assembly (which re-validates shard agreement), the
            # store writes, and the lineage append — restores on failure:
            # ε is charged (the releases exist in memory) but the epoch
            # is not published, so the next successful epoch re-releases
            # the rows rather than losing them — the same documented
            # residual as the monolithic stream.
            for key, release in zip(keys, fresh):
                self.cache.put(key, release)
            shard_releases = (
                list(fresh)
                if bootstrap
                else list(self._shard_releases)
            )
            if not bootstrap:
                for s, release in zip(refreshed, fresh):
                    shard_releases[s] = release
            assembled = ShardedRelease(
                self.plan,
                shard_releases,
                dataset_fingerprint=fingerprint_counts(counts),
            )
            record = ShardEpochRecord(
                epoch=epoch,
                epsilon=float(epsilon),
                refreshed=tuple(refreshed),
                shard_keys=assembled.shard_keys,
                rows_ingested=fold_rows,
                total_rows=float(counts.sum()),
            )
            if self.cache.store is not None:
                for release in fresh:
                    self.cache.store.put(release)
            self.lineage.append(record)
        except BaseException:
            self._restore_backlog(fold, fold_rows)
            raise
        self._counts = counts
        with self._serve_lock:
            self._shard_releases = shard_releases
            self._current = (epoch, assembled, float(epsilon))
            self.materializations += 1
        if obs.enabled():
            obs.registry().counter(
                "repro_stream_epochs_total", "Epochs built and published"
            ).inc(stream=self.name)
        return record

    def _restore_backlog(self, delta, rows: int) -> None:
        """Return a drained delta to the buffer, counting the restore."""
        self._buffer.restore(delta, rows)
        if obs.enabled():
            obs.registry().counter(
                "repro_stream_buffer_restores_total",
                "Drained deltas restored after a failed epoch",
            ).inc(stream=self.name)

    # -- serving ---------------------------------------------------------------

    def submit(self, batch: QueryBatch | RangeWorkload) -> StreamBatchResult:
        """Answer a batch from the latest published epoch (no torn reads)."""
        if isinstance(batch, RangeWorkload):
            batch = QueryBatch.from_workload(batch)
        with self._serve_lock:
            current = self._current
        if current is None:
            raise ReproError(
                f"sharded stream {self.name!r} has no epoch yet; ingest data "
                f"and advance an epoch first"
            )
        epoch, release, epoch_epsilon = current
        start = perf_counter()
        answers = self.router.answer(release, batch)
        answer_seconds = perf_counter() - start
        self.stats.record_batch(len(batch), answer_seconds)
        if obs.enabled():
            record_submit_metrics("sharded-stream", len(batch), answer_seconds)
        variances = ci_los = ci_his = confidence = None
        if self.slo is not None:
            epsilons = tuple(float(e) for e in release.shard_epsilons)
            model_key = (release.estimator, epsilons, release.branching)
            model = self._uncertainty_models.get(model_key)
            if model is None:
                model = composite_uncertainty_model(
                    self.plan.starts,
                    self._domain_size,
                    release.estimator,
                    epsilons,
                    branching=release.branching,
                )
                self._uncertainty_models[model_key] = model
            variances, ci_los, ci_his, confidence = score_batch_accuracy(
                model, batch, answers, self.slo, self.accuracy, "sharded-stream"
            )
        return StreamBatchResult(
            answers=answers,
            epoch=epoch,
            estimator=release.estimator,
            epsilon=epoch_epsilon,
            dataset_fingerprint=release.dataset_fingerprint,
            answer_seconds=answer_seconds,
            degraded=self.breaker.degraded,
            variances=variances,
            ci_los=ci_los,
            ci_his=ci_his,
            confidence=confidence,
        )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """No background resources to release; present for fleet symmetry."""

    def __enter__(self) -> "ShardedStreamingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedStreamingEngine(name={self.name!r}, epoch={self.epoch}, "
            f"num_shards={self.num_shards}, pending_rows={self.pending_rows}, "
            f"spent_epsilon={self.spent_epsilon:g})"
        )
