"""The assembled sharded release: one logical histogram, many artifacts.

A :class:`ShardedRelease` stitches per-shard
:class:`~repro.serving.release.MaterializedRelease` artifacts — each a
normal, individually persisted release over its shard's sub-histogram —
into one queryable release over the full domain.  Assembly builds the
serving index once:

* the **global prefix-sum array** over the concatenated shard leaves,
  computed with exactly the arithmetic a monolithic
  :class:`MaterializedRelease` would use (``cumsum`` left to right), so
  answers through the :class:`~repro.sharding.router.ShardRouter` are
  **bit-identical** to a monolithic release built over the same leaves;
* each shard's **prefix index** is a zero-copy *view* of that global
  array: local prefix sums with the cumulated totals of every preceding
  shard baked in.  A full shard's mass therefore costs O(1) (it lives in
  the offsets), and a partial shard is one gather into its own view;
* the **boundary prefix** (global prefix at the shard boundaries) is the
  O(k) table of cumulated shard totals the router uses for full-shard
  spans in the stitched/distributed answering mode.

The sharded release is post-processing of its shards (Proposition 2):
assembling, persisting, or re-assembling it never touches the private
data and never costs ε.  Privacy accounting for *building* the shards
lives in :class:`~repro.sharding.engine.ShardedHistogramEngine`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import QueryError, ReproError
from repro.serving.release import MaterializedRelease, ReleaseKey
from repro.sharding.plan import ShardPlan
from repro.utils.arrays import as_range_bounds

__all__ = ["ShardedRelease"]


class ShardedRelease:
    """An immutable sharded consistent-histogram release.

    Parameters
    ----------
    plan:
        The :class:`ShardPlan` the shards were built under.
    shard_releases:
        One :class:`MaterializedRelease` per shard, in shard order; shard
        ``s``'s domain size must equal the plan's shard width.  Estimator,
        ε, and branching must agree across shards (they are one release);
        seeds are per-shard (distinct seeds keep the shards' noise
        independent, which the privacy argument requires).
    dataset_fingerprint:
        Fingerprint of the *full* count vector, for telemetry and
        identity; the per-shard artifacts carry their own sub-histogram
        fingerprints.
    """

    def __init__(
        self,
        plan: ShardPlan,
        shard_releases,
        *,
        dataset_fingerprint: str,
    ) -> None:
        shards = tuple(shard_releases)
        if len(shards) != plan.num_shards:
            raise ReproError(
                f"plan has {plan.num_shards} shards but {len(shards)} "
                f"releases were supplied"
            )
        sizes = plan.sizes
        for s, release in enumerate(shards):
            if not isinstance(release, MaterializedRelease):
                raise ReproError(
                    f"shard {s} is {type(release).__name__}, expected a "
                    f"MaterializedRelease"
                )
            if release.domain_size != int(sizes[s]):
                raise ReproError(
                    f"shard {s} covers {release.domain_size} buckets, plan "
                    f"expects {int(sizes[s])}"
                )
        first = shards[0]
        for s, release in enumerate(shards):
            # Per-shard ε may legitimately differ (a partial-refresh
            # stream serves shards released in different epochs); the
            # strategy itself must not.
            if (
                release.estimator != first.estimator
                or release.branching != first.branching
            ):
                raise ReproError(
                    f"shard {s} ({release.estimator}, b={release.branching}) "
                    f"disagrees with shard 0 ({first.estimator}, "
                    f"b={first.branching}); a sharded release is one release"
                )
        seeds = [release.seed for release in shards]
        if len(set(seeds)) != len(seeds):
            raise ReproError(
                "shard seeds must be pairwise distinct: reusing a seed "
                "across shards with identical counts would reuse the same "
                "noise draw, voiding the parallel-composition guarantee"
            )
        self.plan = plan
        self.shard_releases = shards
        self.estimator = first.estimator
        #: the largest per-shard mechanism ε in the assembly — the
        #: uniform ε for one-shot sharded releases; partial-refresh
        #: streams mix epochs (see :attr:`shard_epsilons`), and their
        #: lifetime guarantee is the lineage's Σεᵢ, not any single value.
        self.epsilon = max(release.epsilon for release in shards)
        self.branching = first.branching
        self.dataset_fingerprint = str(dataset_fingerprint)
        # Fill a preallocated array from each shard's read-only view: one
        # copy per shard instead of unit_counts()'s defensive copy plus
        # the concatenate copy (this runs on every epoch publish).
        leaves = np.empty(plan.domain_size, dtype=np.float64)
        for s, release in enumerate(shards):
            lo = int(plan.boundaries[s])
            leaves[lo : lo + release.domain_size] = release.unit_counts_view()
        leaves.setflags(write=False)
        self._leaves = leaves
        # The exact arithmetic MaterializedRelease uses for its index, so
        # router answers match a monolithic release bit for bit.
        prefix = np.concatenate(([0.0], np.cumsum(leaves)))
        prefix.setflags(write=False)
        self._prefix = prefix

    # -- geometry --------------------------------------------------------------

    @property
    def domain_size(self) -> int:
        return self.plan.domain_size

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def shard_seeds(self) -> tuple[int, ...]:
        return tuple(release.seed for release in self.shard_releases)

    @property
    def shard_epsilons(self) -> tuple[float, ...]:
        """Per-shard mechanism ε (uniform except for partial-refresh streams)."""
        return tuple(release.epsilon for release in self.shard_releases)

    @property
    def shard_keys(self) -> tuple[ReleaseKey, ...]:
        """The full release identity of every shard artifact, in order."""
        return tuple(release.key for release in self.shard_releases)

    def shard_index(self, shard: int) -> np.ndarray:
        """Shard ``shard``'s prefix-sum index (a view, offsets baked in).

        Entry ``j`` is the global prefix value at bucket ``b_s + j``: the
        shard's local prefix sums plus the cumulated totals of every
        preceding shard.  ``index[0]`` is the mass of all shards before
        this one; ``index[-1]`` adds this shard's own total.
        """
        shard = self.plan._check_shard(shard)
        lo = int(self.plan.boundaries[shard])
        hi = int(self.plan.boundaries[shard + 1])
        return self._prefix[lo : hi + 1]

    @property
    def boundary_prefix(self) -> np.ndarray:
        """Cumulated shard totals: the global prefix at each boundary (O(k))."""
        return self._prefix[self.plan.boundaries]

    @property
    def shard_totals(self) -> np.ndarray:
        """Estimated total mass of each shard."""
        return np.diff(self.boundary_prefix)

    # -- answering -------------------------------------------------------------

    def unit_counts(self) -> np.ndarray:
        """The released unit estimates over the full domain (copy)."""
        return self._leaves.copy()

    def total(self) -> float:
        """Estimate of the total number of records."""
        return float(self._prefix[-1])

    def range_sum(self, lo: int, hi: int) -> float:
        """Estimate ``c([lo, hi])`` (inclusive) in O(1)."""
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi < self.domain_size:
            raise QueryError(
                f"invalid range [{lo}, {hi}] for domain size {self.domain_size}"
            )
        return float(self._prefix[hi + 1] - self._prefix[lo])

    def range_sums(self, los, his, assume_valid: bool = False) -> np.ndarray:
        """Batch range estimates; same contract as the monolithic release."""
        if assume_valid:
            los = np.asarray(los, dtype=np.int64)
            his = np.asarray(his, dtype=np.int64)
        else:
            los, his = as_range_bounds(los, his, self.domain_size)
        return self._prefix[his + 1] - self._prefix[los]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedRelease(estimator={self.estimator!r}, "
            f"epsilon={self.epsilon:g}, num_shards={self.num_shards}, "
            f"domain_size={self.domain_size})"
        )
