"""Partitioning a massive domain into contiguous shards.

A :class:`ShardPlan` is the static geometry of a sharded release: a
strictly increasing boundary array ``b[0]=0 < b[1] < ... < b[k]=n``
splitting the unit-count domain ``[0, n)`` into ``k`` contiguous,
non-empty shards ``[b[s], b[s+1])``.  Everything else in
:mod:`repro.sharding` — per-shard builds, the query router, per-shard
epoch refresh — is parameterized by a plan, and every routing decision is
one vectorized ``searchsorted`` against the boundaries.

Shards partition the domain, so each database record falls in exactly
one shard; that disjointness is what makes the sharded privacy
accounting work (parallel composition — see :mod:`repro.sharding`).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DomainError

__all__ = ["DEFAULT_SHARD_SIZE", "ShardPlan", "resolve_plan"]

#: Default target shard width.  Chosen so one shard's H̄ build (tree
#: nodes, noise, inference passes) stays resident in CPU cache — the
#: measured sweet spot that makes a sharded build beat a monolithic one
#: even on a single core.
DEFAULT_SHARD_SIZE = 65_536


class ShardPlan:
    """Immutable contiguous partition of ``[0, domain_size)`` into shards.

    Parameters
    ----------
    boundaries:
        Integer array ``[0, b_1, ..., domain_size]``, strictly
        increasing — shard ``s`` covers buckets ``[b_s, b_{s+1})`` and is
        never empty.
    """

    def __init__(self, boundaries) -> None:
        bounds = np.asarray(boundaries, dtype=np.int64)
        if bounds.ndim != 1 or bounds.size < 2:
            raise DomainError(
                f"shard boundaries must be a 1-D array of >= 2 entries, "
                f"got shape {bounds.shape}"
            )
        if bounds[0] != 0:
            raise DomainError(f"shard boundaries must start at 0, got {bounds[0]}")
        if np.any(np.diff(bounds) <= 0):
            raise DomainError("shard boundaries must be strictly increasing")
        bounds = bounds.copy()
        bounds.setflags(write=False)
        self.boundaries = bounds

    # -- factories -------------------------------------------------------------

    @classmethod
    def uniform(cls, domain_size: int, num_shards: int) -> "ShardPlan":
        """``num_shards`` near-equal shards (the first ``n % k`` get one extra)."""
        if domain_size < 1:
            raise DomainError(f"domain_size must be positive, got {domain_size}")
        if not 1 <= num_shards <= domain_size:
            raise DomainError(
                f"num_shards must be in [1, {domain_size}], got {num_shards}"
            )
        base, extra = divmod(int(domain_size), int(num_shards))
        sizes = np.full(int(num_shards), base, dtype=np.int64)
        sizes[:extra] += 1
        return cls(np.concatenate(([0], np.cumsum(sizes))))

    @classmethod
    def with_shard_size(
        cls, domain_size: int, shard_size: int = DEFAULT_SHARD_SIZE
    ) -> "ShardPlan":
        """Shards of width ``shard_size`` (the last one may be narrower)."""
        if domain_size < 1:
            raise DomainError(f"domain_size must be positive, got {domain_size}")
        if shard_size < 1:
            raise DomainError(f"shard_size must be positive, got {shard_size}")
        bounds = np.arange(0, int(domain_size), int(shard_size), dtype=np.int64)
        return cls(np.concatenate((bounds, [int(domain_size)])))

    # -- geometry --------------------------------------------------------------

    @property
    def domain_size(self) -> int:
        return int(self.boundaries[-1])

    @property
    def num_shards(self) -> int:
        return int(self.boundaries.size - 1)

    @property
    def starts(self) -> np.ndarray:
        """First bucket of each shard."""
        return self.boundaries[:-1]

    @property
    def ends(self) -> np.ndarray:
        """One past the last bucket of each shard."""
        return self.boundaries[1:]

    @property
    def sizes(self) -> np.ndarray:
        """Bucket count of each shard."""
        return np.diff(self.boundaries)

    def slice_of(self, shard: int) -> slice:
        """The ``[start, end)`` slice shard ``shard`` covers."""
        shard = self._check_shard(shard)
        return slice(int(self.boundaries[shard]), int(self.boundaries[shard + 1]))

    def shard_of(self, positions) -> np.ndarray:
        """The shard index holding each bucket position (vectorized).

        One ``searchsorted`` over the boundaries; positions must lie in
        ``[0, domain_size)``.
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size and (
            positions.min() < 0 or positions.max() >= self.domain_size
        ):
            raise DomainError(
                f"positions must lie in [0, {self.domain_size}), got range "
                f"[{positions.min()}, {positions.max()}]"
            )
        return np.searchsorted(self.boundaries, positions, side="right") - 1

    def shard_of_prefix(self, positions) -> np.ndarray:
        """The shard whose prefix-sum index evaluates prefix position ``p``.

        Prefix positions live in ``[0, domain_size]`` (one past the last
        bucket).  A boundary position belongs to either adjacent shard's
        index — both store the identical global prefix value there — so
        this maps ``p`` to the left neighbour and clamps ``p =
        domain_size`` into the last shard.
        """
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size and (
            positions.min() < 0 or positions.max() > self.domain_size
        ):
            raise DomainError(
                f"prefix positions must lie in [0, {self.domain_size}], got "
                f"range [{positions.min()}, {positions.max()}]"
            )
        shards = np.searchsorted(self.boundaries, positions, side="right") - 1
        return np.minimum(shards, self.num_shards - 1)

    def split(self, counts: np.ndarray) -> list[np.ndarray]:
        """Views of ``counts`` sliced per shard (no copies)."""
        counts = np.asarray(counts)
        if counts.shape[-1] != self.domain_size:
            raise DomainError(
                f"counts cover {counts.shape[-1]} buckets, plan covers "
                f"{self.domain_size}"
            )
        return [counts[..., self.slice_of(s)] for s in range(self.num_shards)]

    def _check_shard(self, shard: int) -> int:
        shard = int(shard)
        if not 0 <= shard < self.num_shards:
            raise DomainError(
                f"shard index must be in [0, {self.num_shards}), got {shard}"
            )
        return shard

    # -- identity --------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, ShardPlan) and np.array_equal(
            self.boundaries, other.boundaries
        )

    def __hash__(self) -> int:
        return hash(self.boundaries.tobytes())

    def __len__(self) -> int:
        return self.num_shards

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardPlan(num_shards={self.num_shards}, "
            f"domain_size={self.domain_size})"
        )


def resolve_plan(
    domain_size: int,
    num_shards: int | None = None,
    shard_size: int | None = None,
    plan: ShardPlan | None = None,
) -> ShardPlan:
    """The partition geometry from the engines' three-way constructor knob.

    At most one of ``num_shards`` / ``shard_size`` / ``plan`` may be
    given; the default is :data:`DEFAULT_SHARD_SIZE`-wide shards.  One
    implementation shared by the serving and streaming sharded engines
    so their geometry semantics can never drift.
    """
    given = [p is not None for p in (num_shards, shard_size, plan)]
    if sum(given) > 1:
        raise DomainError("pass at most one of num_shards, shard_size, or plan")
    if plan is not None:
        if plan.domain_size != domain_size:
            raise DomainError(
                f"plan covers {plan.domain_size} buckets, data has {domain_size}"
            )
        return plan
    if num_shards is not None:
        return ShardPlan.uniform(domain_size, num_shards)
    return ShardPlan.with_shard_size(
        domain_size, shard_size if shard_size is not None else DEFAULT_SHARD_SIZE
    )
