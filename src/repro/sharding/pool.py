"""Worker pools for parallel shard builds: thread, process, or auto.

This module is the execution substrate under
:func:`repro.sharding.engine.build_shard_releases`: it knows how to run
a batch of pure, picklable shard-build tasks on a pool of workers and
nothing else.  The engine keeps everything stateful — cache probes,
store writes, the single ε charge, fault-point checks, and obs
recording — on the parent side, so the pool can treat every task as a
deterministic function ``(counts, key, delta) -> leaves`` that is safe
to run anywhere, in any order, any number of times.

**Why a process mode at all.**  The hot kernels behind a shard build
(H̄ bottom-up/top-down and block-merge PAVA) are pure Python + NumPy
loops that hold the GIL, so a ``ThreadPoolExecutor`` can never deliver
more than one core of build throughput: ``workers=8`` is bit-identical
*in wall-clock* to ``workers=1``.  The process mode ships each chunk of
:class:`ShardBuildSpec` tasks to a spawn-context
``ProcessPoolExecutor`` and gets real cores — the paper's
hierarchical-release construction parallelizes trivially over disjoint
shards.

**Contracts.**

* *Bit-identity*: results are returned in spec order and are
  deterministic functions of ``(counts, key, delta)``; worker count,
  worker mode, chunking, and completion order cannot change a single
  bit of any leaf vector.
* *Fail-fast*: the first failing chunk cancels every not-yet-started
  chunk (``wait(FIRST_EXCEPTION)`` + ``Future.cancel``) and the first
  failure *in submission order* is re-raised — no queued build runs to
  completion behind the error, and the raised error is deterministic
  even when several chunks fail concurrently.
* *Bare children*: spawn workers import the code fresh and therefore
  see :mod:`repro.obs` and :mod:`repro.faults` in their default
  **disabled** state.  That is the defined semantics, not an accident:
  fault points are checked in the parent *before* dispatch and metrics
  are recorded in the parent from the per-task durations every worker
  returns, so enabling obs or arming faults in the parent never needs
  to reach across the process boundary (and a worker can never consume
  a fault schedule out of order).

**Amortization.**  Spawning a process pool costs ~0.5–1 s, far more
than one shard build; process executors are therefore cached per worker
count for the life of the process (broken pools are evicted and
rebuilt).  Thread executors are cheap and created per call.  Leaf
vectors travel back to the parent pickled in contiguous chunks — a few
large arrays per worker rather than thousands of tiny messages — which
keeps IPC off the critical path.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (
    FIRST_EXCEPTION,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from time import perf_counter

import numpy as np

from repro import faults, obs
from repro.exceptions import ReproError
from repro.serving.engine import compute_release_leaves
from repro.serving.release import ReleaseKey

__all__ = [
    "WORKER_MODES",
    "PROCESS_MODE_MIN_SHARD_WIDTH",
    "CHUNKS_PER_WORKER",
    "ShardBuildSpec",
    "ShardBuildOutcome",
    "build_spec_chunk",
    "chunk_slices",
    "effective_cpu_count",
    "resolve_worker_mode",
    "run_shard_builds",
    "shutdown_worker_pools",
    "warm_worker_pool",
]

#: The accepted ``worker_mode`` values: ``"auto"`` resolves to one of
#: the other two by :func:`resolve_worker_mode`.
WORKER_MODES = ("auto", "thread", "process")

#: ``"auto"`` picks the process pool only when shards are at least this
#: wide.  Below it a shard builds in well under a millisecond and the
#: pickle/IPC round-trip would dominate; above it the per-shard kernel
#: time dwarfs the transfer cost and real cores win.
PROCESS_MODE_MIN_SHARD_WIDTH = 1 << 14

#: Specs are dispatched in ``min(len(specs), workers * CHUNKS_PER_WORKER)``
#: contiguous chunks: enough slack that an unlucky slow chunk cannot
#: serialize the pool, few enough that chunk overhead stays negligible.
CHUNKS_PER_WORKER = 4


def effective_cpu_count() -> int:
    """CPUs actually available to this process, not CPUs in the box.

    Prefers ``os.process_cpu_count()`` (Python ≥ 3.13), then the
    scheduling affinity mask (which reflects cgroup/taskset limits on
    Linux), and only then raw ``os.cpu_count()``.  A container pinned
    to 2 of 64 cores sizes its default pool at 2, not 64.
    """
    probe = getattr(os, "process_cpu_count", None)
    if probe is not None:
        counted = probe()
        if counted:
            return int(counted)
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            counted = len(affinity(0))
        except OSError:  # pragma: no cover - platform-specific
            counted = 0
        if counted:
            return counted
    return os.cpu_count() or 1


def resolve_worker_mode(mode: str, *, workers: int, shard_width: int) -> str:
    """Resolve a ``worker_mode`` knob to a concrete ``"thread"``/``"process"``.

    ``"auto"`` picks the process pool exactly when it can help: more
    than one worker *and* shards at least
    :data:`PROCESS_MODE_MIN_SHARD_WIDTH` wide (so kernel time, not
    pickle time, dominates).  Everything else — explicit modes pass
    through — resolves to the thread pool, whose only real use is
    ``workers=1``-equivalent dispatch and tiny-shard smoke runs.
    """
    if mode not in WORKER_MODES:
        raise ReproError(
            f"worker_mode must be one of {WORKER_MODES}, got {mode!r}"
        )
    if mode != "auto":
        return mode
    if workers > 1 and shard_width >= PROCESS_MODE_MIN_SHARD_WIDTH:
        return "process"
    return "thread"


@dataclass(frozen=True, eq=False)
class ShardBuildSpec:
    """One picklable shard-build task: ``(counts, key, delta) -> leaves``.

    Carries everything :func:`~repro.serving.engine.compute_release_leaves`
    needs and nothing else — no locks, no budgets, no caches — so a spec
    can cross a spawn boundary and rebuild bit-identically anywhere.
    """

    counts: np.ndarray
    key: ReleaseKey
    delta: float = 0.0


@dataclass(frozen=True, eq=False)
class ShardBuildOutcome:
    """A finished build: the leaf vector plus the worker-side duration.

    ``seconds`` is measured inside the worker around the kernel only
    (pickle/IPC excluded), which is what the parent records into the
    ``repro_shard_build_seconds`` histogram — the same quantity the
    inline ``workers=1`` path times.
    """

    leaves: np.ndarray
    seconds: float


def build_spec_chunk(specs: list[ShardBuildSpec]) -> list[ShardBuildOutcome]:
    """Build every spec in one worker invocation, in order.

    This is the function a pool worker actually runs (top-level, so it
    pickles by reference under spawn).  Pure computation: no fault
    points, no obs, no ε — the parent owns all of that.
    """
    outcomes: list[ShardBuildOutcome] = []
    for spec in specs:
        start = perf_counter()
        leaves = compute_release_leaves(spec.counts, spec.key, delta=spec.delta)
        outcomes.append(ShardBuildOutcome(leaves, perf_counter() - start))
    return outcomes


def chunk_slices(count: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``(start, stop)`` spans covering ``range(count)``.

    At most ``workers * CHUNKS_PER_WORKER`` chunks, sized within one of
    each other (the classic remainder-spread), in index order — so
    chunk boundaries are a pure function of ``(count, workers)`` and
    reassembly is just slice assignment.
    """
    if count <= 0:
        return []
    chunks = min(count, max(1, workers) * CHUNKS_PER_WORKER)
    base, extra = divmod(count, chunks)
    spans: list[tuple[int, int]] = []
    start = 0
    for index in range(chunks):
        stop = start + base + (1 if index < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


class _ProcessPoolCache:
    """Spawn-context process pools cached per worker count.

    Pool startup (~0.5–1 s under spawn) costs two orders of magnitude
    more than a typical shard build, so executors live for the process
    lifetime and are reused across materializations, epochs, and
    engines.  A broken pool (a worker died mid-task) is evicted so the
    next request gets a fresh one.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pools: dict[int, ProcessPoolExecutor] = {}  # guarded-by: _lock

    def get(self, workers: int) -> ProcessPoolExecutor:
        """The cached pool for ``workers``, created on first use."""
        with self._lock:
            pool = self._pools.get(workers)
            if pool is None:
                # Spawn, never fork: forking a multi-threaded parent (the
                # engines hold locks on other threads) deadlocks, and the
                # fork default is deprecated for exactly this reason.
                pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=get_context("spawn")
                )
                self._pools[workers] = pool
            return pool

    def evict(self, workers: int) -> None:
        """Drop (and shut down) the pool for ``workers``, if any."""
        with self._lock:
            pool = self._pools.pop(workers, None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def shutdown_all(self) -> None:
        """Shut down every cached pool (tests and interpreter teardown)."""
        with self._lock:
            pools, self._pools = list(self._pools.values()), {}
        for pool in pools:
            pool.shutdown(wait=True, cancel_futures=True)


_PROCESS_POOLS = _ProcessPoolCache()


def _process_executor(workers: int) -> ProcessPoolExecutor:
    """The long-lived spawn pool for ``workers`` (cached; see cache docs)."""
    return _PROCESS_POOLS.get(workers)


def shutdown_worker_pools() -> None:
    """Shut down every cached process pool.

    Never required for correctness — executors clean up at interpreter
    exit — but lets tests and long-lived hosts release worker processes
    deterministically.
    """
    _PROCESS_POOLS.shutdown_all()


def warm_worker_pool(workers: int) -> None:
    """Pre-spawn the cached process pool for ``workers`` and wait for it.

    Pool startup (interpreter spawn + imports per worker) is a one-time
    cost the cache amortizes away in steady state; benchmarks call this
    before timing so a sweep point measures build throughput, not the
    first request's spawn latency.  A no-op for ``workers <= 1``.
    """
    if workers <= 1:
        return
    executor = _process_executor(workers)
    futures = [
        executor.submit(build_spec_chunk, []) for _ in range(workers)
    ]
    wait(futures)


def _dispatch(executor, chunks, spans, total) -> list[ShardBuildOutcome]:
    """Fan chunks out on ``executor``; fail fast; reassemble in order.

    On the first chunk failure every not-yet-started chunk is cancelled
    and the earliest failure *in submission order* is raised, so the
    surfaced error is deterministic even when several chunks fail in
    the same round.
    """
    futures = [executor.submit(build_spec_chunk, chunk) for chunk in chunks]
    try:
        wait(futures, return_when=FIRST_EXCEPTION)
        for future in futures:
            if future.done() and not future.cancelled():
                error = future.exception()
                if error is not None:
                    raise error
        outcomes: list[ShardBuildOutcome | None] = [None] * total
        for (start, stop), future in zip(spans, futures):
            outcomes[start:stop] = future.result()
        return outcomes
    finally:
        # Reached with pending futures only on the failure path (wait()
        # returns with every future done on success, where cancel() is a
        # no-op): this is the fail-fast half of the contract.
        for future in futures:
            future.cancel()


def run_shard_builds(
    specs, *, workers: int = 1, mode: str = "thread"
) -> list[ShardBuildOutcome]:
    """Run every spec on a worker pool; outcomes come back in spec order.

    ``mode`` must already be concrete (``"thread"`` or ``"process"`` —
    callers resolve ``"auto"`` via :func:`resolve_worker_mode`).  With
    one worker or one spec the pool is skipped entirely and the chunk
    runs inline, which is also the reference semantics the pooled paths
    must match bit-for-bit.
    """
    specs = list(specs)
    if mode not in ("thread", "process"):
        raise ReproError(
            f"run_shard_builds needs a concrete mode ('thread' or "
            f"'process'), got {mode!r}"
        )
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    if workers <= 1 or len(specs) <= 1:
        return build_spec_chunk(specs)
    spans = chunk_slices(len(specs), workers)
    chunks = [specs[start:stop] for start, stop in spans]
    if mode == "process":
        try:
            return _dispatch(_process_executor(workers), chunks, spans, len(specs))
        except BrokenProcessPool:
            _PROCESS_POOLS.evict(workers)
            raise
    executor = ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="shard-build"
    )
    try:
        return _dispatch(executor, chunks, spans, len(specs))
    finally:
        executor.shutdown(wait=True, cancel_futures=True)


def _worker_runtime_state() -> dict:
    """What a worker process sees of the parent's module state.

    Submitted to a pool by the test suite to pin down the bare-child
    contract: spawn children report ``faults``/``obs`` disabled and a
    pid distinct from the parent's, whatever the parent has enabled.
    """
    return {
        "pid": os.getpid(),
        "faults_enabled": faults.enabled(),
        "obs_enabled": obs.enabled(),
    }
