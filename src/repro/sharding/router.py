"""Routing range-query batches across shards.

Every inclusive range ``[lo, hi]`` decomposes against a
:class:`~repro.sharding.plan.ShardPlan` into at most **2 partial-shard
pieces** (the shards holding ``lo`` and ``hi``) plus a run of **k full
shards** in between.  The :class:`ShardRouter` turns that decomposition
into two answering modes over a
:class:`~repro.sharding.release.ShardedRelease`:

* :meth:`ShardRouter.answer` — the serving fast path.  Both endpoints of
  every query are resolved with one ``searchsorted`` over the shard
  boundaries, then dispatched *grouped by shard*: each shard present in
  the batch performs one vectorized gather into its own prefix-sum
  index.  Because each shard's index carries the cumulated totals of all
  preceding shards in its offsets (see
  :meth:`~repro.sharding.release.ShardedRelease.shard_index`), the full
  shards interior to a query cost O(1) — their mass is already inside
  the two gathered values — and the answer is a single subtraction.
  The gathered values are exactly the global prefix sums a monolithic
  release stores, so the answers are **bit-identical** to a monolithic
  release over the same leaves.
* :meth:`ShardRouter.answer_stitched` — the distributed reference.  Each
  piece is answered where it lives: partials by the owning shard's own
  ``range_sums`` (local prefix index), full-shard runs from the O(k)
  cumulated-totals table, and the per-query pieces are summed.  This is
  the arithmetic a multi-process deployment would perform (each shard
  answers locally, a coordinator adds); it matches :meth:`answer` up to
  float summation order and is asserted ``allclose`` in the tests.

:meth:`ShardRouter.decompose` exposes the piece structure itself for
planners, tests, and shard-at-a-time dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.exceptions import QueryError
from repro.serving.planner import QueryBatch
from repro.sharding.plan import ShardPlan
from repro.sharding.release import ShardedRelease

__all__ = ["ShardedQueryPlan", "ShardRouter"]


@dataclass(frozen=True, eq=False)
class ShardedQueryPlan:
    """The per-query shard decomposition of one batch.

    ``eq=False`` for the same reason as :class:`QueryBatch`: array fields
    make the generated equality ambiguous; plans compare by identity.
    """

    plan: ShardPlan
    batch: QueryBatch
    #: shard holding each query's lower endpoint
    lo_shards: np.ndarray
    #: shard holding each query's upper endpoint
    hi_shards: np.ndarray

    @property
    def full_spans(self) -> np.ndarray:
        """Number of interior shards each query covers completely."""
        return np.maximum(self.hi_shards - self.lo_shards - 1, 0)

    @property
    def num_pieces(self) -> np.ndarray:
        """Pieces per query: 1 within a shard, else 2 partials + full run."""
        same = self.lo_shards == self.hi_shards
        return np.where(same, 1, 2 + self.full_spans)

    def pieces(self, i: int) -> list[tuple[int, int, int, str]]:
        """Query ``i``'s pieces as ``(shard, lo_local, hi_local, kind)``.

        ``kind`` is ``"interior"`` (whole query inside one shard),
        ``"left-partial"``, ``"full"``, or ``"right-partial"``; local
        bounds are inclusive, relative to the shard start.
        """
        lo = int(self.batch.los[i])
        hi = int(self.batch.his[i])
        s_lo = int(self.lo_shards[i])
        s_hi = int(self.hi_shards[i])
        bounds = self.plan.boundaries
        if s_lo == s_hi:
            start = int(bounds[s_lo])
            return [(s_lo, lo - start, hi - start, "interior")]
        pieces = [
            (
                s_lo,
                lo - int(bounds[s_lo]),
                int(bounds[s_lo + 1]) - int(bounds[s_lo]) - 1,
                "left-partial",
            )
        ]
        for s in range(s_lo + 1, s_hi):
            pieces.append(
                (s, 0, int(bounds[s + 1]) - int(bounds[s]) - 1, "full")
            )
        pieces.append((s_hi, 0, hi - int(bounds[s_hi]), "right-partial"))
        return pieces


class ShardRouter:
    """Answers query batches against sharded releases.

    Stateless, like :class:`~repro.serving.planner.BatchQueryPlanner` —
    the router owns no data, only the routing strategies.
    """

    @staticmethod
    def _check(release: ShardedRelease, batch: QueryBatch) -> None:
        if batch.max_hi >= release.domain_size:
            raise QueryError(
                f"batch {batch.name!r} reaches bucket {batch.max_hi}, beyond "
                f"the sharded release domain of size {release.domain_size}"
            )

    def decompose(self, plan: ShardPlan, batch: QueryBatch) -> ShardedQueryPlan:
        """Resolve every query's endpoint shards (one searchsorted each)."""
        if batch.max_hi >= plan.domain_size:
            raise QueryError(
                f"batch {batch.name!r} reaches bucket {batch.max_hi}, beyond "
                f"the plan domain of size {plan.domain_size}"
            )
        return ShardedQueryPlan(
            plan=plan,
            batch=batch,
            lo_shards=plan.shard_of(batch.los),
            hi_shards=plan.shard_of(batch.his),
        )

    # -- serving fast path -----------------------------------------------------

    def answer(self, release: ShardedRelease, batch: QueryBatch) -> np.ndarray:
        """All answers via grouped per-shard gathers (the serving path).

        Bit-identical to a monolithic release over the same leaves: the
        per-shard indexes store global prefix values, so the grouped
        gathers produce exactly the two values the monolithic index
        would, and the final subtraction is the same operation.
        """
        self._check(release, batch)
        if len(batch) == 0:
            return np.zeros(0, dtype=np.float64)
        plan = release.plan
        # Prefix positions of both endpoint sets, routed to the shard
        # whose index view evaluates them.
        positions = np.concatenate((batch.los, batch.his + 1))
        shards = plan.shard_of_prefix(positions)
        gathered = np.empty(positions.size, dtype=np.float64)
        order = np.argsort(shards, kind="stable")
        sorted_shards = shards[order]
        sorted_positions = positions[order]
        group_starts = np.searchsorted(
            sorted_shards, np.arange(plan.num_shards + 1)
        )
        starts = plan.boundaries
        touched = np.unique(sorted_shards)
        for shard in touched:
            lo, hi = group_starts[shard], group_starts[shard + 1]
            index = release.shard_index(shard)
            local = sorted_positions[lo:hi] - starts[shard]
            gathered[order[lo:hi]] = index[local]
        if obs.enabled():
            registry = obs.registry()
            registry.counter(
                "repro_router_batches_total", "Batches routed across shards"
            ).inc()
            registry.counter(
                "repro_router_gather_groups_total",
                "Per-shard vectorized gathers performed",
            ).inc(int(touched.size))
        q = len(batch)
        return gathered[q:] - gathered[:q]

    # -- distributed reference -------------------------------------------------

    def answer_stitched(
        self, release: ShardedRelease, batch: QueryBatch
    ) -> np.ndarray:
        """Answers stitched piece by piece — the distributed semantics.

        Partial pieces are answered by the owning shard's *own* release
        (its local prefix-sum index, exactly what a remote shard server
        would compute), full-shard runs come from the O(k)
        cumulated-totals table, and each query sums its ≤ 3 terms.
        Differs from :meth:`answer` only in float summation order.
        """
        self._check(release, batch)
        if len(batch) == 0:
            return np.zeros(0, dtype=np.float64)
        plan = release.plan
        routed = self.decompose(plan, batch)
        lo_s, hi_s = routed.lo_shards, routed.hi_shards
        starts = plan.boundaries
        same = lo_s == hi_s
        # Left piece: [lo, min(hi, shard end)] inside the lo shard —
        # the whole query when it is interior to one shard.
        left_hi = np.minimum(batch.his, starts[lo_s + 1] - 1)
        left = self._local_sums(release, lo_s, batch.los, left_hi)
        # Full interior run, O(1) per query from cumulated shard totals.
        totals = release.boundary_prefix
        spanning = ~same
        full = np.zeros(len(batch), dtype=np.float64)
        full[spanning] = (
            totals[hi_s[spanning]] - totals[lo_s[spanning] + 1]
        )
        # Right piece: [shard start, hi] inside the hi shard.
        right = np.zeros(len(batch), dtype=np.float64)
        if np.any(spanning):
            right[spanning] = self._local_sums(
                release,
                hi_s[spanning],
                starts[hi_s[spanning]],
                batch.his[spanning],
            )
        return left + full + right

    @staticmethod
    def _local_sums(
        release: ShardedRelease, shards: np.ndarray, los: np.ndarray, his: np.ndarray
    ) -> np.ndarray:
        """Per-shard local range sums, dispatched one shard group at a time."""
        answers = np.empty(shards.size, dtype=np.float64)
        starts = release.plan.boundaries
        for shard in np.unique(shards):
            member = shards == shard
            local = release.shard_releases[shard]
            answers[member] = local.range_sums(
                los[member] - starts[shard],
                his[member] - starts[shard],
                assume_valid=True,
            )
        return answers
