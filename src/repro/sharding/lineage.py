"""Durable lineage of a sharded stream's partial-refresh epochs.

The sharded counterpart of :mod:`repro.streaming.lineage`: every
successful epoch appends one :class:`ShardEpochRecord` holding the epoch
index, the ε it charged, **which shards were re-released**, and the full
per-shard :class:`~repro.serving.release.ReleaseKey` set the stream
serves after the epoch (refreshed shards with fresh keys, untouched
shards carrying their previous keys forward).  The record therefore
answers both provenance questions a sharded stream raises:

* *what changed* — ``refreshed`` lists the shard ids rebuilt this epoch
  (the partial-refresh set), and
* *what is being served* — ``shard_keys`` is the complete identity of
  the assembled :class:`~repro.sharding.release.ShardedRelease`, which
  is how a restarted engine re-loads every shard from the store with
  zero additional ε.

Like the monolithic lineage, the file holds only release identities and
ε values (outputs of the accounting, never true counts), is rewritten
atomically after every append, and — summed — is the stream's
sequential-composition ledger.  Each epoch's charge covers *all* shards
it refreshed at once: the refreshed shards are disjoint, so the epoch is
εᵢ-DP by parallel composition, and epochs compose sequentially to Σ εᵢ.
:meth:`~repro.serving.store.ReleaseStore.prune` treats every key named
by any lineage file under ``<store>/streams/`` as protected, so retiring
old standalone artifacts can never break a stream's warm restart.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path

from repro import faults
from repro.exceptions import LineageConflictError, ReleaseStoreError, ReproError
from repro.faults.injector import CrashFault, FaultError
from repro.faults.retry import RetryPolicy, run_with_retry
from repro.serving.release import ReleaseKey
from repro.utils.io_atomic import atomic_write_json

__all__ = ["ShardEpochRecord", "ShardedLineage", "SHARDED_LINEAGE_FORMAT_VERSION"]

#: Version of the sharded lineage file schema; bump when it changes.
SHARDED_LINEAGE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ShardEpochRecord:
    """Provenance of one successfully built sharded epoch."""

    epoch: int
    epsilon: float
    #: shard ids re-released this epoch (sorted)
    refreshed: tuple[int, ...]
    #: the complete per-shard identity served after this epoch
    shard_keys: tuple[ReleaseKey, ...]
    rows_ingested: int
    total_rows: float

    @property
    def num_shards(self) -> int:
        return len(self.shard_keys)

    def to_json(self) -> dict:
        return {
            "epoch": self.epoch,
            "epsilon": self.epsilon,
            "refreshed": list(self.refreshed),
            "shards": [key.to_json() for key in self.shard_keys],
            "rows_ingested": self.rows_ingested,
            "total_rows": self.total_rows,
        }

    @classmethod
    def from_json(cls, entry: dict) -> "ShardEpochRecord":
        try:
            shards = entry["shards"]
            refreshed = entry["refreshed"]
            if not isinstance(shards, list) or not isinstance(refreshed, list):
                raise ValueError("'shards' and 'refreshed' must be lists")
            return cls(
                epoch=int(entry["epoch"]),
                epsilon=float(entry["epsilon"]),
                refreshed=tuple(int(s) for s in refreshed),
                shard_keys=tuple(ReleaseKey.from_json(k) for k in shards),
                rows_ingested=int(entry["rows_ingested"]),
                total_rows=float(entry["total_rows"]),
            )
        except (KeyError, TypeError, ValueError, ReproError) as error:
            raise ReleaseStoreError(
                f"malformed sharded epoch lineage entry: {error}"
            ) from error


class ShardedLineage:
    """An append-only, optionally file-backed sharded epoch ledger.

    Mirrors :class:`~repro.streaming.lineage.EpochLineage`: epochs must
    arrive contiguously, appends are atomic when file-backed, and a
    failed persist rolls the in-memory append back.
    """

    def __init__(self, path=None, *, retry: RetryPolicy | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.retry = retry
        self._lock = threading.Lock()
        self._records: list[ShardEpochRecord] = []
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text())
        except (OSError, ValueError) as error:
            raise ReleaseStoreError(
                f"cannot read sharded epoch lineage {self.path}: {error}"
            ) from error
        version = document.get("sharded_lineage_format_version")
        if not isinstance(version, int) or version > SHARDED_LINEAGE_FORMAT_VERSION:
            raise ReleaseStoreError(
                f"sharded epoch lineage {self.path} has format version "
                f"{version!r}, newer than the supported "
                f"{SHARDED_LINEAGE_FORMAT_VERSION}"
            )
        epochs = document.get("epochs")
        if not isinstance(epochs, list):
            raise ReleaseStoreError(
                f"sharded epoch lineage {self.path} has no epoch list"
            )
        records = [ShardEpochRecord.from_json(entry) for entry in epochs]
        for i, record in enumerate(records):
            if record.epoch != i:
                raise LineageConflictError(
                    f"sharded epoch lineage {self.path} is not contiguous: "
                    f"position {i} records epoch {record.epoch}"
                )
        self._records = records

    def _persist(self) -> None:
        document = {
            "sharded_lineage_format_version": SHARDED_LINEAGE_FORMAT_VERSION,
            "epochs": [record.to_json() for record in self._records],
        }

        def write() -> None:
            if faults.enabled():
                faults.check("lineage.append")
            atomic_write_json(self.path, document)

        if self.retry is None:
            write()
        else:
            run_with_retry(
                self.retry, write, describe=f"persist lineage {self.path.name}"
            )

    # -- appends ---------------------------------------------------------------

    def append(self, record: ShardEpochRecord) -> None:
        """Record one built epoch; epochs must arrive in order, gap-free."""
        with self._lock:
            expected = len(self._records)
            if record.epoch != expected:
                raise LineageConflictError(
                    f"epoch {record.epoch} appended out of order; lineage "
                    f"expects epoch {expected} next"
                )
            self._records.append(record)
            if self.path is not None:
                try:
                    self._persist()
                except CrashFault:
                    # Simulated process death: roll the in-memory append
                    # back so a surviving object matches the on-disk
                    # ledger, which still ends at the previous epoch.
                    self._records.pop()
                    raise
                except (OSError, FaultError) as error:
                    self._records.pop()
                    raise ReleaseStoreError(
                        f"cannot persist sharded epoch lineage to "
                        f"{self.path}: {error}"
                    ) from error

    # -- introspection ---------------------------------------------------------

    @property
    def records(self) -> list[ShardEpochRecord]:
        """All epoch records so far, oldest first (copy)."""
        with self._lock:
            return list(self._records)

    @property
    def latest(self) -> ShardEpochRecord | None:
        with self._lock:
            return self._records[-1] if self._records else None

    @property
    def next_epoch(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def spent_epsilon(self) -> float:
        """Σ εᵢ over recorded epochs, summed left to right (exact)."""
        total = 0.0
        for record in self.records:
            total += record.epsilon
        return total

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardedLineage(epochs={len(self)}, path={str(self.path)!r})"
