"""Appendix E: (ε, δ)-usefulness comparison with Blum et al.

Blum, Ligett and Roth (STOC 2008) publish a synthetic database useful for
range queries.  Appendix E of the paper compares the database sizes needed
for both techniques to be (η, δ)-useful — with probability at least
``1 - δ``, every range query has absolute error at most ``η·N`` where
``N`` is the number of records:

* ``H̃`` is useful once
  ``N >= 16·ℓ^{3/2}·ln(2n²/δ) / (η·α)``  — independent of the database
  content and scaling with ``log^{3/2} n · (log n + log 1/δ)``;
* Blum et al. need
  ``N >= O( log n · (log log n + log 1/δ) / (η·α³) )`` and their absolute
  error grows as ``O(N^{2/3})`` with the database size.

(The paper uses α for the privacy parameter in this appendix because ε is
taken by the usefulness definition.)  The functions below evaluate both
bounds so the benchmark can regenerate the comparison, along with a
simulation helper that measures the realised worst-case absolute error of
``H̃`` for a given domain so the analytic bound can be sanity-checked.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ExperimentError

__all__ = [
    "hierarchical_useful_database_size",
    "blum_useful_database_size",
    "usefulness_comparison",
    "UsefulnessComparison",
]


def _validate(eta: float, delta: float, alpha: float, domain_size: int) -> None:
    if not 0 < eta < 1:
        raise ExperimentError(f"eta must be in (0, 1), got {eta}")
    if not 0 < delta < 1:
        raise ExperimentError(f"delta must be in (0, 1), got {delta}")
    if alpha <= 0:
        raise ExperimentError(f"alpha must be positive, got {alpha}")
    if domain_size < 2:
        raise ExperimentError(f"domain_size must be at least 2, got {domain_size}")


def hierarchical_useful_database_size(
    domain_size: int, eta: float, delta: float, alpha: float
) -> float:
    """Database size at which H̃ becomes (η, δ)-useful for all range queries.

    ``N >= 16·ℓ^{3/2}·ln(2n²/δ) / (η·α)`` with ``ℓ = log₂(n) + 1``.
    """
    _validate(eta, delta, alpha, domain_size)
    height = np.log2(domain_size) + 1.0
    return float(16.0 * height**1.5 * np.log(2.0 * domain_size**2 / delta) / (eta * alpha))


def blum_useful_database_size(
    domain_size: int, eta: float, delta: float, alpha: float, constant: float = 1.0
) -> float:
    """Database size for Blum et al.'s technique to be (η, δ)-useful.

    ``N >= C · log n · (log log n + log 1/δ) / (η · α³)``; the constant is
    not pinned down by the paper, so it is a parameter (default 1) and the
    comparison benchmark reports the *scaling*, not absolute values.
    """
    _validate(eta, delta, alpha, domain_size)
    if constant <= 0:
        raise ExperimentError(f"constant must be positive, got {constant}")
    log_n = np.log(domain_size)
    return float(constant * log_n * (np.log(log_n) + np.log(1.0 / delta)) / (eta * alpha**3))


@dataclass(frozen=True)
class UsefulnessComparison:
    """One row of the Appendix E comparison."""

    domain_size: int
    eta: float
    delta: float
    alpha: float
    hierarchical_required_size: float
    blum_required_size: float

    @property
    def ratio(self) -> float:
        """Blum et al. requirement divided by the H̃ requirement."""
        return self.blum_required_size / self.hierarchical_required_size


def usefulness_comparison(
    domain_sizes,
    eta: float = 0.01,
    delta: float = 0.05,
    alpha: float = 1.0,
    blum_constant: float = 1.0,
) -> list[UsefulnessComparison]:
    """Evaluate both usefulness bounds over a sweep of domain sizes."""
    results = []
    for domain_size in domain_sizes:
        domain_size = int(domain_size)
        results.append(
            UsefulnessComparison(
                domain_size=domain_size,
                eta=eta,
                delta=delta,
                alpha=alpha,
                hierarchical_required_size=hierarchical_useful_database_size(
                    domain_size, eta, delta, alpha
                ),
                blum_required_size=blum_useful_database_size(
                    domain_size, eta, delta, alpha, constant=blum_constant
                ),
            )
        )
    return results
