"""Analytic error formulas and bounds proved in the paper.

These functions turn the paper's utility analysis into executable code so
the benchmarks can plot measured error against the corresponding formula
or bound:

* ``error(L̃) = 2n/ε²`` and ``error(S̃) = 2n/ε²`` (Section 2.1 / proof of
  Theorem 2) — exact expectations for the Laplace mechanism.
* ``error(L̃_q) = 2·|q|/ε²`` for a range query of length ``|q|``.
* ``error(H̃_q) <= 2·ℓ²/ε² · (number of subtrees)``, with the number of
  subtrees at most ``2(k-1)`` per level (Section 4.2).
* Theorem 2: ``error(S̄) <= Σ_i (c₁·log³ nᵢ + c₂)/ε²`` over the runs of
  duplicate values — the bound is reported up to the unspecified
  constants, so it is exposed as a *shape* ``Σ_i log³(nᵢ)/ε²`` plus a
  helper that fits the constants empirically.
* Theorem 4(iv): the improvement factor ``(2(ℓ-1)(k-1) - k)/3`` of ``H̄``
  over ``H̃`` on the paper's worst-case query.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ExperimentError
from repro.utils.arrays import as_float_vector

__all__ = [
    "error_identity_laplace",
    "error_sorted_laplace",
    "error_identity_laplace_range",
    "error_hierarchical_laplace_range",
    "hierarchical_leaf_variance",
    "theorem2_shape",
    "theorem2_bound",
    "theorem4_improvement_factor",
    "run_lengths",
]


def _check_epsilon(epsilon: float) -> float:
    if epsilon <= 0:
        raise ExperimentError(f"epsilon must be positive, got {epsilon}")
    return float(epsilon)


def error_identity_laplace(domain_size: int, epsilon: float) -> float:
    """Exact ``error(L̃) = 2n/ε²`` for the unit-count query under Laplace noise."""
    if domain_size <= 0:
        raise ExperimentError(f"domain_size must be positive, got {domain_size}")
    epsilon = _check_epsilon(epsilon)
    return 2.0 * domain_size / epsilon**2


def error_sorted_laplace(domain_size: int, epsilon: float) -> float:
    """Exact ``error(S̃) = 2n/ε²``: the sorted query has the same noise as L̃."""
    return error_identity_laplace(domain_size, epsilon)


def error_identity_laplace_range(range_length: int, epsilon: float) -> float:
    """Expected squared error of a range estimate from L̃: ``2·|q|/ε²``."""
    if range_length <= 0:
        raise ExperimentError(f"range_length must be positive, got {range_length}")
    epsilon = _check_epsilon(epsilon)
    return 2.0 * range_length / epsilon**2


def hierarchical_leaf_variance(height: int, epsilon: float) -> float:
    """Variance of a single noisy node count in H̃: ``2·ℓ²/ε²``."""
    if height <= 0:
        raise ExperimentError(f"height must be positive, got {height}")
    epsilon = _check_epsilon(epsilon)
    return 2.0 * height**2 / epsilon**2


def error_hierarchical_laplace_range(
    height: int, epsilon: float, num_subtrees: int | None = None, branching: int = 2
) -> float:
    """Expected squared error of a range estimate from H̃.

    Each of the summed subtree roots contributes ``2ℓ²/ε²``; if the exact
    number of subtrees in the decomposition is unknown the worst case
    ``2(k-1)`` per level below the root is used.
    """
    if branching < 2:
        raise ExperimentError(f"branching must be >= 2, got {branching}")
    if num_subtrees is None:
        num_subtrees = 2 * (branching - 1) * max(1, height - 1)
    if num_subtrees <= 0:
        raise ExperimentError(f"num_subtrees must be positive, got {num_subtrees}")
    return num_subtrees * hierarchical_leaf_variance(height, epsilon)


def run_lengths(sorted_counts) -> np.ndarray:
    """Lengths ``n₁, ..., n_d`` of the runs of equal values in a sorted sequence."""
    sorted_counts = as_float_vector(sorted_counts, name="sorted_counts")
    if np.any(np.diff(sorted_counts) < 0):
        raise ExperimentError("input must be sorted in non-decreasing order")
    change_points = np.flatnonzero(np.diff(sorted_counts) != 0)
    boundaries = np.concatenate(([0], change_points + 1, [sorted_counts.size]))
    return np.diff(boundaries).astype(np.int64)


def theorem2_shape(sorted_counts, epsilon: float) -> float:
    """The Theorem 2 bound's shape: ``Σ_i (log³ nᵢ + 1) / ε²``.

    This is :func:`theorem2_bound` with both unspecified constants set to
    one; useful for comparing how the bound scales across datasets without
    committing to fitted constants.
    """
    return theorem2_bound(sorted_counts, epsilon, c1=1.0, c2=1.0)


def theorem2_bound(
    sorted_counts, epsilon: float, c1: float = 1.0, c2: float = 1.0
) -> float:
    """The Theorem 2 bound ``Σ_i (c₁·log³ nᵢ + c₂)/ε²`` with explicit constants."""
    epsilon = _check_epsilon(epsilon)
    if c1 < 0 or c2 < 0:
        raise ExperimentError("constants c1 and c2 must be non-negative")
    lengths = run_lengths(sorted_counts)
    logs = np.log(np.maximum(lengths.astype(np.float64), 1.0))
    return float(np.sum(c1 * logs**3 + c2) / epsilon**2)


def theorem4_improvement_factor(height: int, branching: int = 2) -> float:
    """Theorem 4(iv): factor by which H̄ beats H̃ on the worst-case query.

    ``error(H̄_q) <= 3/(2(ℓ-1)(k-1) - k) · error(H̃_q)``, i.e. the
    improvement factor is ``(2(ℓ-1)(k-1) - k)/3``.  For the height-16
    binary tree used in the paper's example this is 9.33.
    """
    if height < 2:
        raise ExperimentError(f"height must be at least 2, got {height}")
    if branching < 2:
        raise ExperimentError(f"branching must be >= 2, got {branching}")
    numerator = 2 * (height - 1) * (branching - 1) - branching
    if numerator <= 0:
        raise ExperimentError(
            f"improvement factor undefined for height={height}, branching={branching}"
        )
    return numerator / 3.0
