"""Empirical error metrics (Definition 2.3 and the Section 5 protocol).

The paper measures accuracy as squared error: for a randomized sequence
``Q̃`` with true answer ``Q(I)``, ``error(Q̃) = Σ_i E(Q̃[i] - Q[i])²``.
Experiments estimate the expectation by averaging over repeated samples of
the mechanism.

The Monte Carlo aggregators accept their samples in two forms: an iterable
of 1-D sample vectors (the legacy scalar protocol), or a single
``(trials, n)`` matrix as produced by the trial-batched estimator APIs
(``estimate_many`` / ``fit_many``), in which case the average is one
matrix expression instead of a per-sample Python loop.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ExperimentError
from repro.utils.arrays import as_float_vector

__all__ = [
    "squared_error",
    "mean_squared_error",
    "total_squared_error_per_trial",
    "average_total_squared_error",
    "per_position_squared_error",
]


def squared_error(estimate, truth) -> float:
    """Total squared error ``||estimate - truth||²`` of one sample."""
    estimate = as_float_vector(estimate, name="estimate")
    truth = as_float_vector(truth, name="truth")
    if estimate.size != truth.size:
        raise ExperimentError(
            f"estimate has length {estimate.size}, truth has length {truth.size}"
        )
    diff = estimate - truth
    return float(np.dot(diff, diff))


def mean_squared_error(estimate, truth) -> float:
    """Per-position mean squared error of one sample."""
    estimate = as_float_vector(estimate, name="estimate")
    return squared_error(estimate, truth) / estimate.size


def _check_trial_matrix(estimates: np.ndarray, truth: np.ndarray) -> np.ndarray:
    if estimates.shape[1] != truth.size:
        raise ExperimentError(
            f"samples have length {estimates.shape[1]}, truth has length {truth.size}"
        )
    if estimates.shape[0] == 0:
        raise ExperimentError("at least one sample is required")
    return estimates


def total_squared_error_per_trial(estimates, truth) -> np.ndarray:
    """``||estimates[t] - truth||²`` for every row of a ``(trials, n)`` matrix."""
    estimates = np.asarray(estimates, dtype=np.float64)
    if estimates.ndim != 2:
        raise ExperimentError(
            f"expected a (trials, n) sample matrix, got shape {estimates.shape}"
        )
    truth = as_float_vector(truth, name="truth")
    _check_trial_matrix(estimates, truth)
    diff = estimates - truth[np.newaxis, :]
    return np.einsum("ij,ij->i", diff, diff)


def average_total_squared_error(estimates, truth) -> float:
    """Average of the total squared error over repeated samples.

    ``estimates`` is either an iterable of sample vectors or a
    ``(trials, n)`` matrix of stacked samples; this is the Monte-Carlo
    estimate of ``error(Q̃)``.
    """
    if isinstance(estimates, np.ndarray) and estimates.ndim == 2:
        truth = as_float_vector(truth, name="truth")
        return float(total_squared_error_per_trial(estimates, truth).mean())
    totals = [squared_error(sample, truth) for sample in estimates]
    if not totals:
        raise ExperimentError("at least one sample is required")
    return float(np.mean(totals))


def per_position_squared_error(estimates, truth) -> np.ndarray:
    """Average squared error at each position over repeated samples.

    This is the Figure 7 quantity: how much error remains at each point of
    the sequence after averaging over noise draws.  Accepts an iterable of
    sample vectors or a stacked ``(trials, n)`` matrix.
    """
    truth = as_float_vector(truth, name="truth")
    if isinstance(estimates, np.ndarray) and estimates.ndim == 2:
        estimates = np.asarray(estimates, dtype=np.float64)
        _check_trial_matrix(estimates, truth)
        diff = estimates - truth[np.newaxis, :]
        return np.mean(diff * diff, axis=0)
    accumulator = np.zeros_like(truth)
    count = 0
    for sample in estimates:
        sample = as_float_vector(sample, name="estimate")
        if sample.size != truth.size:
            raise ExperimentError(
                f"sample has length {sample.size}, truth has length {truth.size}"
            )
        accumulator += (sample - truth) ** 2
        count += 1
    if count == 0:
        raise ExperimentError("at least one sample is required")
    return accumulator / count
