"""Empirical error metrics (Definition 2.3 and the Section 5 protocol).

The paper measures accuracy as squared error: for a randomized sequence
``Q̃`` with true answer ``Q(I)``, ``error(Q̃) = Σ_i E(Q̃[i] - Q[i])²``.
Experiments estimate the expectation by averaging over repeated samples of
the mechanism.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ExperimentError
from repro.utils.arrays import as_float_vector

__all__ = [
    "squared_error",
    "mean_squared_error",
    "average_total_squared_error",
    "per_position_squared_error",
]


def squared_error(estimate, truth) -> float:
    """Total squared error ``||estimate - truth||²`` of one sample."""
    estimate = as_float_vector(estimate, name="estimate")
    truth = as_float_vector(truth, name="truth")
    if estimate.size != truth.size:
        raise ExperimentError(
            f"estimate has length {estimate.size}, truth has length {truth.size}"
        )
    diff = estimate - truth
    return float(np.dot(diff, diff))


def mean_squared_error(estimate, truth) -> float:
    """Per-position mean squared error of one sample."""
    estimate = as_float_vector(estimate, name="estimate")
    return squared_error(estimate, truth) / estimate.size


def average_total_squared_error(estimates, truth) -> float:
    """Average of the total squared error over repeated samples.

    ``estimates`` is an iterable of sample vectors (e.g. one per noise
    draw); this is the Monte-Carlo estimate of ``error(Q̃)``.
    """
    totals = [squared_error(sample, truth) for sample in estimates]
    if not totals:
        raise ExperimentError("at least one sample is required")
    return float(np.mean(totals))


def per_position_squared_error(estimates, truth) -> np.ndarray:
    """Average squared error at each position over repeated samples.

    This is the Figure 7 quantity: how much error remains at each point of
    the sequence after averaging over noise draws.
    """
    truth = as_float_vector(truth, name="truth")
    accumulator = np.zeros_like(truth)
    count = 0
    for sample in estimates:
        sample = as_float_vector(sample, name="estimate")
        if sample.size != truth.size:
            raise ExperimentError(
                f"sample has length {sample.size}, truth has length {truth.size}"
            )
        accumulator += (sample - truth) ** 2
        count += 1
    if count == 0:
        raise ExperimentError("at least one sample is required")
    return accumulator / count
