"""Plain-text and CSV rendering of experiment results.

The benchmark harness runs in headless environments, so figures are
reported as aligned text tables (printed to stdout and captured in
``bench_output.txt``) and optionally as CSV files under ``results/`` for
downstream plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.exceptions import ExperimentError

__all__ = ["render_table", "write_csv", "format_number"]


def format_number(value) -> str:
    """Consistent numeric formatting for tables (compact, 4 significant digits)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int,)):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping], columns: Sequence[str] | None = None, title: str | None = None
) -> str:
    """Render a list of dict rows as an aligned, pipe-separated text table."""
    rows = list(rows)
    if not rows:
        raise ExperimentError("cannot render an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    for row in rows:
        missing = [column for column in columns if column not in row]
        if missing:
            raise ExperimentError(f"row {row!r} is missing columns {missing}")
    formatted = [[format_number(row[column]) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(cells[i]) for cells in formatted))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for cells in formatted:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(cells, widths)))
    return "\n".join(lines)


def write_csv(rows: Iterable[Mapping], path: str | Path, columns: Sequence[str] | None = None) -> Path:
    """Write dict rows to a CSV file, creating parent directories as needed."""
    rows = list(rows)
    if not rows:
        raise ExperimentError("cannot write an empty CSV")
    if columns is None:
        columns = list(rows[0].keys())
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({column: row.get(column, "") for column in columns})
    return path
