"""Error metrics, theoretical bounds, and experiment runners.

* :mod:`repro.analysis.error` — empirical error metrics (squared error,
  mean squared error over trials, per-position error profiles).
* :mod:`repro.analysis.theory` — the analytic error formulas and bounds
  proved in the paper (error of L̃/S̃/H̃, the Theorem 2 bound for S̄, the
  Theorem 4 guarantees for H̄).
* :mod:`repro.analysis.blum` — the Appendix E (ε, δ)-usefulness comparison
  against Blum et al.'s equi-depth histogram.
* :mod:`repro.analysis.experiments` — runners that regenerate every figure
  of the evaluation section as structured results.
* :mod:`repro.analysis.tables` — plain-text / CSV rendering of results for
  headless environments.
"""

from repro.analysis.error import (
    squared_error,
    mean_squared_error,
    total_squared_error_per_trial,
    average_total_squared_error,
    per_position_squared_error,
)
from repro.analysis.theory import (
    error_identity_laplace,
    error_sorted_laplace,
    error_hierarchical_laplace_range,
    error_identity_laplace_range,
    theorem2_bound,
    theorem4_improvement_factor,
    hierarchical_leaf_variance,
)
from repro.analysis.blum import (
    blum_useful_database_size,
    hierarchical_useful_database_size,
    usefulness_comparison,
)
from repro.analysis.experiments import (
    UnattributedComparison,
    UniversalComparison,
    run_unattributed_comparison,
    run_universal_comparison,
    per_position_error_profile,
    figure3_demo,
)
from repro.analysis.tables import render_table, write_csv

__all__ = [
    "squared_error",
    "mean_squared_error",
    "total_squared_error_per_trial",
    "average_total_squared_error",
    "per_position_squared_error",
    "error_identity_laplace",
    "error_sorted_laplace",
    "error_hierarchical_laplace_range",
    "error_identity_laplace_range",
    "theorem2_bound",
    "theorem4_improvement_factor",
    "hierarchical_leaf_variance",
    "blum_useful_database_size",
    "hierarchical_useful_database_size",
    "usefulness_comparison",
    "UnattributedComparison",
    "UniversalComparison",
    "run_unattributed_comparison",
    "run_universal_comparison",
    "per_position_error_profile",
    "figure3_demo",
    "render_table",
    "write_csv",
]
