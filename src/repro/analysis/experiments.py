"""Experiment runners that regenerate the figures of the evaluation section.

Each runner is pure computation over count vectors and estimator objects:
the benchmarks in ``benchmarks/`` supply the datasets and the paper-scale
parameters, the test suite supplies small ones, and both get structured
results (dataclasses) that can be rendered as text tables or CSV.

Every Monte Carlo cell of the experiment grid runs through the
trial-batched estimator APIs (``estimate_many`` / ``fit_many``): the
``trials`` noise draws are one RNG call, and the inference passes, the
workload answering, and the error aggregation are each a handful of
matrix operations instead of nested Python loops.  Each cell derives one
child generator from the parent stream, so a fixed top-level seed is
fully reproducible; callers that need releases bit-for-bit equal to a
loop of scalar calls can pass the batched APIs an explicit per-trial seed
schedule instead (see :func:`repro.utils.random.trial_streams`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.error import (
    average_total_squared_error,
    per_position_squared_error,
)
from repro.estimators.base import RangeQueryEstimator, UnattributedEstimator
from repro.exceptions import ExperimentError
from repro.inference.isotonic import isotonic_regression
from repro.queries.sorted import SortedCountQuery
from repro.queries.workload import RangeWorkload
from repro.utils.arrays import as_float_vector
from repro.utils.random import as_generator, spawn_generators

__all__ = [
    "UnattributedComparison",
    "UniversalComparison",
    "run_unattributed_comparison",
    "run_universal_comparison",
    "per_position_error_profile",
    "figure3_demo",
    "Figure3Demo",
]


# ---------------------------------------------------------------------------
# Figure 5: unattributed histograms
# ---------------------------------------------------------------------------


@dataclass
class UnattributedComparison:
    """Results of the Figure 5 style comparison on one dataset.

    ``errors[(estimator_name, epsilon)]`` is the average total squared
    error over the trials.
    """

    dataset: str
    trials: int
    errors: dict[tuple[str, float], float] = field(default_factory=dict)

    def error(self, estimator_name: str, epsilon: float) -> float:
        """Average total squared error for one estimator and ε."""
        return self.errors[(estimator_name, float(epsilon))]

    def improvement(self, baseline: str, improved: str, epsilon: float) -> float:
        """Error ratio baseline/improved (``> 1`` means ``improved`` wins)."""
        return self.error(baseline, epsilon) / self.error(improved, epsilon)

    def to_rows(self) -> list[dict]:
        """Rows suitable for table rendering / CSV export."""
        return [
            {
                "dataset": self.dataset,
                "estimator": name,
                "epsilon": epsilon,
                "avg_squared_error": error,
            }
            for (name, epsilon), error in sorted(self.errors.items())
        ]


def run_unattributed_comparison(
    counts,
    estimators: list[UnattributedEstimator],
    epsilons,
    trials: int = 50,
    rng: np.random.Generator | int | None = None,
    dataset: str = "dataset",
) -> UnattributedComparison:
    """Average squared error of unattributed-histogram estimators.

    Reproduces the protocol of Section 5.1: for each ε, draw ``trials``
    independent noisy answers and average the total squared error against
    the true sorted sequence.
    """
    counts = as_float_vector(counts, name="counts")
    if trials <= 0:
        raise ExperimentError(f"trials must be positive, got {trials}")
    if not estimators:
        raise ExperimentError("at least one estimator is required")
    truth = np.sort(counts)
    comparison = UnattributedComparison(dataset=dataset, trials=trials)
    parent = as_generator(rng)
    for epsilon in epsilons:
        epsilon = float(epsilon)
        for estimator in estimators:
            (stream,) = spawn_generators(parent, 1)
            samples = estimator.estimate_many(counts, epsilon, trials, rng=stream)
            comparison.errors[(estimator.name, epsilon)] = average_total_squared_error(
                samples, truth
            )
    return comparison


# ---------------------------------------------------------------------------
# Figure 6: universal histograms / range queries
# ---------------------------------------------------------------------------


@dataclass
class UniversalComparison:
    """Results of the Figure 6 style comparison on one dataset.

    ``errors[(estimator_name, epsilon, range_size)]`` is the average
    squared error of a single range query of that size.
    """

    dataset: str
    trials: int
    queries_per_size: int
    errors: dict[tuple[str, float, int], float] = field(default_factory=dict)

    def error(self, estimator_name: str, epsilon: float, range_size: int) -> float:
        """Average squared error per query for one configuration."""
        return self.errors[(estimator_name, float(epsilon), int(range_size))]

    def series(self, estimator_name: str, epsilon: float) -> list[tuple[int, float]]:
        """The (range size, error) series for one estimator and ε."""
        return sorted(
            (size, error)
            for (name, eps, size), error in self.errors.items()
            if name == estimator_name and eps == float(epsilon)
        )

    def crossover_size(
        self, first: str, second: str, epsilon: float
    ) -> int | None:
        """Smallest range size at which ``second`` has lower error than ``first``.

        Returns ``None`` if no crossover occurs; used to check the paper's
        observation that H̃ overtakes L̃ around range size ~2000.
        """
        first_series = dict(self.series(first, epsilon))
        second_series = dict(self.series(second, epsilon))
        for size in sorted(first_series):
            if size in second_series and second_series[size] < first_series[size]:
                return size
        return None

    def to_rows(self) -> list[dict]:
        """Rows suitable for table rendering / CSV export."""
        return [
            {
                "dataset": self.dataset,
                "estimator": name,
                "epsilon": epsilon,
                "range_size": size,
                "avg_squared_error": error,
            }
            for (name, epsilon, size), error in sorted(self.errors.items())
        ]


def run_universal_comparison(
    counts,
    estimators: list[RangeQueryEstimator],
    epsilons,
    range_sizes,
    trials: int = 50,
    queries_per_size: int = 1000,
    rng: np.random.Generator | int | None = None,
    dataset: str = "dataset",
) -> UniversalComparison:
    """Average range-query error of universal-histogram estimators.

    Reproduces the protocol of Section 5.2: for each ε, each trial draws a
    fresh noisy release; for each range size, a fixed workload of random
    ranges is evaluated against every release, and the squared errors are
    averaged over both queries and trials.
    """
    counts = as_float_vector(counts, name="counts")
    if trials <= 0:
        raise ExperimentError(f"trials must be positive, got {trials}")
    if queries_per_size <= 0:
        raise ExperimentError(
            f"queries_per_size must be positive, got {queries_per_size}"
        )
    if not estimators:
        raise ExperimentError("at least one estimator is required")
    parent = as_generator(rng)
    workloads = RangeWorkload.size_sweep(
        counts.size, [int(s) for s in range_sizes], queries_per_size, rng=parent
    )
    true_answers = {
        size: workload.true_answers(counts) for size, workload in workloads.items()
    }
    comparison = UniversalComparison(
        dataset=dataset, trials=trials, queries_per_size=queries_per_size
    )
    for epsilon in epsilons:
        epsilon = float(epsilon)
        for estimator in estimators:
            (stream,) = spawn_generators(parent, 1)
            batch = estimator.fit_many(counts, epsilon, trials, rng=stream)
            for size, workload in workloads.items():
                estimates = batch.answer_workload(workload)
                comparison.errors[(estimator.name, epsilon, size)] = float(
                    np.mean((estimates - true_answers[size][np.newaxis, :]) ** 2)
                )
    return comparison


# ---------------------------------------------------------------------------
# Figure 7: per-position error profile
# ---------------------------------------------------------------------------


def per_position_error_profile(
    counts,
    estimator: UnattributedEstimator,
    epsilon: float,
    trials: int = 200,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Average squared error at each position of the sorted sequence.

    This is the Figure 7 quantity for one estimator: run the estimator
    ``trials`` times and average ``(estimate[i] - truth[i])²`` per
    position ``i``.
    """
    counts = as_float_vector(counts, name="counts")
    if trials <= 0:
        raise ExperimentError(f"trials must be positive, got {trials}")
    truth = np.sort(counts)
    (stream,) = spawn_generators(rng, 1)
    samples = estimator.estimate_many(counts, epsilon, trials, rng=stream)
    return per_position_squared_error(samples, truth)


# ---------------------------------------------------------------------------
# Figure 3: illustrative single sample
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure3Demo:
    """One sampled illustration of constrained inference (Figure 3)."""

    truth: np.ndarray
    noisy: np.ndarray
    inferred: np.ndarray
    epsilon: float

    @property
    def noisy_error(self) -> float:
        """Total squared error of the raw noisy answer."""
        return float(np.sum((self.noisy - self.truth) ** 2))

    @property
    def inferred_error(self) -> float:
        """Total squared error after constrained inference."""
        return float(np.sum((self.inferred - self.truth) ** 2))


def figure3_demo(
    epsilon: float = 1.0,
    uniform_length: int = 20,
    uniform_value: float = 10.0,
    outliers=(17.0, 18.0, 19.0, 20.0, 21.0),
    rng: np.random.Generator | int | None = None,
) -> Figure3Demo:
    """Regenerate the Figure 3 illustration.

    The true sequence has a long uniform run followed by a few distinct
    larger counts; one noisy sample is drawn and the isotonic fit is
    computed.  The demo shows the fit hugging the truth on the uniform run
    while following the noisy value where the count is unique.
    """
    if uniform_length <= 0:
        raise ExperimentError(f"uniform_length must be positive, got {uniform_length}")
    truth = np.concatenate(
        (np.full(uniform_length, float(uniform_value)), np.asarray(outliers, dtype=np.float64))
    )
    truth = np.sort(truth)
    query = SortedCountQuery(truth.size)
    noisy = query.randomize(truth, epsilon, rng=rng).values
    inferred = isotonic_regression(noisy)
    return Figure3Demo(truth=truth, noisy=noisy, inferred=inferred, epsilon=float(epsilon))
