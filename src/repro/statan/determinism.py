"""DET001 — bit-equality kernels stay clock-free and seed-disciplined.

The repo's equivalence suites (batched-vs-scalar, sharded-vs-monolithic,
store round-trips) all assert *bit-identical* outputs under a shared
seed schedule.  That property survives only while the kernel modules —
the samplers, estimators, inference, query evaluation, and release
construction — draw every random number from an explicitly seeded
generator and never read a wall clock.  This pass bans, inside the
manifested kernel modules:

* ``time.time()`` / ``time.time_ns()`` (wall clocks; ``perf_counter``
  does not appear in kernels either, but only value-affecting calls are
  banned),
* any use of the stdlib ``random`` module (global, unseedable-per-call
  state),
* NumPy *global-state* randomness (``np.random.rand`` …,
  ``np.random.seed``) and **unseeded** ``np.random.default_rng()`` —
  seeded ``default_rng(seed)`` and the ``SeedSequence``/``Generator``
  machinery are exactly what kernels should use.

The manifest is a tuple of module-name prefixes; modules outside it
(data synthesis, benchmarks, the CLI's timing paths) may use clocks
freely.  The one sanctioned exception inside the manifest —
``as_generator(None)``'s fresh-entropy fallback in
:mod:`repro.utils.random` — carries an inline pragma naming its
contract.
"""

from __future__ import annotations

import ast

from repro.statan.core import Finding, LintPass, Program, register

__all__ = ["DeterminismPass", "KERNEL_MODULE_PREFIXES"]

#: The bit-equality kernel manifest: module-name prefixes whose code must
#: be deterministic given (inputs, seed).
KERNEL_MODULE_PREFIXES = (
    "repro.privacy.laplace",
    "repro.privacy.geometric",
    "repro.privacy.mechanism",
    "repro.queries",
    "repro.inference",
    "repro.estimators",
    "repro.db.histogram",
    "repro.utils.random",
    "repro.utils.arrays",
    "repro.accuracy.models",
    "repro.serving.release",
    "repro.sharding.release",
    "repro.sharding.plan",
    "repro.sharding.router",
)

_WALL_CLOCKS = frozenset({"time.time", "time.time_ns"})
_NP_ROOTS = frozenset({"np", "numpy"})


def _dotted(func: ast.AST) -> list[str]:
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


@register
class DeterminismPass(LintPass):
    """No wall clocks, stdlib random, or unseeded np.random in kernels."""

    name = "determinism"
    codes = ("DET001",)
    description = (
        "kernel modules in the bit-equality manifest use no time.time(), "
        "stdlib random, or unseeded/global numpy randomness"
    )

    def run(self, program: Program) -> list[Finding]:
        findings: list[Finding] = []
        for module in program.modules:
            if not module.name.startswith(KERNEL_MODULE_PREFIXES):
                continue
            imported_random_names = self._from_random_imports(module)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                parts = _dotted(node.func)
                if not parts:
                    continue
                dotted = ".".join(parts)
                message = None
                if dotted in _WALL_CLOCKS:
                    message = (
                        f"{dotted}() reads the wall clock inside a "
                        f"bit-equality kernel module"
                    )
                elif parts[0] == "random":
                    message = (
                        f"stdlib random call {dotted}() uses global RNG "
                        f"state inside a bit-equality kernel module"
                    )
                elif len(parts) == 1 and parts[0] in imported_random_names:
                    message = (
                        f"{dotted}() (imported from stdlib random) uses "
                        f"global RNG state inside a bit-equality kernel "
                        f"module"
                    )
                elif (
                    len(parts) >= 3
                    and parts[0] in _NP_ROOTS
                    and parts[1] == "random"
                ):
                    if parts[2] == "default_rng":
                        if not node.args and not node.keywords:
                            message = (
                                "np.random.default_rng() without a seed is "
                                "nondeterministic; pass an explicit seed or "
                                "SeedSequence in kernel modules"
                            )
                    elif parts[2] not in {"Generator", "SeedSequence", "PCG64"}:
                        message = (
                            f"{dotted}() uses numpy's global RNG state; "
                            f"kernels must draw from an explicitly seeded "
                            f"Generator"
                        )
                if message is not None:
                    findings.append(
                        self.finding(module, node, "DET001", message)
                    )
        return findings

    @staticmethod
    def _from_random_imports(module) -> set[str]:
        """Names bound by ``from random import ...`` in ``module``."""
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    names.add(alias.asname or alias.name)
        return names
