"""Baseline (suppression) files for statan runs.

A baseline is a checked-in JSON file listing findings that are
*accepted* — typically legacy debt in ``tests/`` or ``benchmarks/``
while it is being paid down.  Entries match on the finding fingerprint
``(code, path, message)``; line numbers are deliberately excluded so an
edit above a baselined finding does not resurrect it.  Project policy
(enforced by review, stated in ``docs/static-analysis.md``): the
baseline must stay **empty for src/repro** — production findings get
fixed or carry an inline pragma with a written justification, never a
baseline entry.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.statan.core import Finding, StatanError

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "write_baseline",
    "split_by_baseline",
]

#: Schema version of the baseline file; bump when the layout changes.
BASELINE_VERSION = 1

#: The conventional baseline filename, looked up in the working
#: directory when ``--baseline`` is not given.
DEFAULT_BASELINE_NAME = "statan-baseline.json"


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    """The set of accepted finding fingerprints recorded at ``path``."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise StatanError(f"cannot read baseline {path}: {error}") from error
    if not isinstance(document, dict):
        raise StatanError(
            f"baseline {path} must be a JSON object, got "
            f"{type(document).__name__}"
        )
    version = document.get("statan_baseline_version")
    if not isinstance(version, int) or version > BASELINE_VERSION:
        raise StatanError(
            f"baseline {path} has version {version!r}, newer than the "
            f"supported {BASELINE_VERSION}"
        )
    entries = document.get("findings")
    if not isinstance(entries, list):
        raise StatanError(f"baseline {path} has no findings list")
    fingerprints = set()
    for entry in entries:
        try:
            fingerprints.add(
                (str(entry["code"]), str(entry["path"]), str(entry["message"]))
            )
        except (KeyError, TypeError) as error:
            raise StatanError(
                f"malformed baseline entry {entry!r}: {error}"
            ) from error
    return fingerprints


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Record ``findings`` as the accepted baseline at ``path``."""
    document = {
        "statan_baseline_version": BASELINE_VERSION,
        "findings": [
            {"code": f.code, "path": f.path, "message": f.message}
            for f in sorted(findings)
        ],
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def split_by_baseline(
    findings: list[Finding], baseline: set[tuple[str, str, str]]
) -> tuple[list[Finding], list[Finding]]:
    """``(new, baselined)`` partition of ``findings`` against ``baseline``."""
    new: list[Finding] = []
    accepted: list[Finding] = []
    for finding in findings:
        (accepted if finding.fingerprint() in baseline else new).append(finding)
    return new, accepted
