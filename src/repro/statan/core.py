"""Core statan infrastructure: findings, modules, programs, pass registry.

Everything pass-agnostic lives here.  A :class:`SourceModule` is one
parsed file (source, AST, dotted module name, and its inline-pragma
table); a :class:`Program` is the set of modules analyzed together plus
lazily built shared facts (the project call graph).  Passes subclass
:class:`LintPass` and self-register via the :func:`register` decorator;
the driver materializes them with :func:`registered_passes`.

Module identity is derived from the file path by locating the last
``repro`` path component — ``src/repro/serving/engine.py`` becomes
``repro.serving.engine``, and a test fixture checked in under
``tests/statan/fixtures/eps001/bad/repro/serving/x.py`` becomes
``repro.serving.x``.  That one rule lets the layer- and scope-sensitive
passes treat fixture trees exactly like the real source tree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "SourceModule",
    "Program",
    "LintPass",
    "StatanError",
    "register",
    "registered_passes",
    "module_name_for_path",
]

#: Inline suppression pragma: ``# statan: ignore[EPS001]`` or
#: ``# statan: ignore[LOCK001,LOCK002]``, optionally followed by a
#: free-text justification.
PRAGMA = re.compile(r"#\s*statan:\s*ignore\[([A-Z0-9_,\s]+)\]")


class StatanError(Exception):
    """A statan run could not complete (unreadable or unparsable input)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordered by ``(path, line, col, code)`` so reports are stable across
    runs; the :meth:`fingerprint` deliberately excludes line/col so a
    baseline entry survives unrelated edits above the finding.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    pass_name: str

    def fingerprint(self) -> tuple[str, str, str]:
        """The identity used for baseline matching: (code, path, message)."""
        return (self.code, self.path, self.message)

    def to_json(self) -> dict:
        """The finding as a JSON-report object."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "pass": self.pass_name,
        }


def module_name_for_path(path: Path) -> str:
    """The dotted module name for ``path``, anchored at its ``repro`` part.

    Falls back to the bare stem for files outside any ``repro`` package
    (such files still get the location-free passes, but no layer rank).
    """
    parts = list(path.parts)
    stem = path.stem
    if "repro" not in parts[:-1]:
        return stem
    anchor = len(parts) - 1 - parts[:-1][::-1].index("repro") - 1
    dotted = list(parts[anchor:-1])
    if stem != "__init__":
        dotted.append(stem)
    return ".".join(dotted)


class SourceModule:
    """One parsed source file plus its statan-specific metadata."""

    def __init__(self, path: Path, source: str) -> None:
        self.path = Path(path)
        self.name = module_name_for_path(self.path)
        self.source = source
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            raise StatanError(f"cannot parse {path}: {error}") from error
        self.ignores: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = PRAGMA.search(line)
            if match:
                codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
                self.ignores.setdefault(lineno, set()).update(codes)

    def is_ignored(self, line: int, code: str) -> bool:
        """True when ``line`` carries an ``ignore`` pragma covering ``code``."""
        return code in self.ignores.get(line, ())

    def comment_on_line(self, lineno: int) -> str:
        """The raw text of source line ``lineno`` (1-based), or ``""``."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SourceModule({self.name!r}, {str(self.path)!r})"


class Program:
    """The set of modules analyzed together, plus shared lazy facts."""

    def __init__(self, modules: list[SourceModule]) -> None:
        self.modules = modules
        self.by_name = {module.name: module for module in modules}
        self._callgraph = None

    @classmethod
    def load(cls, files: list[Path]) -> "Program":
        """Parse ``files`` into a program; raises :class:`StatanError`."""
        modules = []
        for path in files:
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as error:
                raise StatanError(f"cannot read {path}: {error}") from error
            modules.append(SourceModule(path, source))
        return cls(modules)

    def callgraph(self):
        """The project-wide name-based call graph, built once per run."""
        if self._callgraph is None:
            from repro.statan.callgraph import CallGraph

            self._callgraph = CallGraph.build(self)
        return self._callgraph


class LintPass:
    """Base class for statan passes.

    Subclasses set ``name`` (stable identifier), ``codes`` (the finding
    codes they may emit), and ``description`` (one line for
    ``--list-passes``), then implement :meth:`run`.
    """

    name: str = ""
    codes: tuple[str, ...] = ()
    description: str = ""

    def run(self, program: Program) -> list[Finding]:
        """All findings for ``program``; pure — no I/O, no mutation."""
        raise NotImplementedError

    def finding(
        self, module: SourceModule, node: ast.AST, code: str, message: str
    ) -> Finding:
        """A :class:`Finding` at ``node``'s location in ``module``."""
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
            pass_name=self.name,
        )


_REGISTRY: dict[str, type[LintPass]] = {}


def register(pass_cls: type[LintPass]) -> type[LintPass]:
    """Class decorator adding a pass to the global registry."""
    if not pass_cls.name:
        raise ValueError(f"{pass_cls.__name__} must set a pass name")
    _REGISTRY[pass_cls.name] = pass_cls
    return pass_cls


def registered_passes() -> list[LintPass]:
    """Fresh instances of every registered pass, in registration order.

    Importing :mod:`repro.statan.driver` (or any pass module) populates
    the registry; callers embedding statan should import the passes they
    want first.
    """
    return [pass_cls() for pass_cls in _REGISTRY.values()]


def walk_with_stack(tree: ast.AST):
    """Yield ``(node, ancestors)`` pairs, ancestors outermost-first."""
    stack: list[ast.AST] = []

    def visit(node: ast.AST):
        yield node, tuple(stack)
        stack.append(node)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        stack.pop()

    yield from visit(tree)


def dotted_call_name(func: ast.AST) -> str | None:
    """``"os.replace"`` for ``os.replace(...)``, ``"open"`` for ``open(...)``.

    Returns the dotted name when the callee is a plain name or attribute
    chain rooted at a name, else ``None`` (computed callees are opaque to
    every pass).
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
