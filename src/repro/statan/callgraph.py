"""A name-based, project-wide call graph for flow-sensitive passes.

Python cannot be statically resolved precisely without type inference,
so statan uses the classic conservative approximation: every function
definition (including methods and nested functions) is a node, and a
call site ``f(...)`` / ``x.f(...)`` creates an edge to *every* function
whose bare name is ``f``.  That over-approximates edges (unrelated
``get``/``answer`` methods merge), which is the safe direction for
EPS001: a noise-reaching path can gain spurious protection but never
disappear.  Calls into functions the program does not define (``np.*``,
stdlib) resolve by name only — the sampler and charge-call name sets are
therefore meaningful even when :mod:`repro.privacy` itself is outside
the analyzed file set (as in test fixtures).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.statan.core import Program, SourceModule

__all__ = ["CallSite", "FunctionInfo", "CallGraph", "SAMPLER_NAMES"]

#: The noise samplers of :mod:`repro.privacy.laplace` and
#: :mod:`repro.privacy.geometric` — the roots of the EPS001 analysis.
#: Any call path that reaches one of these draws mechanism noise and so
#: must be dominated by a ``PrivacyBudget`` charge.
SAMPLER_NAMES = frozenset(
    {
        "laplace_noise",
        "laplace_noise_matrix",
        "two_sided_geometric_noise",
        "two_sided_geometric_noise_matrix",
    }
)


class CallSite(NamedTuple):
    """One call expression inside a function body."""

    name: str
    line: int
    col: int


@dataclass
class FunctionInfo:
    """One function/method/nested-function definition node."""

    index: int
    module: SourceModule
    node: ast.AST
    bare_name: str
    qualname: str
    calls: list[CallSite] = field(default_factory=list)

    @property
    def called_names(self) -> set[str]:
        return {site.name for site in self.calls}


def _call_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        # Calls on lock objects (self._serve_lock.release(), …) are lock
        # protocol, not project functions; without this the ``release``
        # method of a lock would name-merge with the DP release methods.
        receiver = func.value
        receiver_name = None
        if isinstance(receiver, ast.Attribute):
            receiver_name = receiver.attr
        elif isinstance(receiver, ast.Name):
            receiver_name = receiver.id
        if receiver_name is not None and receiver_name.lower().endswith("lock"):
            return None
        return func.attr
    return None


def _collect_own_calls(fn_node: ast.AST) -> list[CallSite]:
    """Call sites lexically in ``fn_node``, excluding nested function bodies.

    Nested ``def``s are separate call-graph nodes, so only their
    decorators belong to the enclosing function; lambda bodies stay
    attributed to the enclosing function (conservative and simple).
    """
    sites: list[CallSite] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in child.decorator_list:
                    visit(decorator)
                continue
            if isinstance(child, ast.Call):
                name = _call_name(child)
                if name is not None:
                    sites.append(CallSite(name, child.lineno, child.col_offset))
            visit(child)

    visit(fn_node)
    return sites


class CallGraph:
    """Functions plus name-merged caller/callee edges for a program."""

    def __init__(self, functions: list[FunctionInfo]) -> None:
        self.functions = functions
        self.by_bare_name: dict[str, list[FunctionInfo]] = {}
        for info in functions:
            self.by_bare_name.setdefault(info.bare_name, []).append(info)
        #: name -> indices of functions whose body calls that name
        self.callers_of_name: dict[str, set[int]] = {}
        for info in functions:
            for name in info.called_names:
                self.callers_of_name.setdefault(name, set()).add(info.index)

    @classmethod
    def build(cls, program: Program) -> "CallGraph":
        """Collect every function definition across ``program``."""
        functions: list[FunctionInfo] = []
        for module in program.modules:
            stack: list[str] = []

            def visit(node: ast.AST) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = ".".join([*stack, child.name])
                        info = FunctionInfo(
                            index=len(functions),
                            module=module,
                            node=child,
                            bare_name=child.name,
                            qualname=f"{module.name}:{qual}",
                        )
                        info.calls = _collect_own_calls(child)
                        functions.append(info)
                        stack.append(child.name)
                        visit(child)
                        stack.pop()
                    elif isinstance(child, ast.ClassDef):
                        stack.append(child.name)
                        visit(child)
                        stack.pop()
                    else:
                        visit(child)

            visit(module.tree)
        return cls(functions)

    def defs_named(self, name: str) -> list[FunctionInfo]:
        """Every definition whose bare name is ``name``."""
        return self.by_bare_name.get(name, [])

    def callers_of(self, info: FunctionInfo) -> set[int]:
        """Indices of functions containing a call spelled ``info.bare_name``."""
        return self.callers_of_name.get(info.bare_name, set())

    def transitive_callers(self, start: FunctionInfo) -> set[int]:
        """All functions that can (by name) reach ``start``, excluding it."""
        seen: set[int] = set()
        frontier = list(self.callers_of(start))
        while frontier:
            index = frontier.pop()
            if index in seen or index == start.index:
                continue
            seen.add(index)
            frontier.extend(self.callers_of(self.functions[index]))
        seen.discard(start.index)
        return seen
