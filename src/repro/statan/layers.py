"""ARCH001 — imports must respect the layer DAG, with no cycles.

The repo is layered so that every tier only builds on tiers below it;
the rank table below *is* the architecture (see
``docs/architecture.md``)::

    0  repro.exceptions, repro.utils,
       repro.faults                      (leaf helpers, importable by all)
    1  repro.db                          (domains, relations, histograms)
    2  repro.privacy, repro.data         (mechanisms, budgets, datasets)
    3  repro.queries                     (range queries, workloads)
    4  repro.inference                   (constrained inference)
    5  repro.estimators                  (paper estimators)
    6  repro.analysis                    (error analysis, experiments)
    7  repro.core                        (end-to-end protocol, tasks)
    8  repro.obs, repro.accuracy         (cross-cutting telemetry; the
                                          accuracy control plane's
                                          uncertainty models and SLOs)
    9  repro.serving,
       repro.sharding.pool               (engines, cache, store, fleet;
                                          the shard-build worker pool —
                                          a leaf carved out of sharding)
    10 repro.streaming                   (epoch refresh)
    11 repro.sharding                    (massive-domain sharding)
    12 repro.cli, repro.statan, repro    (entry points / whole-package)

A module may import same-rank or lower-rank modules only.  One
deliberate deviation from the headline chain in the issue (… sharding →
{obs, cli}): ``obs`` sits *below* serving rather than above sharding,
because the serving tiers import it for metrics/tracing and it imports
:mod:`repro.privacy.audit` for the ε-ledger — the rank table encodes the
DAG the code actually needs, and the cycle check still guarantees
acyclicity.  Only imports that execute at import time count:
``if TYPE_CHECKING:`` blocks and function-scoped (deferred) imports are
skipped, the latter being the sanctioned escape hatch for coordinator
modules such as the fleet's lazy engine-type imports.
"""

from __future__ import annotations

import ast

from repro.statan.core import Finding, LintPass, Program, SourceModule, register

__all__ = ["LayerDagPass", "LAYER_RANKS", "rank_of"]

#: Longest-prefix-match table from module-name prefix to layer rank.
LAYER_RANKS: dict[str, int] = {
    "repro.exceptions": 0,
    "repro.utils": 0,
    "repro.faults": 0,
    "repro.db": 1,
    "repro.privacy": 2,
    "repro.data": 2,
    "repro.queries": 3,
    "repro.inference": 4,
    "repro.estimators": 5,
    "repro.analysis": 6,
    "repro.core": 7,
    "repro.obs": 8,
    # The accuracy control plane sits beside obs: pure uncertainty
    # models over the query/analysis tiers, imported by every serving
    # tier but never importing back up into them.
    "repro.accuracy": 8,
    "repro.serving": 9,
    # The shard-build worker pool is a leaf under the sharding engines:
    # it may reach serving's pure kernels (and the obs/faults leaves)
    # but never back up into sharding's stateful tiers — longest-prefix
    # match carves it out of the repro.sharding rank.
    "repro.sharding.pool": 9,
    "repro.streaming": 10,
    "repro.sharding": 11,
    "repro.cli": 12,
    "repro.statan": 12,
    "repro": 12,  # the package façade re-exports the public API
}


def rank_of(module_name: str) -> int | None:
    """The layer rank for ``module_name`` by longest prefix match."""
    best = None
    best_len = -1
    for prefix, rank in LAYER_RANKS.items():
        if module_name == prefix or module_name.startswith(prefix + "."):
            if len(prefix) > best_len:
                best, best_len = rank, len(prefix)
    return best


def _prefix_len(module_name: str) -> int:
    """Length of the longest rank-table prefix matching ``module_name``."""
    return max(
        (
            len(prefix)
            for prefix in LAYER_RANKS
            if module_name == prefix or module_name.startswith(prefix + ".")
        ),
        default=-1,
    )


def _imported_modules(
    module: SourceModule, known: set[str]
) -> list[tuple[str, ast.AST]]:
    """``(dotted-module, node)`` for every executed import in ``module``.

    ``from pkg import name`` is attributed to ``pkg.name`` when that
    resolves to an analyzed module or a deeper rank-table prefix —
    ``from repro import obs`` imports the :mod:`repro.obs` subpackage,
    not the top-level façade.
    """

    results: list[tuple[str, ast.AST]] = []
    is_package = module.path.stem == "__init__"

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Function-scoped imports run lazily, not at import time:
                # they are the sanctioned escape hatch for coordinator
                # modules (the fleet's deferred engine imports) and do
                # not constrain the import-time DAG.
                continue
            if isinstance(child, ast.If) and _is_type_checking(child.test):
                for sub in child.orelse:
                    visit(sub)
                continue
            if isinstance(child, ast.Import):
                for alias in child.names:
                    results.append((alias.name, child))
            elif isinstance(child, ast.ImportFrom):
                if child.level:
                    parts = module.name.split(".")
                    drop = child.level - 1 if is_package else child.level
                    base = ".".join(parts[: len(parts) - drop])
                    target = f"{base}.{child.module}" if child.module else base
                else:
                    target = child.module or ""
                if not target:
                    continue
                for alias in child.names:
                    sub = f"{target}.{alias.name}"
                    if sub in known or _prefix_len(sub) > _prefix_len(target):
                        results.append((sub, child))
                    else:
                        results.append((target, child))
            else:
                visit(child)

    visit(module.tree)
    return results


def _is_type_checking(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


@register
class LayerDagPass(LintPass):
    """Imports only reach same-or-lower layers; the module graph is acyclic."""

    name = "layer-dag"
    codes = ("ARCH001",)
    description = (
        "imports respect the layer ranks (db → privacy → … → sharding → "
        "cli) and the module import graph stays acyclic"
    )

    def run(self, program: Program) -> list[Finding]:
        findings: list[Finding] = []
        edges: dict[str, set[str]] = {}
        nodes: dict[str, tuple[SourceModule, ast.AST]] = {}
        known = set(program.by_name)
        for module in program.modules:
            importer_rank = rank_of(module.name)
            for target, node in _imported_modules(module, known):
                if not target.startswith("repro"):
                    continue
                # Resolve "from repro.x import name": prefer the deepest
                # analyzed module; fall back to the dotted name itself.
                resolved = target
                while resolved not in program.by_name and "." in resolved:
                    resolved = resolved.rsplit(".", 1)[0]
                effective = (
                    resolved if resolved in program.by_name else target
                )
                if effective == module.name:
                    continue
                target_rank = rank_of(effective)
                if (
                    importer_rank is not None
                    and target_rank is not None
                    and target_rank > importer_rank
                ):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "ARCH001",
                            f"{module.name} (layer {importer_rank}) imports "
                            f"{effective} (layer {target_rank}); imports "
                            f"must flow downward in the layer DAG",
                        )
                    )
                if effective in program.by_name:
                    edges.setdefault(module.name, set()).add(effective)
                    nodes.setdefault(module.name, (module, node))
        findings.extend(self._cycle_findings(edges, nodes))
        return findings

    def _cycle_findings(self, edges, nodes) -> list[Finding]:
        """Module-level cycle detection via iterative DFS coloring."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[str, int] = {}
        findings: list[Finding] = []
        reported: set[frozenset] = set()

        def dfs(start: str) -> None:
            stack = [(start, iter(sorted(edges.get(start, ()))))]
            color[start] = GRAY
            path = [start]
            while stack:
                name, children = stack[-1]
                advanced = False
                for child in children:
                    state = color.get(child, WHITE)
                    if state == GRAY:
                        cycle = path[path.index(child):] + [child]
                        identity = frozenset(cycle)
                        if identity not in reported:
                            reported.add(identity)
                            module, node = nodes[name]
                            findings.append(
                                self.finding(
                                    module,
                                    node,
                                    "ARCH001",
                                    "import cycle: " + " -> ".join(cycle),
                                )
                            )
                    elif state == WHITE:
                        color[child] = GRAY
                        stack.append(
                            (child, iter(sorted(edges.get(child, ()))))
                        )
                        path.append(child)
                        advanced = True
                        break
                if not advanced:
                    color[name] = BLACK
                    stack.pop()
                    path.pop()

        for name in sorted(edges):
            if color.get(name, WHITE) == WHITE:
                dfs(name)
        return findings
