"""EPS001 — ε-flow: noise must be charge-dominated, and charged *after*.

Two rules, both rooted in the accounting contract the serving tiers have
carried since the cache/engine PRs:

**Rule A (charge-after-success, intra-function).**  In any function that
both charges a budget (``spend`` / ``spend_fraction``) and makes a
noise-reaching call, the first charge must come *after* the first noisy
call.  Charging first means a failed build (dataset mismatch, store
error, estimator bug) leaks ε that bought nothing; the repo's idiom is
build-then-charge, with the charge as the last fallible step.

**Rule B (charge domination, inter-procedural).**  For functions defined
in the accounting tiers (``repro.serving``, ``repro.streaming``,
``repro.sharding``), no function may be *exposed* — able to reach a
sampler along a call path with no ``spend()`` on it — unless some
transitive caller charges.  Charging functions absorb exposure: a path
that passes through ``spend()`` is dominated by that charge.  An exposed
function with no charging caller is a path that draws mechanism noise
without any ``PrivacyBudget`` ever being debited — the exact shape of
the budget-leak bugs the threaded ε-accounting tests were written
against.

The analysis rides the name-merged call graph
(:mod:`repro.statan.callgraph`): edges are resolved by bare name, which
over-approximates reachability — noisy paths can never vanish, though
unrelated same-named methods may merge.  The analysis/core/CLI tiers are
deliberately out of Rule B's scope: the experiment harness measures
error against *known* true counts and reports ε rather than enforcing a
budget, and its accounting is covered by the protocol tests instead.
"""

from __future__ import annotations

from repro.statan.callgraph import SAMPLER_NAMES
from repro.statan.core import Finding, LintPass, Program, register

__all__ = ["EpsilonFlowPass", "CHARGE_NAMES", "RULE_B_SCOPE"]

#: Call names that debit a :class:`~repro.privacy.budget.PrivacyBudget`.
CHARGE_NAMES = frozenset({"spend", "spend_fraction"})

#: Module-name prefixes whose functions must be charge-dominated (Rule B).
RULE_B_SCOPE = ("repro.serving", "repro.streaming", "repro.sharding")


@register
class EpsilonFlowPass(LintPass):
    """Charge-after-success ordering and charge domination of noise paths."""

    name = "eps-flow"
    codes = ("EPS001",)
    description = (
        "noise-reaching calls must be dominated by a PrivacyBudget charge, "
        "and spend() must follow the fallible build call"
    )

    def run(self, program: Program) -> list[Finding]:
        graph = program.callgraph()
        functions = graph.functions

        charging = {
            info.index for info in functions if info.called_names & CHARGE_NAMES
        }

        # -- exposure: reaches a sampler along a charge-free path --------
        # A function is *exposed* when it can reach a sampler without any
        # charging function on the way: direct sampler callers that do
        # not charge seed the set, and exposure propagates to callers
        # that do not charge themselves.  Charging functions absorb
        # exposure (paths through them are dominated by their charge), so
        # name-merged recursion cannot deadlock the fixpoint.
        exposed: set[int] = set()
        frontier: list[int] = []
        for info in functions:
            if (
                info.called_names & SAMPLER_NAMES
                and info.index not in charging
            ):
                exposed.add(info.index)
                frontier.append(info.index)
        while frontier:
            index = frontier.pop()
            for caller in graph.callers_of(functions[index]):
                if caller not in exposed and caller not in charging:
                    exposed.add(caller)
                    frontier.append(caller)

        def noisy_sites(info):
            """Call sites in ``info`` that draw (or may resolve to) noise."""
            sites = []
            for site in info.calls:
                if site.name in SAMPLER_NAMES or any(
                    d.index in exposed for d in graph.defs_named(site.name)
                ):
                    sites.append(site)
            return sites

        findings: list[Finding] = []
        for info in functions:
            sites = noisy_sites(info)

            # Rule A: first charge must not precede the first noisy call.
            if info.index in charging and sites:
                charge_sites = [
                    s for s in info.calls if s.name in CHARGE_NAMES
                ]
                first_charge = min((s.line, s.col) for s in charge_sites)
                first_noisy = min((s.line, s.col) for s in sites)
                if first_charge < first_noisy:
                    line, col = first_charge
                    findings.append(
                        Finding(
                            path=str(info.module.path),
                            line=line,
                            col=col,
                            code="EPS001",
                            message=(
                                f"{info.qualname} charges the budget before "
                                f"its noise-producing build call; charge "
                                f"after the fallible build succeeds so a "
                                f"failed build cannot leak ε"
                            ),
                            pass_name=self.name,
                        )
                    )

            # Rule B: accounting-tier noise must be charge-dominated.
            if info.index in exposed and info.module.name.startswith(
                RULE_B_SCOPE
            ):
                ancestors = graph.transitive_callers(info)
                if not (ancestors & charging):
                    findings.append(
                        self.finding(
                            info.module,
                            info.node,
                            "EPS001",
                            f"{info.qualname} can reach a noise sampler but "
                            f"no PrivacyBudget charge dominates the path "
                            f"(neither this function, any function on the "
                            f"sampler path, nor any transitive caller calls "
                            f"spend())",
                        )
                    )
        return findings
