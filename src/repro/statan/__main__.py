"""``python -m repro.statan`` — run the invariant linter."""

from repro.statan.driver import main

if __name__ == "__main__":
    main()
