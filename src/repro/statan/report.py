"""Human and machine-readable rendering of a statan run.

The human format is one ``path:line:col: CODE message`` line per finding
(clickable in editors and CI logs) plus a summary; the JSON format is a
versioned envelope consumed by the CI step and the schema test.  Both
render the same :class:`RunResult`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.statan.core import Finding

__all__ = ["REPORT_VERSION", "RunResult", "render_human", "render_json"]

#: Schema version of the JSON report envelope; bump when it changes.
REPORT_VERSION = 1


@dataclass
class RunResult:
    """Everything one statan invocation produced."""

    findings: list[Finding]
    pragma_suppressed: int
    baseline_suppressed: int
    files_analyzed: int
    passes: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 when no unsuppressed findings remain, 1 otherwise."""
        return 1 if self.findings else 0


def render_human(result: RunResult) -> str:
    """The editor/CI-log friendly rendering of ``result``."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.code} {f.message}"
        for f in sorted(result.findings)
    ]
    lines.append(
        f"statan: {len(result.findings)} finding(s) in "
        f"{result.files_analyzed} file(s) "
        f"[{result.pragma_suppressed} pragma-suppressed, "
        f"{result.baseline_suppressed} baselined] "
        f"passes: {', '.join(result.passes)}"
    )
    return "\n".join(lines)


def render_json(result: RunResult) -> str:
    """The versioned JSON envelope for ``result``."""
    document = {
        "statan_report_version": REPORT_VERSION,
        "passes": result.passes,
        "files_analyzed": result.files_analyzed,
        "findings": [f.to_json() for f in sorted(result.findings)],
        "pragma_suppressed": result.pragma_suppressed,
        "baseline_suppressed": result.baseline_suppressed,
        "exit_code": result.exit_code,
    }
    return json.dumps(document, indent=2, sort_keys=True)
