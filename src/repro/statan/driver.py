"""The ``python -m repro.statan`` command-line driver.

Collects ``.py`` files from the given paths, runs every registered pass
(or a ``--select``-ed subset), applies inline pragmas and the baseline,
renders the report, and exits 0 (clean), 1 (findings), or 2 (unusable
input — unreadable file, syntax error, bad baseline).  The ``lint`` CLI
subcommand is a thin wrapper over :func:`run`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Importing the pass modules populates the registry.
from repro.statan import determinism  # noqa: F401
from repro.statan import eps_flow  # noqa: F401
from repro.statan import layers  # noqa: F401
from repro.statan import locks  # noqa: F401
from repro.statan import obs_gate  # noqa: F401
from repro.statan.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.statan.core import Program, StatanError, registered_passes
from repro.statan.report import RunResult, render_human, render_json

__all__ = ["build_arg_parser", "run", "main"]


def build_arg_parser() -> argparse.ArgumentParser:
    """The driver's argument parser (exposed for the CLI subcommand)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.statan",
        description=(
            "statan: AST-based invariant linter for ε-flow, lock "
            "discipline, obs gating, layer boundaries, and determinism"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            f"baseline file of accepted findings (default: "
            f"{DEFAULT_BASELINE_NAME} in the working directory, if present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings: rewrite the baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated finding codes to run (default: all passes)",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="list registered passes and their finding codes, then exit",
    )
    return parser


def _collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.is_file():
            files.append(path)
        else:
            raise StatanError(f"no such file or directory: {path}")
    return files


def run(argv: list[str] | None = None) -> int:
    """Execute one lint run; returns the process exit code (0/1/2)."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    passes = registered_passes()
    if args.list_passes:
        for lint_pass in passes:
            codes = ", ".join(lint_pass.codes)
            print(f"{lint_pass.name} [{codes}]: {lint_pass.description}")
        return 0

    if args.select:
        wanted = {code.strip().upper() for code in args.select.split(",")}
        passes = [p for p in passes if wanted & set(p.codes)]
        if not passes:
            print(f"statan: no pass emits any of {sorted(wanted)}", file=sys.stderr)
            return 2

    try:
        files = _collect_files(args.paths)
        program = Program.load(files)

        findings = []
        for lint_pass in passes:
            findings.extend(lint_pass.run(program))

        visible = []
        pragma_suppressed = 0
        for finding in findings:
            module = next(
                (m for m in program.modules if str(m.path) == finding.path),
                None,
            )
            if module is not None and module.is_ignored(
                finding.line, finding.code
            ):
                pragma_suppressed += 1
            else:
                visible.append(finding)

        baseline_path = None
        if not args.no_baseline:
            if args.baseline is not None:
                baseline_path = Path(args.baseline)
            elif Path(DEFAULT_BASELINE_NAME).is_file():
                baseline_path = Path(DEFAULT_BASELINE_NAME)

        if args.write_baseline:
            target = Path(args.baseline or DEFAULT_BASELINE_NAME)
            write_baseline(target, visible)
            print(f"statan: wrote {len(visible)} finding(s) to {target}")
            return 0

        baseline_suppressed = 0
        if baseline_path is not None:
            baseline = load_baseline(baseline_path)
            visible, accepted = split_by_baseline(visible, baseline)
            baseline_suppressed = len(accepted)
    except StatanError as error:
        print(f"statan: error: {error}", file=sys.stderr)
        return 2

    result = RunResult(
        findings=visible,
        pragma_suppressed=pragma_suppressed,
        baseline_suppressed=baseline_suppressed,
        files_analyzed=len(program.modules),
        passes=[p.name for p in passes],
    )
    renderer = render_json if args.format == "json" else render_human
    print(renderer(result))
    return result.exit_code


def main(argv: list[str] | None = None) -> None:
    """Console entry point: :func:`run` + ``sys.exit``."""
    sys.exit(run(argv))
