"""LOCK001/LOCK002 — guarded-by discipline for shared mutable state.

The concurrent subsystems annotate their shared attributes at the point
of initialization::

    self._entries: dict[ReleaseKey, MaterializedRelease] = {}  # guarded-by: _lock

(the comment may also sit on the line directly above when the
assignment is long).  The annotations are the pass's ground truth:

**LOCK001** — inside the class, every load or store of an annotated
``self.<attr>`` must be lexically inside ``with self.<lock>:`` for the
annotated lock.  Two documented escape hatches reflect real idioms
rather than weaken the rule: ``__init__`` is exempt (the object is not
yet shared), and methods whose name ends in ``_locked`` are exempt (the
repo-wide convention that the caller already holds the lock — the
callers themselves remain checked).  Deliberate lock-free fast paths
(e.g. the sharded engine's warm read) carry an explicit
``# statan: ignore[LOCK001]`` pragma with a justification.

**LOCK002** — no blocking call while holding an annotated lock.
"Blocking" is the canonical catalog exported by
:mod:`repro.utils.io_atomic`: file I/O (``open``, ``os.replace``,
``np.save`` …, plus ``Path`` method names) *and* waits
(``time.sleep``, the shared retry runner
:func:`~repro.faults.retry.run_with_retry` — a backoff schedule held
under a hot lock stalls every reader behind it), extended transitively
through same-module helper functions.  Cross-module method calls
(``self.store.put``) are not resolved — the durable tier (store,
lineages) deliberately serializes its writes, and now its retries,
under its own single-writer lock, and its discipline is covered by the
crash-safety tests; what LOCK002 polices is the serve-path classes,
whose hot locks must never be held across a file operation or a
backoff sleep.
"""

from __future__ import annotations

import ast
import re

from repro.statan.core import (
    Finding,
    LintPass,
    Program,
    SourceModule,
    dotted_call_name,
    register,
)
from repro.utils.io_atomic import (
    BLOCKING_CALL_NAMES,
    BLOCKING_PATH_METHODS,
    BLOCKING_WAIT_NAMES,
)

__all__ = ["LockDisciplinePass", "GUARDED_BY"]

#: The annotation grammar: ``# guarded-by: _lock`` (trailing text allowed).
GUARDED_BY = re.compile(r"#.*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


def _self_attr(node: ast.AST) -> str | None:
    """``"x"`` when ``node`` is ``self.x``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _with_locks(node: ast.With) -> set[str]:
    """Lock attribute names acquired by ``with self.<name>`` items."""
    held: set[str] = set()
    for item in node.items:
        attr = _self_attr(item.context_expr)
        if attr is not None:
            held.add(attr)
    return held


def _collect_annotations(
    module: SourceModule, class_node: ast.ClassDef
) -> dict[str, str]:
    """``{attr: lock}`` from guarded-by comments inside ``class_node``."""
    guards: dict[str, str] = {}
    for node in ast.walk(class_node):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                for lineno in (node.lineno, node.lineno - 1):
                    match = GUARDED_BY.search(module.comment_on_line(lineno))
                    if match:
                        guards[attr] = match.group(1)
                        break
    return guards


def _local_callee_name(call: ast.Call) -> str | None:
    """Callee name when the call can target a same-module function.

    Only bare names (``helper(...)``) and self-method calls
    (``self.helper(...)``) can resolve to functions defined in this
    module.  An attribute call on any other receiver —
    ``self._entries.append(...)`` — targets a foreign object, which the
    name merge must not conflate with a local helper of the same name.
    """
    if isinstance(call.func, ast.Name):
        return call.func.id
    return _self_attr(call.func)


def _local_io_functions(module: SourceModule) -> set[str]:
    """Bare names of same-module functions that (transitively) do file I/O."""
    bodies: dict[str, list[ast.AST]] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bodies.setdefault(node.name, []).append(node)

    def direct_io(fn: ast.AST) -> bool:
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Call) and _is_blocking_call(sub):
                return True
        return False

    io_names = {name for name, fns in bodies.items() if any(map(direct_io, fns))}
    changed = True
    while changed:
        changed = False
        for name, fns in bodies.items():
            if name in io_names:
                continue
            for fn in fns:
                for sub in ast.walk(fn):
                    if isinstance(sub, ast.Call):
                        callee = _local_callee_name(sub)
                        if callee in io_names and callee in bodies:
                            io_names.add(name)
                            changed = True
                            break
                if name in io_names:
                    break
    return io_names


def _is_blocking_call(call: ast.Call) -> bool:
    name = dotted_call_name(call.func)
    if name is None:
        return False
    if name in BLOCKING_CALL_NAMES or name in BLOCKING_WAIT_NAMES:
        return True
    tail = name.rsplit(".", 2)
    if len(tail) >= 2 and ".".join(tail[-2:]) in (
        BLOCKING_CALL_NAMES | BLOCKING_WAIT_NAMES
    ):
        return True
    return name.rsplit(".", 1)[-1] in BLOCKING_PATH_METHODS


@register
class LockDisciplinePass(LintPass):
    """Annotated attributes stay under their lock; no I/O under a lock."""

    name = "lock-discipline"
    codes = ("LOCK001", "LOCK002")
    description = (
        "guarded-by annotated attributes are touched only under their lock, "
        "and no blocking file I/O runs while an annotated lock is held"
    )

    def run(self, program: Program) -> list[Finding]:
        findings: list[Finding] = []
        for module in program.modules:
            io_functions = None  # built lazily, only for annotated classes
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                guards = _collect_annotations(module, node)
                if not guards:
                    continue
                if io_functions is None:
                    io_functions = _local_io_functions(module)
                lock_names = set(guards.values())
                for method in node.body:
                    if not isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    exempt = (
                        method.name == "__init__"
                        or method.name.endswith("_locked")
                    )
                    self._check_method(
                        module,
                        method,
                        guards,
                        lock_names,
                        io_functions,
                        findings,
                        check_access=not exempt,
                    )
        return findings

    def _check_method(
        self,
        module: SourceModule,
        method: ast.AST,
        guards: dict[str, str],
        lock_names: set[str],
        io_functions: set[str],
        findings: list[Finding],
        check_access: bool,
    ) -> None:
        def visit(node: ast.AST, held: frozenset[str]) -> None:
            for child in ast.iter_child_nodes(node):
                child_held = held
                if isinstance(child, ast.With):
                    acquired = _with_locks(child) & lock_names
                    if acquired:
                        child_held = held | acquired
                attr = _self_attr(child)
                if check_access and attr is not None and attr in guards:
                    required = guards[attr]
                    if required not in held:
                        findings.append(
                            self.finding(
                                module,
                                child,
                                "LOCK001",
                                f"attribute 'self.{attr}' is guarded by "
                                f"'self.{required}' but is accessed here "
                                f"without holding it",
                            )
                        )
                if isinstance(child, ast.Call) and held:
                    blocking = _is_blocking_call(child)
                    if not blocking:
                        blocking = _local_callee_name(child) in io_functions
                    if blocking:
                        findings.append(
                            self.finding(
                                module,
                                child,
                                "LOCK002",
                                f"blocking call (file I/O or backoff wait) "
                                f"while holding {sorted(held)}: move it "
                                f"outside the lock or stage it through "
                                f"io_atomic first",
                            )
                        )
                visit(child, child_held)

        visit(method, frozenset())
