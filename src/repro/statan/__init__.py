"""statan — the repo's custom AST-based invariant linter.

The stack's correctness rests on conventions that runtime tests can only
probe, never prove: ε is charged exactly once and only *after* a
successful build (charge-after-success), shared state is touched only
under its guarding lock, every telemetry call is gated on
``obs.enabled()``, imports respect the layer DAG, and the bit-equality
kernels stay free of wall clocks and unseeded randomness.  ``statan``
makes those conventions *static*: five passes walk the stdlib ``ast`` of
every module and fail CI the moment a call site violates one.

The pass catalog (see :doc:`docs/static-analysis.md` for the full
contract of each):

``EPS001``
    ε-flow — every call path that can reach a noise sampler in
    :mod:`repro.privacy.laplace` / :mod:`repro.privacy.geometric` must be
    dominated by a :class:`~repro.privacy.budget.PrivacyBudget` charge,
    and ``spend()`` may never precede the fallible noisy build call
    inside one function.
``LOCK001`` / ``LOCK002``
    guarded-by discipline — attributes annotated ``# guarded-by: _lock``
    may only be touched inside ``with self._lock``, and no blocking file
    I/O (per :mod:`repro.utils.io_atomic`'s catalog) may run while such
    a lock is held.
``OBS001``
    obs gating — every ``obs.registry()`` / ``obs.tracer()`` call outside
    :mod:`repro.obs` must sit under an ``obs.enabled()`` guard or inside
    ``with obs.session()``.
``ARCH001``
    layer DAG — imports must respect the layered architecture
    (db → privacy → … → serving → streaming → sharding → cli) with no
    module-level cycles.
``DET001``
    determinism — no ``time.time()``, stdlib ``random``, or unseeded
    ``np.random`` inside the bit-equality kernel modules listed in the
    pass's manifest.

Findings can be suppressed per line with ``# statan: ignore[CODE]``
pragmas or per project with the checked-in ``statan-baseline.json``; the
shipped baseline is empty for ``src/repro`` — real findings get fixed,
not baselined.  Run via ``python -m repro.statan src/repro`` or the
``lint`` CLI subcommand.
"""

from __future__ import annotations

from repro.statan.core import (
    Finding,
    LintPass,
    Program,
    SourceModule,
    registered_passes,
)
from repro.statan.driver import main, run

__all__ = [
    "Finding",
    "LintPass",
    "Program",
    "SourceModule",
    "registered_passes",
    "main",
    "run",
]
