"""OBS001 — every telemetry call must be gated on ``obs.enabled()``.

The observability layer's headline contract (PR 6) is the no-op fast
path: with observability off, the serving tiers make *zero* registry or
tracer calls — benchmarked at <5% overhead precisely because every call
site pays one cheap boolean before touching the instrumentation.  This
pass makes the convention structural: any ``obs.registry(...)`` or
``obs.tracer(...)`` call outside :mod:`repro.obs` itself must be
lexically inside either

* the body of an ``if`` whose test contains ``obs.enabled()`` (directly
  or as an ``and`` conjunct — ``if found and obs.enabled():``), or
* a ``with obs.session():`` block (the CLI idiom: the session scopes a
  fresh registry *and* enables observability for its extent).

Helpers that are documented as caller-gated (their contract says "the
caller checks ``obs.enabled()``") carry a per-line
``# statan: ignore[OBS001]`` pragma naming that contract; everything
else must carry its own guard.  Calls to ``obs.enabled`` /
``obs.session`` and the test-harness setters are exempt — they *are*
the gate.
"""

from __future__ import annotations

import ast

from repro.statan.core import Finding, LintPass, Program, register

__all__ = ["ObsGatePass", "GATED_OBS_ATTRS"]

#: ``obs.<attr>`` calls that must sit under a gate.
GATED_OBS_ATTRS = frozenset({"registry", "tracer"})

#: Module-name prefixes exempt from the pass (the layer itself).
EXEMPT_PREFIXES = ("repro.obs", "repro.statan")


def _is_obs_call(node: ast.AST, attrs: frozenset[str]) -> bool:
    """True for ``obs.<attr>(...)`` with ``<attr>`` in ``attrs``."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in attrs
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "obs"
    )


def _test_is_enabled_guard(test: ast.AST) -> bool:
    """True when ``test`` guarantees ``obs.enabled()`` held in the body.

    Accepts ``obs.enabled()`` itself and any ``and``-conjunction with it
    as a direct conjunct.  Negations and ``or``s do not guard.
    """
    candidates = [test]
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        candidates = list(test.values)
    return any(
        _is_obs_call(value, frozenset({"enabled"})) for value in candidates
    )


def _with_is_session(node: ast.With) -> bool:
    return any(
        _is_obs_call(item.context_expr, frozenset({"session"}))
        for item in node.items
    )


@register
class ObsGatePass(LintPass):
    """obs.registry()/obs.tracer() calls must sit under an enabled() gate."""

    name = "obs-gate"
    codes = ("OBS001",)
    description = (
        "every obs.registry()/obs.tracer() call outside repro.obs sits "
        "under an obs.enabled() guard or a with obs.session() block"
    )

    def run(self, program: Program) -> list[Finding]:
        findings: list[Finding] = []
        for module in program.modules:
            if module.name.startswith(EXEMPT_PREFIXES):
                continue
            self._check_module(module, findings)
        return findings

    def _check_module(self, module, findings: list[Finding]) -> None:
        def visit(node: ast.AST, guarded: bool) -> None:
            if isinstance(node, ast.If):
                body_guarded = guarded or _test_is_enabled_guard(node.test)
                visit(node.test, guarded)
                for child in node.body:
                    visit(child, body_guarded)
                for child in node.orelse:
                    visit(child, guarded)
                return
            if isinstance(node, ast.With) and _with_is_session(node):
                for item in node.items:
                    visit(item, guarded)
                for child in node.body:
                    visit(child, True)
                return
            if _is_obs_call(node, GATED_OBS_ATTRS) and not guarded:
                findings.append(
                    self.finding(
                        module,
                        node,
                        "OBS001",
                        f"obs.{node.func.attr}() call is not under an "
                        f"obs.enabled() guard or obs.session() scope; the "
                        f"no-op fast path requires every telemetry call "
                        f"site to be gated",
                    )
                )
            for child in ast.iter_child_nodes(node):
                visit(child, guarded)

        visit(module.tree, False)
    # Functions defined inside a guarded region inherit the lexical
    # guard, which matches how the engines nest their helper closures.
