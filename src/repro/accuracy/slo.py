"""Accuracy SLOs: tenant-declared error-bar targets, checked per answer.

A tenant declares *"I need ±`target_ci_halfwidth` rows at `confidence`"*
once per engine or stream; every answered batch is then scored against
the declaration using the exact uncertainty model of the release that
served it.  The accumulated satisfaction statistics fold up through
``FleetStats`` and the ``repro_accuracy_*`` metric families, and the
observed slack feeds the adaptive ε allocator in
:mod:`repro.accuracy.schedule`.

The accumulator follows the :class:`repro.serving.stats.ServingStats`
contract: one lock, snapshot-consistent reads, pure snapshot folding.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

import numpy as np

from repro.accuracy.models import uncertainty_model_for
from repro.exceptions import ReproError

__all__ = [
    "AccuracySLO",
    "AccuracySnapshot",
    "AccuracyStats",
    "combine_accuracy_snapshots",
    "required_epsilon",
]

#: Confidence used when a tenant requests error bars without an SLO.
DEFAULT_CONFIDENCE = 0.95


@dataclass(frozen=True)
class AccuracySLO:
    """A tenant's accuracy target for one engine or stream.

    Parameters
    ----------
    target_ci_halfwidth:
        The answer is *within SLO* when its CI halfwidth at
        ``confidence`` is ``<=`` this many rows.
    confidence:
        Two-sided coverage level of the interval (default 95%).
    workload_weight:
        Relative weight of this tenant's workload when satisfaction is
        folded across the fleet (a reporting weight, not an ε weight).
    """

    target_ci_halfwidth: float
    confidence: float = DEFAULT_CONFIDENCE
    workload_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.target_ci_halfwidth <= 0.0:
            raise ReproError(
                f"target_ci_halfwidth must be positive, got "
                f"{self.target_ci_halfwidth}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ReproError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.workload_weight <= 0.0:
            raise ReproError(
                f"workload_weight must be positive, got "
                f"{self.workload_weight}"
            )


@dataclass(frozen=True)
class AccuracySnapshot:
    """One consistent accuracy read-out; foldable across engines."""

    answers: int = 0
    within_slo: int = 0
    weighted_answers: float = 0.0
    weighted_within: float = 0.0
    sum_halfwidth: float = 0.0
    max_halfwidth: float = 0.0
    sum_variance: float = 0.0

    @property
    def satisfaction(self) -> float:
        """Fraction of answers within SLO (1.0 while idle)."""
        if self.answers == 0:
            return 1.0
        return self.within_slo / self.answers

    @property
    def weighted_satisfaction(self) -> float:
        """Workload-weighted satisfaction across folded snapshots."""
        if self.weighted_answers == 0.0:
            return 1.0
        return self.weighted_within / self.weighted_answers

    @property
    def mean_halfwidth(self) -> float:
        """Mean CI halfwidth over all scored answers (0.0 while idle)."""
        if self.answers == 0:
            return 0.0
        return self.sum_halfwidth / self.answers


def combine_accuracy_snapshots(snapshots) -> AccuracySnapshot:
    """Pure fold of accuracy snapshots (sums and maxima)."""
    total = AccuracySnapshot()
    for snapshot in snapshots:
        total = replace(
            total,
            answers=total.answers + snapshot.answers,
            within_slo=total.within_slo + snapshot.within_slo,
            weighted_answers=total.weighted_answers
            + snapshot.weighted_answers,
            weighted_within=total.weighted_within + snapshot.weighted_within,
            sum_halfwidth=total.sum_halfwidth + snapshot.sum_halfwidth,
            max_halfwidth=max(total.max_halfwidth, snapshot.max_halfwidth),
            sum_variance=total.sum_variance + snapshot.sum_variance,
        )
    return total


class AccuracyStats:
    """Thread-safe accuracy accumulator for one engine or stream."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._answers = 0  # guarded-by: _lock
        self._within = 0  # guarded-by: _lock
        self._weighted_answers = 0.0  # guarded-by: _lock
        self._weighted_within = 0.0  # guarded-by: _lock
        self._sum_halfwidth = 0.0  # guarded-by: _lock
        self._max_halfwidth = 0.0  # guarded-by: _lock
        self._sum_variance = 0.0  # guarded-by: _lock

    def record_batch(
        self, halfwidths, variances, within=None, weight: float = 1.0
    ) -> None:
        """Fold one scored batch in; ``within`` is None without an SLO."""
        halfwidths = np.asarray(halfwidths, dtype=np.float64)
        count = int(halfwidths.size)
        if count == 0:
            return
        met = count if within is None else int(np.count_nonzero(within))
        sum_halfwidth = float(halfwidths.sum())
        max_halfwidth = float(halfwidths.max())
        sum_variance = float(np.asarray(variances, dtype=np.float64).sum())
        with self._lock:
            self._answers += count
            self._within += met
            self._weighted_answers += weight * count
            self._weighted_within += weight * met
            self._sum_halfwidth += sum_halfwidth
            self._max_halfwidth = max(self._max_halfwidth, max_halfwidth)
            self._sum_variance += sum_variance

    def snapshot(self) -> AccuracySnapshot:
        """One consistent read of every accuracy counter."""
        with self._lock:
            return AccuracySnapshot(
                answers=self._answers,
                within_slo=self._within,
                weighted_answers=self._weighted_answers,
                weighted_within=self._weighted_within,
                sum_halfwidth=self._sum_halfwidth,
                max_halfwidth=self._max_halfwidth,
                sum_variance=self._sum_variance,
            )


def required_epsilon(
    slo: AccuracySLO,
    *,
    estimator: str = "L~",
    domain_size: int,
    branching: int = 2,
    range_length: int = 1,
) -> float:
    """Smallest ε whose ``range_length``-query halfwidth meets ``slo``.

    Every estimator's variance scales as ``1/ε²`` (each release is one
    Laplace invocation at scale ``sensitivity/ε``), so the halfwidth at
    any ε is ``halfwidth(ε=1)/ε`` and the inversion is a single division.
    Used by the adaptive allocator to spot shards whose last granted ε
    can no longer honor the tenant's declaration.
    """
    if not 1 <= range_length <= domain_size:
        raise ReproError(
            f"range_length must be in [1, {domain_size}], got {range_length}"
        )
    model = uncertainty_model_for(
        estimator, domain_size=domain_size, epsilon=1.0, branching=branching
    )
    halfwidth_at_unit_epsilon = float(
        model.interval_halfwidths([0], [range_length - 1], slo.confidence)[0]
    )
    return halfwidth_at_unit_epsilon / slo.target_ci_halfwidth
