"""The accuracy control plane: error bars, tenant SLOs, adaptive ε.

The analysis layer computes the paper's exact error expectations
(Theorem 2 bounds, Theorem 4 improvement factors) but the serving stack
historically discarded them: a tenant got a point estimate and nothing
else.  This package closes that loop in three pieces:

* :mod:`repro.accuracy.models` — per-release
  :class:`~repro.accuracy.models.UncertaintyModel` objects that turn
  ``(estimator, ε, branching, domain)`` into the *exact* variance of any
  range answer (identity and served-``H̃`` additively, ``H̄`` via adjoint
  constrained-inference passes, wavelet via the Haar boundary closed
  form), composing across shard pieces exactly like counts do.
* :mod:`repro.accuracy.slo` — tenant-declared
  :class:`~repro.accuracy.slo.AccuracySLO` targets
  (``target_ci_halfwidth`` at ``confidence``), checked on every answered
  batch and folded into fleet statistics and the ``repro_accuracy_*``
  metric families.
* :mod:`repro.accuracy.schedule` — the
  :class:`~repro.accuracy.schedule.AdaptiveEpsilonAllocator`, which
  steers each streaming epoch's refresh set toward the arrival hot set
  and SLO-starved shards while charging exactly the wrapped schedule's
  envelope ε (parallel composition over disjoint shards), keeping Σε
  accounting bit-identical to uniform schedules.

Engines attach ``(variance, ci_lo, ci_hi)`` columns to batch results on
demand; the statistical test suite audits the claimed coverage
empirically at 90/95/99% and rejects mis-scaled variances.
"""

from repro.accuracy.models import (
    AdditiveUncertaintyModel,
    CompositeUncertaintyModel,
    ConstrainedTreeUncertaintyModel,
    UncertaintyModel,
    WaveletUncertaintyModel,
    composite_uncertainty_model,
    gaussian_z,
    laplace_halfwidth,
    uncertainty_model_for,
)
from repro.accuracy.schedule import AdaptiveEpsilonAllocator
from repro.accuracy.slo import (
    AccuracySLO,
    AccuracySnapshot,
    AccuracyStats,
    combine_accuracy_snapshots,
    required_epsilon,
)

__all__ = [
    "UncertaintyModel",
    "AdditiveUncertaintyModel",
    "ConstrainedTreeUncertaintyModel",
    "WaveletUncertaintyModel",
    "CompositeUncertaintyModel",
    "uncertainty_model_for",
    "composite_uncertainty_model",
    "gaussian_z",
    "laplace_halfwidth",
    "AccuracySLO",
    "AccuracySnapshot",
    "AccuracyStats",
    "combine_accuracy_snapshots",
    "required_epsilon",
    "AdaptiveEpsilonAllocator",
]
