"""Adaptive per-shard ε allocation for sharded streaming refresh.

The uniform policy refreshes every shard that saw *any* arrivals, so
under a decaying ε schedule a cold shard's accurate early release keeps
getting replaced by a noisy late-ε rebuild — trickle arrivals destroy
accuracy.  :class:`AdaptiveEpsilonAllocator` instead tracks the arrival
hot set (an exponential moving average per shard) and each epoch grants
the schedule's envelope ε only to the hottest shards (plus any shard
whose last granted ε has fallen below the tenant's SLO requirement);
cold shards keep serving their accurate old release.

**ε invariants** (audited by the ledger tests):

* every per-shard grant satisfies ``0 < grant <= epsilon_for(epoch)``,
  and whenever any shard is granted, at least one grant equals the
  envelope — so by parallel composition over the disjoint shards the
  epoch's privacy cost *is* ``epsilon_for(epoch)``, exactly what the
  uniform policy charges;
* the engine's lineage/budget accounting is untouched: the epoch record
  and the one ``spend()`` both carry the envelope, so Σε lifetime
  accounting is bit-identical to a non-adaptive schedule and
  :class:`repro.obs.ledger.EpsilonLedgerExporter` audits pass unchanged.

The allocator duck-types :class:`repro.streaming.policy.EpsilonSchedule`
(``epsilon_for`` / ``total_through`` delegate to the wrapped schedule)
so it drops into every engine and CLI surface that accepts a schedule.
Engines detect the extra capability through the ``allocates_per_shard``
marker attribute.  The EMA/grant state is advisory only — it steers
*which* shards refresh, never *how much* is charged — so it is owned by
one engine and rebuilt empty on warm restart.
"""

from __future__ import annotations

import math

import numpy as np

from repro.accuracy.slo import AccuracySLO, required_epsilon
from repro.exceptions import ReproError

__all__ = ["AdaptiveEpsilonAllocator"]


class AdaptiveEpsilonAllocator:
    """Hot-set-driven refresh grants under a fixed ε envelope schedule.

    Parameters
    ----------
    schedule:
        The wrapped ε envelope (any ``EpsilonSchedule``); its per-epoch
        ε bounds every grant and is what the engine charges.
    hot_fraction:
        Fraction of shards refreshed per epoch (at least one).
    smoothing:
        EMA coefficient for per-shard arrival rates in ``(0, 1]``;
        1.0 means "this epoch's arrivals only".
    min_refresh_rows:
        Shards with fewer pending rows are never granted (nothing new to
        release).
    slo + slo_estimator + slo_domain_size + slo_branching:
        Optional tenant declaration: shards whose last granted ε is
        below :func:`repro.accuracy.slo.required_epsilon` for this SLO
        jump the EMA ranking (observed SLO slack, spent first).
    """

    #: Capability marker checked by the sharded streaming engine.
    allocates_per_shard = True

    def __init__(
        self,
        schedule,
        *,
        hot_fraction: float = 0.25,
        smoothing: float = 0.5,
        min_refresh_rows: int = 1,
        slo: AccuracySLO | None = None,
        slo_estimator: str = "L~",
        slo_domain_size: int | None = None,
        slo_branching: int = 2,
    ) -> None:
        if not 0.0 < hot_fraction <= 1.0:
            raise ReproError(
                f"hot_fraction must be in (0, 1], got {hot_fraction}"
            )
        if not 0.0 < smoothing <= 1.0:
            raise ReproError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        if min_refresh_rows < 1:
            raise ReproError(
                f"min_refresh_rows must be >= 1, got {min_refresh_rows}"
            )
        if slo is not None and slo_domain_size is None:
            raise ReproError(
                "slo_domain_size is required when an SLO drives allocation"
            )
        self.schedule = schedule
        self.hot_fraction = float(hot_fraction)
        self.smoothing = float(smoothing)
        self.min_refresh_rows = int(min_refresh_rows)
        self.slo = slo
        self._required_epsilon = (
            required_epsilon(
                slo,
                estimator=slo_estimator,
                domain_size=int(slo_domain_size),
                branching=slo_branching,
            )
            if slo is not None
            else 0.0
        )
        # Advisory steering state, owned by the one engine driving this
        # allocator (mutated only under its refresh lock).
        self._arrival_ema: np.ndarray | None = None
        self._last_grant: np.ndarray | None = None

    # -- EpsilonSchedule surface (delegates to the wrapped envelope) ------

    def epsilon_for(self, epoch: int) -> float:
        """The envelope ε for ``epoch`` — the amount the engine charges."""
        return self.schedule.epsilon_for(epoch)

    def total_through(self, epoch: int) -> float:
        """Cumulative envelope ε through ``epoch``."""
        return self.schedule.total_through(epoch)

    # -- adaptive surface --------------------------------------------------

    @property
    def arrival_ema(self) -> np.ndarray | None:
        """The smoothed per-shard arrival rates (None before first epoch)."""
        ema = self._arrival_ema
        return None if ema is None else ema.copy()

    def allocate(
        self, epoch: int, shard_rows, *, bootstrap: bool = False
    ) -> np.ndarray:
        """Per-shard ε grants for ``epoch`` given pending arrival counts.

        Returns an array with ``grants[s] == epsilon_for(epoch)`` for
        shards selected to refresh and ``0.0`` for shards that keep their
        current release.  ``bootstrap=True`` (no release assembled yet)
        grants every shard.  Not thread-safe: call under the engine's
        refresh lock.
        """
        rows = np.asarray(shard_rows, dtype=np.float64)
        if rows.ndim != 1 or rows.size == 0:
            raise ReproError(
                f"shard_rows must be a non-empty vector, got shape "
                f"{rows.shape}"
            )
        envelope = float(self.schedule.epsilon_for(epoch))
        if self._arrival_ema is None or self._arrival_ema.size != rows.size:
            self._arrival_ema = rows.copy()
            self._last_grant = np.zeros(rows.size, dtype=np.float64)
        else:
            self._arrival_ema = (
                self.smoothing * rows
                + (1.0 - self.smoothing) * self._arrival_ema
            )
        grants = np.zeros(rows.size, dtype=np.float64)
        if bootstrap:
            grants[:] = envelope
            self._last_grant[:] = envelope
            return grants
        eligible = rows >= self.min_refresh_rows
        if not np.any(eligible):
            return grants
        budget = max(1, math.ceil(self.hot_fraction * rows.size))
        # Rank eligible shards: SLO-starved first, then hottest EMA, then
        # lowest index — a total order, so the selection is deterministic.
        starved = (
            eligible & (self._last_grant < self._required_epsilon)
            if self.slo is not None
            else np.zeros(rows.size, dtype=bool)
        )
        order = np.lexsort(
            (
                np.arange(rows.size),
                -self._arrival_ema,
                ~starved,
                ~eligible,
            )
        )
        chosen = order[: min(budget, int(np.count_nonzero(eligible)))]
        grants[chosen] = envelope
        self._last_grant[chosen] = envelope
        return grants
