"""Uncertainty models: exact range-query variance for every release shape.

Serving materializes unit counts (``MaterializedRelease``) and answers a
range query by summing them, so the variance of an answer is determined
entirely by the *linear structure* of the estimator that produced the
leaves:

* ``L̃`` (identity) — independent Laplace noise per leaf, so a range of
  ``m`` leaves has variance ``m · 2/ε²``
  (:func:`repro.analysis.theory.error_identity_laplace_range`).
* ``H̃`` (hierarchical, served as leaves) — the served unit counts are
  the noisy *leaf* nodes of the sensitivity-ℓ tree, independent with
  variance ``2ℓ²/ε²`` each
  (:func:`repro.analysis.theory.hierarchical_leaf_variance`), so a range
  again scales linearly in ``m``.
* ``H̄`` (constrained) — Theorem 3 inference makes the leaves correlated;
  the exact variance of ``uᵀ·h̄`` is ``σ² ‖Mᵀu‖²`` where ``M`` is the
  linear inference operator.  :class:`ConstrainedTreeUncertaintyModel`
  evaluates ``Mᵀu`` with adjoint bottom-up/top-down passes that mirror
  :class:`repro.inference.hierarchical.HierarchicalInference` weight for
  weight — O(num_nodes) per query, no operator matrix.
* ``wavelet`` — Haar synthesis cancels every detail coefficient strictly
  inside a range; only the ≤2 boundary nodes per level survive, giving a
  closed form in O(log n) per query.

All models are pure and deterministic: variances are exact functions of
``(estimator, ε, branching, domain_size)`` and integer query bounds, so
equivalence suites can assert bit-identity across serving paths.  The
models deliberately ignore the integer rounding (~1/12 per leaf) and the
Section 4.2 non-negativity heuristic applied by the serving defaults;
both are negligible against mechanism noise on dense data and the
CI-coverage audit in ``tests/statistical`` bounds the residual effect.

Confidence intervals use the Gaussian quantile of the exact variance —
asymptotically correct for ranges (sums of many independent or linearly
mixed Laplace draws) — except single-leaf answers from the additive
models, which are exactly Laplace and get the exact Laplace quantile.
"""

from __future__ import annotations

import math
from statistics import NormalDist

import numpy as np

from repro.analysis.theory import (
    error_identity_laplace_range,
    hierarchical_leaf_variance,
)
from repro.exceptions import ReproError
from repro.queries.hierarchical import TreeLayout
from repro.queries.wavelet import HaarWaveletQuery

__all__ = [
    "UncertaintyModel",
    "AdditiveUncertaintyModel",
    "ConstrainedTreeUncertaintyModel",
    "WaveletUncertaintyModel",
    "CompositeUncertaintyModel",
    "uncertainty_model_for",
    "composite_uncertainty_model",
    "gaussian_z",
    "laplace_halfwidth",
    "CANONICAL_ESTIMATORS",
]

#: Estimator aliases accepted by :func:`uncertainty_model_for` — mirrors
#: the serving tier's ``ESTIMATOR_NAMES`` without importing upward.
CANONICAL_ESTIMATORS = {
    "identity": "L~",
    "hierarchical": "H~",
    "constrained": "H_bar",
    "wavelet": "wavelet",
    "L~": "L~",
    "H~": "H~",
    "H_bar": "H_bar",
}


def gaussian_z(confidence: float) -> float:
    """Two-sided standard-normal quantile: ``P(|Z| <= z) = confidence``."""
    if not 0.0 < confidence < 1.0:
        raise ReproError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    return NormalDist().inv_cdf((1.0 + confidence) / 2.0)


def laplace_halfwidth(variance: float, confidence: float) -> float:
    """Exact two-sided Laplace quantile for a draw with ``variance``.

    ``P(|X| <= t) = 1 - exp(-t/b)`` with ``b = sqrt(variance/2)``, so the
    exact halfwidth is ``t = -b·ln(1 - confidence)``.
    """
    if not 0.0 < confidence < 1.0:
        raise ReproError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    return -math.sqrt(variance / 2.0) * math.log(1.0 - confidence)


def _check_epsilon(epsilon: float) -> float:
    epsilon = float(epsilon)
    if epsilon <= 0.0:
        raise ReproError(f"epsilon must be positive, got {epsilon}")
    return epsilon


def _check_ranges(los, his, domain_size: int) -> tuple[np.ndarray, np.ndarray]:
    los = np.asarray(los, dtype=np.int64)
    his = np.asarray(his, dtype=np.int64)
    if los.shape != his.shape:
        raise ReproError(
            f"los/his shape mismatch: {los.shape} vs {his.shape}"
        )
    if los.size and (
        los.min() < 0 or his.max() >= domain_size or np.any(his < los)
    ):
        raise ReproError(
            f"range bounds must satisfy 0 <= lo <= hi < {domain_size}"
        )
    return los, his


def _padded_size(domain_size: int, branching: int) -> int:
    """Smallest power of ``branching`` that is ``>= domain_size``."""
    padded = 1
    while padded < domain_size:
        padded *= branching
    return padded


class UncertaintyModel:
    """Exact variance (and CI halfwidths) for range queries on one release.

    Subclasses implement :meth:`range_variances`; the default halfwidth is
    the Gaussian quantile of the variance, which subclasses override where
    an exact quantile is available (single-leaf Laplace answers).
    """

    #: Canonical estimator name this model describes (``"L~"`` …).
    kind: str = "?"

    def range_variances(self, los, his) -> np.ndarray:
        """Variance of the range sums ``[lo, hi]`` (inclusive bounds)."""
        raise NotImplementedError

    def interval_halfwidths(
        self, los, his, confidence: float, *, variances=None
    ) -> np.ndarray:
        """CI halfwidths at ``confidence``; pass ``variances`` to reuse."""
        if variances is None:
            variances = self.range_variances(los, his)
        return gaussian_z(confidence) * np.sqrt(variances)


class AdditiveUncertaintyModel(UncertaintyModel):
    """Independent per-leaf noise: ``Var([lo, hi]) = m · leaf_variance``.

    Covers ``L̃`` and the served-leaves form of ``H̃``.  The range length
    ``m`` is computed as an exact integer and scaled by ``leaf_variance``
    in one multiply, so the result is bit-identical no matter how a range
    is split across shards (``m₁·v + m₂·v`` need not equal ``(m₁+m₂)·v``
    in floats; ``m`` summed first always does).
    """

    def __init__(
        self,
        leaf_variance: float,
        domain_size: int,
        *,
        kind: str,
        unit_laplace: bool = True,
    ) -> None:
        if leaf_variance <= 0.0:
            raise ReproError(
                f"leaf variance must be positive, got {leaf_variance}"
            )
        self.leaf_variance = float(leaf_variance)
        self.domain_size = int(domain_size)
        self.kind = kind
        #: Single-leaf answers are exactly Laplace — grants the exact
        #: quantile in :meth:`interval_halfwidths`.
        self.unit_laplace = bool(unit_laplace)

    def range_variances(self, los, his) -> np.ndarray:
        los, his = _check_ranges(los, his, self.domain_size)
        lengths = his - los + 1
        return lengths.astype(np.float64) * self.leaf_variance

    def interval_halfwidths(
        self, los, his, confidence: float, *, variances=None
    ) -> np.ndarray:
        los, his = _check_ranges(los, his, self.domain_size)
        if variances is None:
            variances = self.range_variances(los, his)
        half = gaussian_z(confidence) * np.sqrt(variances)
        if self.unit_laplace:
            unit = his == los
            if np.any(unit):
                half = np.where(
                    unit,
                    laplace_halfwidth(self.leaf_variance, confidence),
                    half,
                )
        return half


class ConstrainedTreeUncertaintyModel(UncertaintyModel):
    """Exact ``H̄`` range variance via adjoint constrained-inference passes.

    The served leaves are ``h̄ = M·h̃`` where ``h̃`` carries i.i.d. Laplace
    noise of variance ``σ² = 2ℓ²/ε²`` per node, so a range indicator ``u``
    has ``Var(uᵀh̄) = σ²‖Mᵀu‖²``.  ``Mᵀu`` is evaluated by running the
    bottom-up/top-down recurrences of
    :class:`~repro.inference.hierarchical.HierarchicalInference` in
    reverse with the same per-level weights — O(num_nodes) per query,
    batched over query chunks.
    """

    kind = "H_bar"

    def __init__(
        self, domain_size: int, epsilon: float, branching: int = 2
    ) -> None:
        self.domain_size = int(domain_size)
        self.epsilon = _check_epsilon(epsilon)
        self.branching = int(branching)
        self.padded_size = _padded_size(self.domain_size, self.branching)
        self.layout = TreeLayout(self.padded_size, branching=self.branching)
        self.node_variance = hierarchical_leaf_variance(
            self.layout.height, self.epsilon
        )

    def range_variances(self, los, his) -> np.ndarray:
        los, his = _check_ranges(los, his, self.domain_size)
        flat_los = los.reshape(-1)
        flat_his = his.reshape(-1)
        out = np.empty(flat_los.size, dtype=np.float64)
        # Chunk so per-level scratch stays ~tens of MB on huge trees.
        chunk = max(1, (1 << 22) // max(1, self.layout.num_nodes))
        for start in range(0, flat_los.size, chunk):
            stop = min(start + chunk, flat_los.size)
            out[start:stop] = self._chunk_variances(
                flat_los[start:stop], flat_his[start:stop]
            )
        return out.reshape(los.shape)

    def _chunk_variances(self, los: np.ndarray, his: np.ndarray) -> np.ndarray:
        k = self.layout.branching
        height = self.layout.height
        queries = los.size
        leaves = self.padded_size
        # Range indicators over the padded leaf domain via a diff/cumsum.
        diff = np.zeros((queries, leaves + 1), dtype=np.float64)
        rows = np.arange(queries)
        diff[rows, los] = 1.0
        diff[rows, his + 1] -= 1.0
        u = np.cumsum(diff[:, :leaves], axis=1)

        def childsum(level_values: np.ndarray) -> np.ndarray:
            return level_values.reshape(queries, -1, k).sum(axis=2)

        # Adjoint of the top-down pass: h[λ] = z[λ] + R((h[λ-1] - S z[λ])/k)
        # with R = repeat-k and S = child-sum (R and S are adjoint to each
        # other, and R∘S is self-adjoint).
        zbar: list[np.ndarray] = [np.empty(0)] * height
        ubar = u
        for level in range(height - 1, 0, -1):
            folded = childsum(ubar)
            zbar[level] = ubar - np.repeat(folded / k, k, axis=1)
            ubar = folded / k
        zbar[0] = ubar  # h[0] = z[0]: the root's pull arrives unchanged

        # Adjoint of the bottom-up pass: z[λ] = a_λ·h̃[λ] + c_λ·S(z[λ+1]).
        # Accumulate top-down so each level inherits its parent's pull.
        total = np.zeros(queries, dtype=np.float64)
        wbar = zbar[0]
        for level in range(height):
            node_height = height - level  # leaves have height 1
            k_l = float(k**node_height)
            k_lm1 = float(k ** (node_height - 1))
            own_weight = (k_l - k_lm1) / (k_l - 1.0) if k_l > 1.0 else 1.0
            gradient = own_weight * wbar
            total += np.einsum("ij,ij->i", gradient, gradient)
            if level + 1 < height:
                child_weight = (k_lm1 - 1.0) / (k_l - 1.0)
                wbar = zbar[level + 1] + np.repeat(
                    child_weight * wbar, k, axis=1
                )
        return self.node_variance * total


class WaveletUncertaintyModel(UncertaintyModel):
    """Exact Privelet range variance from the Haar boundary decomposition.

    Haar synthesis gives ``leaf_j = c₀ ± c_{l,i(j)}`` per level, so a
    range sum weights the base coefficient by the range length ``m`` and
    each detail coefficient by ``|range ∩ left half| - |range ∩ right
    half|`` of its node — zero for nodes strictly inside or outside the
    range, leaving at most the two boundary nodes per level::

        Var = 2·b₀²·m² + Σ_level 2·b_level²·(w_lo² + w_hi²)

    with the Laplace noise scales from
    :meth:`repro.queries.wavelet.HaarWaveletQuery.coefficient_scales`.
    The model runs on the power-of-two *padded* domain, exactly like
    :class:`repro.estimators.wavelet.WaveletEstimator`.
    """

    kind = "wavelet"

    def __init__(self, domain_size: int, epsilon: float) -> None:
        self.domain_size = int(domain_size)
        self.epsilon = _check_epsilon(epsilon)
        self.padded_size = _padded_size(self.domain_size, 2)
        query = HaarWaveletQuery(self.padded_size)
        base_scale, detail_scales = query.coefficient_scales(self.epsilon)
        self.base_variance = 2.0 * base_scale**2
        self.detail_variances = tuple(
            2.0 * scale**2 for scale in detail_scales
        )

    def range_variances(self, los, his) -> np.ndarray:
        los, his = _check_ranges(los, his, self.domain_size)
        lengths = (his - los + 1).astype(np.float64)
        variances = self.base_variance * lengths * lengths
        for level, detail_variance in enumerate(self.detail_variances):
            width = self.padded_size >> level
            half = width >> 1
            lo_node = los // width
            hi_node = his // width
            lo_start = lo_node * width
            hi_start = hi_node * width
            same = lo_node == hi_node
            # Boundary node containing `lo` clipped at its right edge (or
            # at `hi` when both bounds share the node).
            lo_clip_hi = np.where(same, his, lo_start + width - 1)
            w_lo = self._node_weight(lo_start, half, los, lo_clip_hi)
            # Boundary node containing `hi` clipped at its left edge.
            w_hi = np.where(
                same, 0, self._node_weight(hi_start, half, hi_start, his)
            )
            variances = variances + detail_variance * (
                w_lo.astype(np.float64) ** 2 + w_hi.astype(np.float64) ** 2
            )
        return variances

    @staticmethod
    def _node_weight(node_start, half, lo, hi) -> np.ndarray:
        """``|[lo,hi] ∩ left half| - |[lo,hi] ∩ right half|`` per node."""
        mid = node_start + half
        left = np.maximum(0, np.minimum(hi, mid - 1) - lo + 1)
        right = np.maximum(0, hi - np.maximum(lo, mid) + 1)
        return left - right


class CompositeUncertaintyModel(UncertaintyModel):
    """Variance over a sharded release: sum the per-shard piece variances.

    Shards draw independent noise, so a range decomposes across shard
    boundaries exactly like the router decomposes counts and the
    variances of the pieces add.  Shard geometry is passed as the plain
    ``starts`` offsets array (no dependency on the sharding tier).
    """

    def __init__(
        self, starts, domain_size: int, models: list[UncertaintyModel]
    ) -> None:
        self.starts = np.asarray(starts, dtype=np.int64)
        self.domain_size = int(domain_size)
        if self.starts.ndim != 1 or self.starts.size != len(models):
            raise ReproError(
                f"expected one model per shard start, got {self.starts.size} "
                f"starts and {len(models)} models"
            )
        self.models = list(models)
        self.kind = models[0].kind if models else "?"

    def range_variances(self, los, his) -> np.ndarray:
        los, his = _check_ranges(los, his, self.domain_size)
        num_shards = self.starts.size
        ends = np.append(self.starts[1:], self.domain_size) - 1
        lo_shards = np.searchsorted(self.starts, los, side="right") - 1
        hi_shards = np.searchsorted(self.starts, his, side="right") - 1
        variances = np.zeros(los.shape, dtype=np.float64)
        for shard in range(num_shards):
            overlap = (lo_shards <= shard) & (shard <= hi_shards)
            if not np.any(overlap):
                continue
            local_lo = np.maximum(los, self.starts[shard]) - self.starts[shard]
            local_hi = np.minimum(his, ends[shard]) - self.starts[shard]
            # Clamp non-overlapping queries to a valid dummy range; their
            # contribution is masked out below.
            safe_lo = np.where(overlap, local_lo, 0)
            safe_hi = np.where(overlap, local_hi, 0)
            piece = self.models[shard].range_variances(safe_lo, safe_hi)
            variances += np.where(overlap, piece, 0.0)
        return variances


def uncertainty_model_for(
    estimator: str,
    *,
    domain_size: int,
    epsilon: float,
    branching: int = 2,
) -> UncertaintyModel:
    """The exact uncertainty model for one release's parameters."""
    canonical = CANONICAL_ESTIMATORS.get(estimator)
    if canonical is None:
        raise ReproError(
            f"unknown estimator {estimator!r}; expected one of "
            f"{sorted(CANONICAL_ESTIMATORS)}"
        )
    epsilon = _check_epsilon(epsilon)
    if canonical == "L~":
        return AdditiveUncertaintyModel(
            error_identity_laplace_range(1, epsilon),
            domain_size,
            kind="L~",
        )
    if canonical == "H~":
        padded = _padded_size(domain_size, branching)
        height = TreeLayout(padded, branching=branching).height
        return AdditiveUncertaintyModel(
            hierarchical_leaf_variance(height, epsilon),
            domain_size,
            kind="H~",
        )
    if canonical == "H_bar":
        return ConstrainedTreeUncertaintyModel(
            domain_size, epsilon, branching=branching
        )
    return WaveletUncertaintyModel(domain_size, epsilon)


def composite_uncertainty_model(
    starts,
    domain_size: int,
    estimator: str,
    epsilons,
    *,
    branching: int = 2,
) -> UncertaintyModel:
    """Uncertainty model for a sharded release (one ε per shard).

    Builds one per-shard model over each shard's local domain and
    composes them.  When every shard model is additive with the *same*
    per-leaf variance the composition collapses to one global additive
    model, which makes the reported variance bit-identical across shard
    counts (the range length is summed as an integer before the one
    float multiply).
    """
    starts = np.asarray(starts, dtype=np.int64)
    epsilons = [float(epsilon) for epsilon in epsilons]
    if starts.size != len(epsilons):
        raise ReproError(
            f"expected one ε per shard, got {starts.size} starts and "
            f"{len(epsilons)} epsilons"
        )
    ends = np.append(starts[1:], domain_size)
    models = [
        uncertainty_model_for(
            estimator,
            domain_size=int(ends[shard] - starts[shard]),
            epsilon=epsilons[shard],
            branching=branching,
        )
        for shard in range(starts.size)
    ]
    additive = [
        model for model in models if isinstance(model, AdditiveUncertaintyModel)
    ]
    if len(additive) == len(models) and models:
        leaf_variances = {model.leaf_variance for model in additive}
        if len(leaf_variances) == 1:
            return AdditiveUncertaintyModel(
                additive[0].leaf_variance,
                domain_size,
                kind=additive[0].kind,
                unit_laplace=additive[0].unit_laplace,
            )
    return CompositeUncertaintyModel(starts, domain_size, models)
