"""Machine-readable ε-ledger reports with built-in consistency audits.

The privacy guarantee of a long-lived deployment *is* its spend trail:
the interaction is (Σεᵢ)-DP for the εᵢ actually charged.  The
:class:`EpsilonLedgerExporter` renders that trail — per budget, per
stream (including the cross-restart lineage ledger), or across a whole
fleet — as a plain-dict audit report, and refuses to export a ledger
that fails its own cross-checks:

* the budget's O(1) running total must be **bit-equal** to re-summing
  its recorded history left to right (the
  :func:`~repro.privacy.audit.audit_spend_trail` drift check);
* a stream's in-process charges must match the tail of its durable
  lineage ε-for-ε, with every label carrying the ``epoch`` prefix —
  proving no epoch double-charged and no charge bypassed the lineage;
* an explicit expected schedule, when supplied, is enforced exactly.

Everything in a report is derived from accounting outputs (labels, ε
values, lineage identities) — never from true counts — so reports are
safe to persist, ship, and diff.
"""

from __future__ import annotations

import json

from repro.exceptions import ExperimentError
from repro.privacy.audit import audit_spend_trail

__all__ = ["LEDGER_REPORT_VERSION", "EpsilonLedgerExporter"]

#: Version of the ledger report schema; bump when the layout changes.
LEDGER_REPORT_VERSION = 1


class EpsilonLedgerExporter:
    """Renders :class:`~repro.privacy.budget.PrivacyBudget` spend trails.

    Stateless; every method takes the accountant (budget, stream, or
    fleet) to export and returns a JSON-ready dict.
    """

    # -- single budget ---------------------------------------------------------

    def budget_report(
        self,
        budget,
        name: str = "budget",
        expected_epsilons=None,
        label_prefix: str | None = None,
    ) -> dict:
        """One budget's full spend trail, cross-checked before export.

        ``expected_epsilons`` / ``label_prefix`` forward to
        :func:`~repro.privacy.audit.audit_spend_trail` for an exact
        schedule audit; without them only the running-total drift check
        runs.  Raises :class:`~repro.exceptions.ExperimentError` on any
        discrepancy — a ledger that fails its own audit must never be
        exported as if it were sound.
        """
        history = budget.history
        checks = ["running-total"]
        if expected_epsilons is not None:
            audit_spend_trail(budget, expected_epsilons, label_prefix=label_prefix)
            checks.append("schedule")
        resummed = 0.0
        for spend in history:
            resummed += spend.epsilon
        if resummed != budget.spent_epsilon:
            raise ExperimentError(
                f"budget {name!r} reports spent ε={budget.spent_epsilon!r} but "
                f"its history re-sums to {resummed!r}; refusing to export a "
                f"drifted ledger"
            )
        return {
            "kind": "budget",
            "name": name,
            "total_epsilon": budget.total.epsilon,
            "delta": budget.total.delta,
            "spent_epsilon": budget.spent_epsilon,
            "remaining_epsilon": budget.remaining_epsilon,
            "spends": [
                {"label": spend.label, "epsilon": spend.epsilon}
                for spend in history
            ],
            "checks": checks,
        }

    # -- streams ---------------------------------------------------------------

    def stream_report(self, stream, name: str | None = None) -> dict:
        """A streaming tenant's ledger: lineage plus in-process budget.

        Works for both the monolithic and the sharded streaming engine
        (anything exposing ``name``, ``budget``, and ``lineage`` with
        epoch records).  The in-process spends are audited against the
        *tail* of the lineage — after a warm restart the process budget
        holds only the epochs built since, and each must match its
        lineage record's ε exactly under an ``epoch`` label prefix.
        """
        name = stream.name if name is None else name
        records = stream.lineage.records
        history = stream.budget.history
        if len(history) > len(records):
            raise ExperimentError(
                f"stream {name!r} charged {len(history)} epochs in-process but "
                f"its lineage records only {len(records)}; a charge bypassed "
                f"the lineage"
            )
        tail = [record.epsilon for record in records[len(records) - len(history):]]
        report = self.budget_report(
            stream.budget,
            name=name,
            expected_epsilons=tail,
            label_prefix="epoch" if history else None,
        )
        report["kind"] = "stream"
        report["checks"].append("lineage-tail")
        report["lifetime_spent_epsilon"] = stream.lineage.spent_epsilon
        report["epochs"] = [self._epoch_entry(record) for record in records]
        return report

    @staticmethod
    def _epoch_entry(record) -> dict:
        entry = {
            "epoch": record.epoch,
            "epsilon": record.epsilon,
            "rows_ingested": record.rows_ingested,
            "total_rows": record.total_rows,
        }
        refreshed = getattr(record, "refreshed", None)
        if refreshed is not None:
            entry["refreshed_shards"] = list(refreshed)
        return entry

    # -- fleets ----------------------------------------------------------------

    def fleet_report(self, fleet) -> dict:
        """Every tenant's ledger plus fleet-wide totals.

        Tenants are reported in sorted-name order; the fleet totals sum
        the per-tenant totals in that same order, so the report is a
        deterministic function of the fleet's accounting state.
        """
        stream_names = set(fleet.stream_names())
        datasets = {}
        spent = 0.0
        total = 0.0
        for name in fleet.names():
            if name in stream_names:
                datasets[name] = self.stream_report(fleet.stream(name))
            else:
                datasets[name] = self.budget_report(
                    fleet.engine(name).budget, name=name
                )
            spent += datasets[name]["spent_epsilon"]
            total += datasets[name]["total_epsilon"]
        return {
            "report": "epsilon-ledger",
            "version": LEDGER_REPORT_VERSION,
            "datasets": datasets,
            "total_spent_epsilon": spent,
            "total_budget_epsilon": total,
        }

    # -- rendering -------------------------------------------------------------

    @staticmethod
    def render_json(report: dict) -> str:
        """A report as deterministic, bit-faithful JSON text.

        ``json`` round-trips float64 exactly (repr-based), so the ε
        totals a consumer parses back are bit-equal to the accountant's.
        """
        return json.dumps(report, indent=2, sort_keys=True)
