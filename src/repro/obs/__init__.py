"""End-to-end observability: metrics, span tracing, and ε-ledger export.

This package is the telemetry substrate of the serving stack.  It owns
three independent primitives —

* :class:`~repro.obs.metrics.MetricsRegistry`: thread-safe counters,
  gauges, and fixed-bucket latency histograms, exportable as Prometheus
  text exposition or JSON;
* :class:`~repro.obs.trace.Tracer`: context-managed spans with monotonic
  timings, per-thread nesting, a ring buffer, and an optional JSON-lines
  file sink;
* :class:`~repro.obs.ledger.EpsilonLedgerExporter`: machine-readable
  audit reports of any :class:`~repro.privacy.budget.PrivacyBudget`
  spend trail, cross-checked against the durable stream lineages —

plus the module-level default registry/tracer the engines report into.

**The no-op fast path is the contract.**  Observability is *disabled* by
default; every instrumented call site in the serving, streaming, and
sharding engines guards with ``if obs.enabled():`` before touching the
registry or tracer, so a disabled deployment pays one module-attribute
read and a branch per site — zero allocations, zero calls into the
telemetry objects, and bit-identical answers.  Enabling at runtime
(:func:`enable`, or the :func:`session` context manager the CLI uses)
flips the single flag; nothing about the engines changes shape.

This package must stay import-free of the engine layers (``serving``,
``streaming``, ``sharding`` import *it*, never the reverse).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.ledger import LEDGER_REPORT_VERSION, EpsilonLedgerExporter
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.obs.trace import SpanEvent, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "LEDGER_REPORT_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanEvent",
    "Tracer",
    "EpsilonLedgerExporter",
    "parse_prometheus_text",
    "enabled",
    "enable",
    "disable",
    "registry",
    "tracer",
    "set_registry",
    "set_tracer",
    "reset",
    "session",
]

_enabled: bool = False
_registry: MetricsRegistry = MetricsRegistry()
_tracer: Tracer = Tracer()


def enabled() -> bool:
    """Whether instrumented call sites should report (the hot-path gate)."""
    return _enabled


def enable() -> None:
    """Turn on reporting into the current default registry and tracer."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn off reporting; the registry and tracer keep their contents."""
    global _enabled
    _enabled = False


def registry() -> MetricsRegistry:
    """The default registry instrumented call sites report into."""
    return _registry


def tracer() -> Tracer:
    """The default tracer instrumented call sites open spans on."""
    return _tracer


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Install ``new`` as the default registry, returning the previous one.

    Independent of :func:`enabled` on purpose: tests install counting
    doubles while observability stays disabled to prove the no-op fast
    path really performs zero telemetry calls.
    """
    global _registry
    previous, _registry = _registry, new
    return previous


def set_tracer(new: Tracer) -> Tracer:
    """Install ``new`` as the default tracer, returning the previous one."""
    global _tracer
    previous, _tracer = _tracer, new
    return previous


def reset() -> None:
    """Disable reporting and replace the defaults with fresh, empty ones."""
    global _enabled, _registry, _tracer
    _enabled = False
    _registry = MetricsRegistry()
    _tracer = Tracer()


@contextmanager
def session(trace_sink=None, trace_capacity: int = 4096):
    """Enable observability into fresh defaults for one scoped workload.

    Yields ``(registry, tracer)``; on exit the previous defaults and
    enabled state are restored exactly, so a CLI command (or test) can
    collect an isolated set of metrics without leaking state into the
    process-wide defaults.
    """
    global _enabled
    fresh_registry = MetricsRegistry()
    fresh_tracer = Tracer(capacity=trace_capacity, sink=trace_sink)
    previous_registry = set_registry(fresh_registry)
    previous_tracer = set_tracer(fresh_tracer)
    previous_enabled = _enabled
    _enabled = True
    try:
        yield fresh_registry, fresh_tracer
    finally:
        _enabled = previous_enabled
        set_registry(previous_registry)
        set_tracer(previous_tracer)
