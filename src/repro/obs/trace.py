"""Span-based tracing with monotonic timings and a bounded event buffer.

A :class:`Tracer` hands out context-managed *spans*::

    with tracer.span("build_release", estimator="H_bar", shard=3):
        ...

Each span records a monotonic (``perf_counter``) start offset and
duration, its nesting depth and parent (tracked per thread, so
concurrent builds do not interleave each other's stacks), and arbitrary
key/value attributes.  Closed spans become immutable
:class:`SpanEvent` rows in a ring buffer (``deque(maxlen=...)``: old
events fall off, tracing never grows without bound) and, when a file
sink is attached, one JSON line per event — the JSON-lines stream a log
shipper tails.

Spans whose body raises still close (and are flagged ``error=True``),
so a failed epoch build leaves the same timing evidence as a successful
one.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

__all__ = ["SpanEvent", "Tracer"]


@dataclass(frozen=True)
class SpanEvent:
    """One closed span: identity, nesting, monotonic timing, attributes."""

    span_id: int
    name: str
    #: span id of the enclosing span on the same thread, or ``None``
    parent_id: int | None
    #: nesting depth on the recording thread (0 for a root span)
    depth: int
    #: monotonic seconds since the tracer was created
    start_offset: float
    duration: float
    thread: str
    error: bool = False
    attributes: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_offset": self.start_offset,
            "duration": self.duration,
            "thread": self.thread,
            "error": self.error,
            "attributes": self.attributes,
        }


class Tracer:
    """Thread-safe span recorder: ring buffer plus optional JSON-lines sink.

    Parameters
    ----------
    capacity:
        Maximum events retained in memory; older events are dropped
        oldest-first (the file sink, when present, keeps everything).
    sink:
        Optional path of a JSON-lines file; every closed span is appended
        as one JSON object per line.
    """

    def __init__(self, capacity: int = 4096, sink=None) -> None:
        self.capacity = int(capacity)
        self.sink = Path(sink) if sink is not None else None
        self._origin = perf_counter()
        self._events: deque[SpanEvent] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._next_id = 0
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **attributes):
        """Open a named span; closes (and records) when the block exits."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        depth = len(stack)
        stack.append(span_id)
        start = perf_counter()
        error = False
        try:
            yield
        except BaseException:
            error = True
            raise
        finally:
            duration = perf_counter() - start
            stack.pop()
            event = SpanEvent(
                span_id=span_id,
                name=str(name),
                parent_id=parent_id,
                depth=depth,
                start_offset=start - self._origin,
                duration=duration,
                thread=threading.current_thread().name,
                error=error,
                attributes=dict(attributes),
            )
            self._record(event)

    def _record(self, event: SpanEvent) -> None:
        line = None
        if self.sink is not None:
            line = json.dumps(event.to_json(), sort_keys=True)
        with self._lock:
            self._events.append(event)
            if line is not None:
                with open(self.sink, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")

    # -- introspection ---------------------------------------------------------

    def events(self, name: str | None = None) -> list[SpanEvent]:
        """Retained events oldest-first, optionally filtered by span name."""
        with self._lock:
            events = list(self._events)
        if name is not None:
            events = [event for event in events if event.name == name]
        return events

    def clear(self) -> None:
        """Drop every retained event (the file sink is left untouched)."""
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Tracer(events={len(self)}, capacity={self.capacity}, "
            f"sink={str(self.sink) if self.sink else None!r})"
        )
