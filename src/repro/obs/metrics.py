"""Thread-safe metric families: counters, gauges, latency histograms.

A :class:`MetricsRegistry` owns a set of named metric *families*, each
holding one sample per label combination.  Families are created lazily
(``registry.counter("repro_cache_hits_total")`` returns the existing
family or registers it) and every mutation is lock-protected, so hot
paths on many threads can share one default registry.

Two export surfaces, both read-consistent per family:

* :meth:`MetricsRegistry.render_prometheus` — the text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
  histogram ``_bucket``/``_sum``/``_count`` series with a ``+Inf``
  bucket);
* :meth:`MetricsRegistry.snapshot` — a plain-dict JSON document, the
  machine-readable twin the CLI's unified stats renderer consumes.

:func:`parse_prometheus_text` is the validating inverse used by the
tests and the CI gate: it parses an exposition document back into
samples and raises :class:`ValueError` on any malformed line.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left

from repro.exceptions import ReproError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
]

#: Default histogram buckets (seconds): sub-millisecond serving latencies
#: through multi-second cold builds, plus the implicit +Inf bucket.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _validate_name(name: str) -> str:
    if not _METRIC_NAME.match(name or ""):
        raise ReproError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: dict) -> tuple:
    """Canonical (sorted) label tuple; validates names, stringifies values."""
    items = []
    for key in sorted(labels):
        if not _LABEL_NAME.match(key):
            raise ReproError(f"invalid label name {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(label_items: tuple, extra: tuple = ()) -> str:
    pairs = [*label_items, *extra]
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in pairs
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


class _Family:
    """Shared plumbing: name, help text, lock, per-label-set samples.

    The first observation fixes the family's label-name set; later
    observations with a different set raise, matching the Prometheus rule
    that one family exposes one label schema.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _validate_name(name)
        self.help = str(help)
        self._lock = threading.Lock()
        self._samples: dict = {}  # guarded-by: _lock
        self._label_names: tuple | None = None  # guarded-by: _lock
        #: raw kwargs-item tuple -> validated sample key; instrumented hot
        #: paths pass the same literal labels every call, so resolution is
        #: one dict hit instead of sort + regex + stringify per update
        self._resolve_cache: dict = {}  # guarded-by: _lock

    def _resolve_locked(self, labels: dict) -> tuple:
        try:
            cache_key = tuple(labels.items())
            cached = self._resolve_cache.get(cache_key)
        except TypeError:  # unhashable label value; take the slow path
            cache_key = None
            cached = None
        if cached is not None:
            return cached
        key = _label_key(labels)
        names = tuple(name for name, _ in key)
        if self._label_names is None:
            self._label_names = names
        elif names != self._label_names:
            raise ReproError(
                f"metric {self.name!r} expects labels {self._label_names}, "
                f"got {names}"
            )
        if cache_key is not None and len(self._resolve_cache) < 4096:
            self._resolve_cache[cache_key] = key
        return key

    def labelsets(self) -> list:
        with self._lock:
            return list(self._samples)


class Counter(_Family):
    """A monotonically increasing sum, per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (>= 0) to the labeled sample."""
        if amount < 0:
            raise ReproError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        with self._lock:
            key = self._resolve_locked(labels)
            self._samples[key] = self._samples.get(key, 0.0) + float(amount)

    def value(self, **labels) -> float:
        """The labeled sample's current value (0 before any increment)."""
        with self._lock:
            return float(self._samples.get(_label_key(labels), 0.0))


class Gauge(_Family):
    """A value that can go up and down, per label set."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set the labeled sample to ``value``."""
        with self._lock:
            key = self._resolve_locked(labels)
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative) to the labeled sample."""
        with self._lock:
            key = self._resolve_locked(labels)
            self._samples[key] = self._samples.get(key, 0.0) + float(amount)

    def value(self, **labels) -> float:
        """The labeled sample's current value (0 before any set)."""
        with self._lock:
            return float(self._samples.get(_label_key(labels), 0.0))


class Histogram(_Family):
    """Fixed-bucket cumulative histogram (latencies by default).

    Each labeled sample keeps one count per finite bucket upper bound
    plus the implicit ``+Inf`` bucket, a running sum, and a total count —
    exactly the ``_bucket`` / ``_sum`` / ``_count`` series Prometheus
    expects.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets=None) -> None:
        super().__init__(name, help)
        bounds = tuple(
            float(b) for b in (DEFAULT_LATENCY_BUCKETS if buckets is None else buckets)
        )
        if not bounds:
            raise ReproError(f"histogram {name!r} needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ReproError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the labeled sample."""
        value = float(value)
        with self._lock:
            key = self._resolve_locked(labels)
            sample = self._samples.get(key)
            if sample is None:
                sample = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._samples[key] = sample
            # first bound >= value, or the +Inf slot past the last bound
            placed = bisect_left(self.buckets, value)
            sample["counts"][placed] += 1
            sample["sum"] += value
            sample["count"] += 1

    def count(self, **labels) -> int:
        """Total observations recorded for the labeled sample."""
        with self._lock:
            sample = self._samples.get(_label_key(labels))
            return int(sample["count"]) if sample is not None else 0

    def sum(self, **labels) -> float:
        """Sum of all observed values for the labeled sample."""
        with self._lock:
            sample = self._samples.get(_label_key(labels))
            return float(sample["sum"]) if sample is not None else 0.0


class MetricsRegistry:
    """A named collection of metric families with two export formats."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}  # guarded-by: _lock

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help, **kwargs)
                self._families[name] = family
                return family
        if not isinstance(family, cls):
            raise ReproError(
                f"metric {name!r} is a {family.kind}, not a {cls.kind}"
            )
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter family named ``name``, registering it if new."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge family named ``name``, registering it if new."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "", buckets=None) -> Histogram:
        """The histogram family named ``name``, registering it if new."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def families(self) -> list[_Family]:
        """Registered families, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """Counter/gauge convenience lookup; ``default`` when unregistered."""
        with self._lock:
            family = self._families.get(name)
        if family is None:
            return default
        if not isinstance(family, (Counter, Gauge)):
            raise ReproError(f"metric {name!r} is a {family.kind}, not scalar")
        return family.value(**labels)

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """Every family's samples as a JSON-ready document."""
        document: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for family in self.families():
            with family._lock:
                samples = {key: value for key, value in family._samples.items()}
            if isinstance(family, Histogram):
                document["histograms"][family.name] = {
                    "help": family.help,
                    "buckets": list(family.buckets),
                    "samples": [
                        {
                            "labels": dict(key),
                            "counts": list(sample["counts"]),
                            "sum": sample["sum"],
                            "count": sample["count"],
                        }
                        for key, sample in samples.items()
                    ],
                }
            else:
                section = "counters" if isinstance(family, Counter) else "gauges"
                document[section][family.name] = {
                    "help": family.help,
                    "samples": [
                        {"labels": dict(key), "value": value}
                        for key, value in samples.items()
                    ],
                }
        return document

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            with family._lock:
                samples = {key: value for key, value in family._samples.items()}
            if isinstance(family, Histogram):
                for key, sample in samples.items():
                    cumulative = 0
                    for bound, count in zip(
                        (*family.buckets, math.inf), sample["counts"]
                    ):
                        cumulative += count
                        labels = _render_labels(
                            key, (("le", _format_value(bound)),)
                        )
                        lines.append(
                            f"{family.name}_bucket{labels} {cumulative}"
                        )
                    lines.append(
                        f"{family.name}_sum{_render_labels(key)} "
                        f"{_format_value(sample['sum'])}"
                    )
                    lines.append(
                        f"{family.name}_count{_render_labels(key)} "
                        f"{sample['count']}"
                    )
            else:
                for key, value in samples.items():
                    lines.append(
                        f"{family.name}{_render_labels(key)} "
                        f"{_format_value(value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>.*)"$')


def _split_label_body(body: str) -> list[str]:
    """Split a label body on commas that are outside quoted values."""
    pairs, current, in_quotes, escaped = [], [], False, False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
        if char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        pairs.append("".join(current))
    return [pair.strip() for pair in pairs if pair.strip()]


def parse_prometheus_text(text: str) -> dict:
    """Parse (and validate) a Prometheus text exposition document.

    Returns ``{(name, ((label, value), ...)): float}`` with labels in
    document order.  Raises :class:`ValueError` on any line that is not a
    valid comment, sample, or blank — the teeth behind the CI gate that
    ``export-metrics`` output really is exposition format.
    """
    samples: dict = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(
                    f"line {lineno}: malformed comment {raw!r} "
                    f"(expected '# HELP name ...' or '# TYPE name kind')"
                )
            if parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in (
                    "counter",
                    "gauge",
                    "histogram",
                    "summary",
                    "untyped",
                ):
                    raise ValueError(
                        f"line {lineno}: unknown metric type in {raw!r}"
                    )
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        labels = []
        body = match.group("labels")
        if body:
            for pair in _split_label_body(body):
                pair_match = _LABEL_PAIR.match(pair)
                if pair_match is None:
                    raise ValueError(
                        f"line {lineno}: malformed label pair {pair!r}"
                    )
                labels.append(
                    (pair_match.group("name"), pair_match.group("value"))
                )
        value_text = match.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as error:
            raise ValueError(
                f"line {lineno}: malformed value {value_text!r}"
            ) from error
        samples[(match.group("name"), tuple(labels))] = value
    if not samples:
        raise ValueError("document contains no samples")
    return samples
