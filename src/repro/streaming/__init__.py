"""Streaming ingestion and epoch-based incremental release.

The serving tier (:mod:`repro.serving`) answers millions of range queries
from one materialized release; this package keeps that release *fresh*
while rows keep arriving, without ever weakening the privacy story:

* :class:`IngestBuffer` — owner-side, thread-safe accumulation of row
  arrivals into a per-bucket delta vector, one vectorized ``bincount``
  pass per batch (:mod:`repro.streaming.buffer`);
* :class:`RowCountPolicy` / :class:`ManualRefreshPolicy` — when the
  backlog justifies a new epoch, and :class:`FixedEpsilonSchedule` /
  :class:`GeometricEpsilonSchedule` — the ε each epoch may spend under
  sequential composition (:mod:`repro.streaming.policy`);
* :class:`EpochRecord` / :class:`EpochLineage` — the durable,
  shareable ledger of every epoch's release identity and ε charge
  (:mod:`repro.streaming.lineage`);
* :class:`StreamingHistogramEngine` — the façade: ingest, advance epochs
  (inline or on a background build thread), keep answering every batch
  from one immutable epoch snapshot, and warm-restart from the stored
  lineage with zero ε (:mod:`repro.streaming.engine`).

For massive domains the sharded sibling
:class:`~repro.sharding.streaming.ShardedStreamingEngine` reuses this
package's buffer, policies, and schedules but re-releases **only the
shards whose ingest deltas cross the per-shard threshold** each epoch —
see :mod:`repro.sharding`.

**Epoch privacy accounting.**  Epoch ``i`` re-answers the query sequence
on the updated instance with an ``εᵢ``-DP mechanism; by sequential
composition (Section 2.1 of the paper) the whole stream of releases is
``(Σ εᵢ)``-differentially private.  One shared
:class:`~repro.privacy.budget.PrivacyBudget` enforces the sum, is charged
only when an epoch build *succeeds*, and labels every charge with its
epoch index so the audit trail reads as the epoch history.

**Epoch-versioned artifacts.**  Each epoch's release is a normal
:class:`~repro.serving.release.MaterializedRelease` whose identity
(dataset fingerprint of the epoch's counts, ε from the schedule, seed
``base_seed + epoch``) differs from every other epoch's, so the existing
:class:`~repro.serving.store.ReleaseStore` versioning applies unchanged:
every epoch persists as its own ``.npz`` artifact, and a replayed or
restarted stream loads epochs from disk with zero recomputation and zero
additional ε.  The lineage file (``<store>/streams/<name>-<hash>.json``,
where the short hash of the exact stream name keeps sanitized names from
colliding) maps
epoch indexes to those identities.

Quickstart::

    import numpy as np
    from repro.serving import ReleaseStore
    from repro.streaming import (
        GeometricEpsilonSchedule, RowCountPolicy, StreamingHistogramEngine,
    )

    engine = StreamingHistogramEngine(
        np.zeros(1024), total_epsilon=1.0,
        schedule=GeometricEpsilonSchedule(0.4, decay=0.5),
        policy=RowCountPolicy(10_000),
        store=ReleaseStore("releases"), name="clicks",
    )
    engine.ingest(row_indexes)          # auto-refreshes at 10k pending rows
    engine.submit(batch).epoch          # always one consistent epoch
    engine.lineage.spent_epsilon        # the stream's composition ledger
"""

from repro.streaming.buffer import IngestBuffer
from repro.streaming.engine import StreamBatchResult, StreamingHistogramEngine
from repro.streaming.lineage import EpochLineage, EpochRecord
from repro.streaming.policy import (
    EpsilonSchedule,
    FixedEpsilonSchedule,
    GeometricEpsilonSchedule,
    ManualRefreshPolicy,
    RefreshPolicy,
    RowCountPolicy,
)

__all__ = [
    "IngestBuffer",
    "StreamBatchResult",
    "StreamingHistogramEngine",
    "EpochLineage",
    "EpochRecord",
    "EpsilonSchedule",
    "FixedEpsilonSchedule",
    "GeometricEpsilonSchedule",
    "ManualRefreshPolicy",
    "RefreshPolicy",
    "RowCountPolicy",
]
