"""When to re-release, and at what ε: refresh policies and ε schedules.

Epoch-based re-release is sequential composition in time (Section 2.1):
each epoch ``i`` re-answers the query sequence on the updated instance
with an ``εᵢ``-DP mechanism, and the whole stream of releases is
``(Σ εᵢ)``-differentially private.  Two pluggable decisions shape that
trade-off:

* a **refresh policy** decides *when* the buffered arrivals justify
  building a new epoch (per row-count threshold, or only on demand);
* an **ε schedule** decides *how much* of the budget epoch ``i`` may
  spend.  The geometric schedule ``εᵢ = ε₀·rⁱ`` (``0 < r < 1``) is the
  canonical choice: its infinite sum ``ε₀/(1-r)`` is finite, so a stream
  can re-release forever under a fixed total budget — at the price of
  noisier releases as epochs pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.exceptions import ReproError

__all__ = [
    "RefreshPolicy",
    "RowCountPolicy",
    "ManualRefreshPolicy",
    "EpsilonSchedule",
    "FixedEpsilonSchedule",
    "GeometricEpsilonSchedule",
]


# -- refresh policies ----------------------------------------------------------


@runtime_checkable
class RefreshPolicy(Protocol):
    """Decides whether the pending backlog warrants a new epoch."""

    def should_refresh(self, pending_rows: int) -> bool:  # pragma: no cover
        ...


@dataclass(frozen=True)
class RowCountPolicy:
    """Refresh once at least ``threshold`` rows have accumulated."""

    threshold: int

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ReproError(
                f"row-count threshold must be >= 1, got {self.threshold}"
            )

    def should_refresh(self, pending_rows: int) -> bool:
        return pending_rows >= self.threshold


@dataclass(frozen=True)
class ManualRefreshPolicy:
    """Never refresh automatically; epochs advance only on explicit calls."""

    def should_refresh(self, pending_rows: int) -> bool:
        return False


# -- epsilon schedules ---------------------------------------------------------


@runtime_checkable
class EpsilonSchedule(Protocol):
    """Maps an epoch index (0-based) to the ε that epoch may spend."""

    def epsilon_for(self, epoch: int) -> float:  # pragma: no cover
        ...

    def total_through(self, epoch: int) -> float:  # pragma: no cover
        ...


def _check_epoch(epoch: int) -> int:
    if epoch < 0:
        raise ReproError(f"epoch index must be >= 0, got {epoch}")
    return int(epoch)


@dataclass(frozen=True)
class FixedEpsilonSchedule:
    """Every epoch spends the same ε (total grows linearly — plan a horizon)."""

    epsilon: float

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ReproError(f"epsilon must be positive, got {self.epsilon}")

    def epsilon_for(self, epoch: int) -> float:
        _check_epoch(epoch)
        return self.epsilon

    def total_through(self, epoch: int) -> float:
        """Σ εᵢ for i = 0..epoch, summed left to right (exact accounting)."""
        return _left_to_right_total(self, epoch)


@dataclass(frozen=True)
class GeometricEpsilonSchedule:
    """Epoch ``i`` spends ``ε₀ · decayⁱ``; the infinite total is finite.

    Parameters
    ----------
    first_epsilon:
        ε of epoch 0 (the initial release — typically the most accurate).
    decay:
        Per-epoch multiplier in (0, 1); later epochs get geometrically
        less budget, so ``Σ εᵢ = ε₀ / (1 - decay)`` over an unbounded
        stream.
    """

    first_epsilon: float
    decay: float = 0.5

    def __post_init__(self) -> None:
        if self.first_epsilon <= 0:
            raise ReproError(
                f"first_epsilon must be positive, got {self.first_epsilon}"
            )
        if not 0.0 < self.decay < 1.0:
            raise ReproError(f"decay must be in (0, 1), got {self.decay}")

    @property
    def infinite_total(self) -> float:
        """The total ε an unbounded stream of epochs converges to."""
        return self.first_epsilon / (1.0 - self.decay)

    def epsilon_for(self, epoch: int) -> float:
        return self.first_epsilon * self.decay ** _check_epoch(epoch)

    def total_through(self, epoch: int) -> float:
        """Σ εᵢ for i = 0..epoch, summed left to right (exact accounting)."""
        return _left_to_right_total(self, epoch)


def _left_to_right_total(schedule: EpsilonSchedule, epoch: int) -> float:
    """Sum the schedule exactly as the budget's running total does.

    Floating-point addition is order-dependent, and the acceptance bar for
    epoch accounting is *exact* equality between the budget's Σεᵢ and the
    schedule — so the schedule total must be accumulated in the same
    left-to-right order the spends happen, not via a closed form.
    """
    _check_epoch(epoch)
    total = 0.0
    for i in range(epoch + 1):
        total += schedule.epsilon_for(i)
    return total
