"""Append-only accumulation of row arrivals between epochs.

The paper's release flow assumes a static instance ``I``; under live
traffic the instance is really ``I_t`` — a base database plus a stream of
tuple arrivals.  The :class:`IngestBuffer` is the owner-side staging area
for those arrivals: rows are aggregated immediately into a per-bucket
delta vector (one vectorized ``bincount`` pass per batch, no per-row
Python work), and the epoch manager drains the buffer atomically when it
builds the next release.

The buffer is strictly additive (rows arrive, they are never retracted);
the delta vector it accumulates is true, un-noised data and therefore
lives in the data owner's trust domain — it must never be released or
persisted alongside the (safe, post-processed) release artifacts.

Thread safety: ``add*`` calls may race with each other and with
``drain``; every mutation happens under one lock, and :meth:`drain` swaps
the accumulated delta out atomically so each arrival is counted in
exactly one epoch.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.db.histogram import delta_counts
from repro.db.relation import Relation
from repro.exceptions import DomainError
from repro.utils.arrays import as_float_vector

__all__ = ["IngestBuffer"]


class IngestBuffer:
    """Thread-safe staging buffer of per-bucket count deltas.

    Parameters
    ----------
    domain_size:
        Number of unit buckets in the histogram domain being served.
    """

    def __init__(self, domain_size: int) -> None:
        if domain_size <= 0:
            raise DomainError(f"domain_size must be positive, got {domain_size}")
        self.domain_size = int(domain_size)
        self._lock = threading.Lock()
        self._delta = np.zeros(self.domain_size, dtype=np.float64)
        self._rows = 0
        #: total rows ever ingested (drains do not reset this)
        self._rows_total = 0

    # -- ingestion -------------------------------------------------------------

    def add(self, indexes) -> int:
        """Ingest one batch of rows given as domain indexes.

        Aggregates the whole batch with one ``bincount`` pass before
        touching shared state, so the lock is held only for a vector add.
        Returns the number of rows ingested.
        """
        batch = delta_counts(indexes, self.domain_size)
        rows = int(batch.sum())
        with self._lock:
            self._delta += batch
            self._rows += rows
            self._rows_total += rows
        return rows

    def add_relation(self, relation: Relation, attribute: str) -> int:
        """Ingest every tuple of a delta relation (by its range attribute)."""
        return self.add(relation.attribute_indexes(attribute))

    def add_counts(self, delta) -> int:
        """Ingest a pre-aggregated, non-negative delta count vector."""
        batch = as_float_vector(delta, name="delta").copy()
        if batch.size != self.domain_size:
            raise DomainError(
                f"delta has {batch.size} buckets, buffer domain is "
                f"{self.domain_size}"
            )
        if np.any(batch < 0):
            raise DomainError("the ingest stream is append-only; deltas must be >= 0")
        rows = int(batch.sum())
        with self._lock:
            self._delta += batch
            self._rows += rows
            self._rows_total += rows
        return rows

    # -- draining --------------------------------------------------------------

    def drain(self) -> tuple[np.ndarray, int]:
        """Atomically take (and clear) the accumulated delta.

        Returns ``(delta, rows)``.  Rows arriving after the swap land in
        the fresh buffer and will be counted in the *next* epoch — no
        arrival is ever counted twice or dropped.
        """
        with self._lock:
            delta, self._delta = self._delta, np.zeros(self.domain_size, dtype=np.float64)
            rows, self._rows = self._rows, 0
        return delta, rows

    def restore(self, delta: np.ndarray, rows: int) -> None:
        """Return a drained delta to the buffer (a failed epoch build).

        The restored rows merge with whatever arrived since the drain, so
        a failed build loses nothing: the next successful epoch picks the
        whole backlog up.
        """
        with self._lock:
            self._delta += delta
            self._rows += int(rows)

    # -- introspection ---------------------------------------------------------

    @property
    def pending_rows(self) -> int:
        """Rows ingested since the last drain."""
        with self._lock:
            return self._rows

    @property
    def total_rows(self) -> int:
        """Rows ingested over the buffer's whole lifetime."""
        with self._lock:
            return self._rows_total

    def pending_counts(self) -> np.ndarray:
        """A copy of the current (un-drained) delta vector."""
        with self._lock:
            return self._delta.copy()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IngestBuffer(domain_size={self.domain_size}, "
            f"pending_rows={self.pending_rows})"
        )
