"""Durable lineage of a stream's epochs.

Every successful epoch build appends one :class:`EpochRecord` — the epoch
index, the full :class:`~repro.serving.release.ReleaseKey` of the release
it produced, the ε it charged, and how many rows it folded in.  The
lineage is the stream's public provenance:

* it is safe to persist and share — it holds release identities and ε
  values (outputs of the accounting), never true counts;
* it lets a restarted engine resume exactly where the stream left off:
  the next epoch index, the next ε on the schedule, and the latest
  release to serve (loaded from the store with **zero** additional ε);
* summed, it is the stream's sequential-composition ledger: the stream is
  (Σ εᵢ)-differentially private over its whole history, across process
  restarts.

When bound to a file the lineage is rewritten atomically (temp file +
``os.replace``) after every append, mirroring the release store's
crash-safety protocol.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path

from repro import faults
from repro.exceptions import LineageConflictError, ReleaseStoreError
from repro.faults.injector import CrashFault, FaultError
from repro.faults.retry import RetryPolicy, run_with_retry
from repro.serving.release import ReleaseKey
from repro.utils.io_atomic import atomic_write_json

__all__ = ["EpochRecord", "EpochLineage", "LINEAGE_FORMAT_VERSION"]

#: Version of the lineage file schema; bump when the layout changes.
LINEAGE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class EpochRecord:
    """Provenance of one successfully built epoch."""

    epoch: int
    key: ReleaseKey
    epsilon: float
    rows_ingested: int
    total_rows: float

    def to_json(self) -> dict:
        return {
            "epoch": self.epoch,
            "dataset_fingerprint": self.key.dataset_fingerprint,
            "estimator": self.key.estimator,
            "epsilon": self.epsilon,
            "branching": self.key.branching,
            "seed": self.key.seed,
            "rows_ingested": self.rows_ingested,
            "total_rows": self.total_rows,
        }

    @classmethod
    def from_json(cls, entry: dict) -> "EpochRecord":
        try:
            key = ReleaseKey(
                dataset_fingerprint=str(entry["dataset_fingerprint"]),
                estimator=str(entry["estimator"]),
                epsilon=float(entry["epsilon"]),
                branching=int(entry["branching"]),
                seed=int(entry["seed"]),
            )
            return cls(
                epoch=int(entry["epoch"]),
                key=key,
                epsilon=float(entry["epsilon"]),
                rows_ingested=int(entry["rows_ingested"]),
                total_rows=float(entry["total_rows"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ReleaseStoreError(
                f"malformed epoch lineage entry {entry!r}: {error}"
            ) from error


class EpochLineage:
    """An append-only, optionally file-backed sequence of epoch records.

    Parameters
    ----------
    path:
        When given, the lineage is loaded from (and persisted to) this
        JSON file; ``None`` keeps it in memory only.
    retry:
        Optional :class:`~repro.faults.retry.RetryPolicy` for the
        per-append persist.  The ε-charged build already happened by the
        time an append runs, so retrying the persist never re-charges
        anything — it only narrows the window in which a charge could be
        orphaned by a transient disk error.
    """

    def __init__(self, path=None, *, retry: RetryPolicy | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.retry = retry
        self._lock = threading.Lock()
        self._records: list[EpochRecord] = []
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text())
        except (OSError, ValueError) as error:
            raise ReleaseStoreError(
                f"cannot read epoch lineage {self.path}: {error}"
            ) from error
        version = document.get("lineage_format_version")
        if not isinstance(version, int) or version > LINEAGE_FORMAT_VERSION:
            raise ReleaseStoreError(
                f"epoch lineage {self.path} has format version {version!r}, "
                f"newer than the supported {LINEAGE_FORMAT_VERSION}"
            )
        epochs = document.get("epochs")
        if not isinstance(epochs, list):
            raise ReleaseStoreError(f"epoch lineage {self.path} has no epoch list")
        records = [EpochRecord.from_json(entry) for entry in epochs]
        for i, record in enumerate(records):
            if record.epoch != i:
                raise LineageConflictError(
                    f"epoch lineage {self.path} is not contiguous: position "
                    f"{i} records epoch {record.epoch}"
                )
        self._records = records

    def _persist(self) -> None:
        document = {
            "lineage_format_version": LINEAGE_FORMAT_VERSION,
            "epochs": [record.to_json() for record in self._records],
        }

        def write() -> None:
            if faults.enabled():
                faults.check("lineage.append")
            atomic_write_json(self.path, document)

        if self.retry is None:
            write()
        else:
            run_with_retry(
                self.retry, write, describe=f"persist lineage {self.path.name}"
            )

    # -- appends ---------------------------------------------------------------

    def append(self, record: EpochRecord) -> None:
        """Record one built epoch; epochs must arrive in order, gap-free."""
        with self._lock:
            expected = len(self._records)
            if record.epoch != expected:
                raise LineageConflictError(
                    f"epoch {record.epoch} appended out of order; lineage "
                    f"expects epoch {expected} next"
                )
            self._records.append(record)
            if self.path is not None:
                try:
                    self._persist()
                except CrashFault:
                    # A simulated process death: in-memory state is about
                    # to vanish anyway, and the on-disk ledger still
                    # holds the previous epoch — exactly what a real
                    # crash leaves for the restart path to resume from.
                    self._records.pop()
                    raise
                except (OSError, FaultError) as error:
                    self._records.pop()
                    raise ReleaseStoreError(
                        f"cannot persist epoch lineage to {self.path}: {error}"
                    ) from error

    # -- introspection ---------------------------------------------------------

    @property
    def records(self) -> list[EpochRecord]:
        """All epoch records so far, oldest first (copy)."""
        with self._lock:
            return list(self._records)

    @property
    def latest(self) -> EpochRecord | None:
        """The most recent epoch record, or ``None`` before epoch 0."""
        with self._lock:
            return self._records[-1] if self._records else None

    @property
    def next_epoch(self) -> int:
        """The index the next built epoch will get."""
        with self._lock:
            return len(self._records)

    @property
    def spent_epsilon(self) -> float:
        """Σ εᵢ over the recorded epochs — the stream's composition ledger.

        Summed left to right, matching the order the charges happened.
        """
        total = 0.0
        for record in self.records:
            total += record.epsilon
        return total

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EpochLineage(epochs={len(self)}, path={str(self.path)!r})"
