"""Continuously refreshed private serving: the streaming façade.

:class:`StreamingHistogramEngine` turns the one-shot release flow into an
epoch-based loop over live data:

* rows arrive through :meth:`~StreamingHistogramEngine.ingest` and are
  aggregated in an :class:`~repro.streaming.buffer.IngestBuffer` (true
  data, owner's trust domain);
* a :class:`~repro.streaming.policy.RefreshPolicy` decides when the
  backlog justifies a new epoch, and an
  :class:`~repro.streaming.policy.EpsilonSchedule` decides the ε that
  epoch may spend — sequential composition across epochs is enforced by
  one shared :class:`~repro.privacy.budget.PrivacyBudget`, charged **only
  when an epoch build succeeds** (a failing mechanism, inference run, or
  exhausted budget leaks nothing and loses no ingested rows);
* each epoch folds the drained delta into the current counts and
  materializes a fresh consistent release through the serving tier's
  cache/store machinery, so every epoch is persisted as its own versioned
  artifact (cache keys embed the epoch's fingerprint, ε, and seed) and a
  replayed or restarted stream re-loads epochs for **zero** additional ε;
* queries keep flowing the whole time: :meth:`submit` answers every batch
  from one immutable release snapshot, so readers never observe a torn
  epoch — a background build publishes the next epoch with a single
  atomic swap;
* the :class:`~repro.streaming.lineage.EpochLineage` records every
  epoch's identity and ε durably next to the store, which is how a
  restarted engine resumes the schedule (and keeps serving) with zero ε
  spent in the new process.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro import faults, obs
from repro.accuracy.models import UncertaintyModel, uncertainty_model_for
from repro.accuracy.slo import AccuracySLO, AccuracyStats
from repro.db.histogram import HistogramBuilder
from repro.db.relation import Relation
from repro.exceptions import (
    BudgetExhaustedError,
    LineageConflictError,
    PrivacyBudgetError,
    ReproError,
)
from repro.faults.degrade import CircuitBreaker
from repro.faults.retry import RetryPolicy
from repro.privacy.budget import PrivacyBudget
from repro.privacy.definitions import PrivacyParameters
from repro.queries.workload import RangeWorkload
from repro.serving.cache import ReleaseCache
from repro.serving.engine import (
    HistogramEngine,
    canonical_estimator_name,
    record_submit_metrics,
    score_batch_accuracy,
)
from repro.serving.planner import BatchQueryPlanner, QueryBatch
from repro.serving.release import MaterializedRelease
from repro.serving.stats import ServingStats
from repro.serving.store import ReleaseStore, stream_ledger_path
from repro.streaming.buffer import IngestBuffer
from repro.streaming.lineage import EpochLineage, EpochRecord
from repro.streaming.policy import (
    EpsilonSchedule,
    ManualRefreshPolicy,
    RefreshPolicy,
)
from repro.utils.arrays import as_float_vector

__all__ = ["StreamBatchResult", "StreamingHistogramEngine"]

@dataclass(frozen=True)
class StreamBatchResult:
    """Answers for one batch, pinned to the epoch that produced them.

    ``epoch`` identifies the single consistent release every answer in the
    batch came from — the streaming tier's no-torn-reads contract.
    """

    answers: np.ndarray
    epoch: int
    estimator: str
    epsilon: float
    dataset_fingerprint: str
    answer_seconds: float
    #: the stream's circuit breaker was open when this batch was
    #: answered: the answers are valid but come from the last epoch
    #: published before refreshes started failing (stale-serve mode).
    degraded: bool = False
    #: per-answer accuracy columns, populated when the stream has an
    #: :class:`~repro.accuracy.slo.AccuracySLO` (None otherwise — the
    #: hot path pays nothing).
    variances: np.ndarray | None = None
    ci_los: np.ndarray | None = None
    ci_his: np.ndarray | None = None
    confidence: float | None = None

    @property
    def num_queries(self) -> int:
        return int(self.answers.size)

    @property
    def ci_halfwidths(self) -> np.ndarray | None:
        """Per-answer CI halfwidths (None when accuracy was not scored)."""
        if self.ci_his is None:
            return None
        return self.ci_his - self.answers

    @property
    def queries_per_second(self) -> float:
        """Serving throughput for this batch (0 below clock resolution)."""
        if self.answer_seconds <= 0:
            return 0.0
        return self.num_queries / self.answer_seconds


class StreamingHistogramEngine:
    """Epoch-refreshed private-histogram server over one live dataset.

    Parameters
    ----------
    data:
        The *current* database: a :class:`Relation` (with ``attribute``)
        or a raw unit-count vector.  On a warm restart this is the base
        the next epoch's delta folds into.
    total_epsilon:
        The overall budget every epoch's charge composes against — over
        the stream's whole *lifetime*: after a warm restart the process
        budget restarts at zero, but new epochs are checked against the
        lineage's cross-restart Σεᵢ ledger before building.
    schedule:
        The per-epoch ε schedule (e.g.
        :class:`~repro.streaming.policy.GeometricEpsilonSchedule`).
    policy:
        When to auto-refresh on ingest; defaults to manual-only.
    estimator / branching / seed:
        Release strategy; epoch ``i`` is built with seed ``seed + i`` so
        every epoch is a distinct, deterministic release identity.
    store:
        Optional durable :class:`ReleaseStore`.  Epoch artifacts persist
        into it and the epoch lineage lives beside it
        (``<root>/streams/<name>-<hash>.json``), enabling zero-ε warm
        restarts.
    cache:
        A pre-built shared :class:`ReleaseCache` (attach any store to it);
        mutually exclusive with ``store``.
    name:
        Stream name used for the lineage file and telemetry.
    build_first_epoch:
        Build epoch 0 from the base data at construction (default).  Has
        no effect on a warm restart, which resumes from the lineage.
    retry:
        Optional :class:`~repro.faults.retry.RetryPolicy` applied to the
        lineage's per-append persist (the store takes its own policy at
        construction).  Retries only re-run persistence — never the
        ε-charged build.
    breaker:
        The stream's :class:`~repro.faults.degrade.CircuitBreaker`; a
        default one (trip on first failure, probe every 4th suppressed
        auto-refresh) is created when omitted.  While open, the engine
        keeps answering from the last published epoch with
        ``degraded=True`` on every batch, and one successful build heals
        it.
    """

    def __init__(
        self,
        data,
        total_epsilon: float,
        schedule: EpsilonSchedule,
        *,
        attribute: str | None = None,
        policy: RefreshPolicy | None = None,
        estimator: str = "constrained",
        branching: int = 2,
        seed: int = 0,
        delta: float = 0.0,
        store: ReleaseStore | None = None,
        cache: ReleaseCache | None = None,
        cache_capacity: int = 32,
        name: str = "stream",
        build_first_epoch: bool = True,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        slo: AccuracySLO | None = None,
    ) -> None:
        if isinstance(data, Relation):
            if attribute is None:
                raise ReproError(
                    "a range attribute is required when the data is a Relation"
                )
            counts = HistogramBuilder(data, attribute).counts()
        else:
            counts = as_float_vector(data, name="counts").copy()
        if not hasattr(schedule, "epsilon_for"):
            raise ReproError(
                f"schedule must implement epsilon_for(epoch), got {schedule!r}"
            )
        self._counts = counts  # guarded-by: _advance_lock
        #: immutable after construction; lets lock-free monitoring paths
        #: read the domain size without touching the guarded counts
        self._domain_size = int(counts.size)
        self.estimator = canonical_estimator_name(estimator)
        self.branching = int(branching)
        self.base_seed = int(seed)
        self.schedule = schedule
        self.policy: RefreshPolicy = policy if policy is not None else ManualRefreshPolicy()
        self.name = str(name)
        if not self.name:
            raise ReproError("a stream name is required")
        if cache is not None and store is not None:
            raise ReproError(
                "pass either a shared cache or a store, not both; attach the "
                "store to the shared ReleaseCache instead"
            )
        self.cache = cache if cache is not None else ReleaseCache(cache_capacity, store=store)
        self._budget = PrivacyBudget(PrivacyParameters(total_epsilon, delta))
        self._buffer = IngestBuffer(counts.size)
        self.planner = BatchQueryPlanner()
        self.stats = ServingStats()
        #: the exception the most recent policy-triggered auto-refresh
        #: failed with, or ``None``; explicit advance_epoch() calls raise
        #: instead of recording here.
        self.last_refresh_error: BaseException | None = None
        self._advance_lock = threading.Lock()
        self._serve_lock = threading.Lock()
        self.materializations = 0  # guarded-by: _serve_lock
        #: set on warm restart; the first epoch build validates the base
        #: counts against the lineage ledger before proceeding
        self._resume_unvalidated = False  # guarded-by: _advance_lock
        self._current: tuple[int, MaterializedRelease] | None = None  # guarded-by: _serve_lock
        self._executor: ThreadPoolExecutor | None = None  # guarded-by: _executor_lock
        self._executor_lock = threading.Lock()
        self.retry = retry
        self.breaker = breaker if breaker is not None else CircuitBreaker(name=self.name)
        self.slo = slo
        self.accuracy = AccuracyStats()
        # Uncertainty models per epoch ε; racy rebuilds are benign.
        self._uncertainty_models: dict[tuple, UncertaintyModel] = {}
        self.lineage = self._open_lineage()
        if len(self.lineage):
            with self._advance_lock:
                self._resume_from_lineage_locked()
        elif build_first_epoch:
            self.advance_epoch()

    # -- construction helpers --------------------------------------------------

    def _open_lineage(self) -> EpochLineage:
        store = self.cache.store
        if store is None:
            return EpochLineage(retry=self.retry)
        return EpochLineage(
            stream_ledger_path(store.root, self.name), retry=self.retry
        )

    def _resume_from_lineage_locked(self) -> None:
        """Warm restart: serve the latest recorded epoch, spending zero ε.

        Caller holds ``_advance_lock`` (the ``_locked`` convention); the
        published release is still swapped in under ``_serve_lock``.
        """
        latest = self.lineage.latest
        store = self.cache.store
        release = store.get(latest.key) if store is not None else None
        if release is None:
            raise ReproError(
                f"stream {self.name!r} has lineage through epoch {latest.epoch} "
                f"but its release artifact is missing from the store"
            )
        self.cache.put(latest.key, release)
        with self._serve_lock:
            self._current = (latest.epoch, release)
        # Serving resumed releases needs no counts at all, but *building*
        # on stale base counts would silently rebase the stream and drop
        # every previously folded row — so the first build after a resume
        # cross-checks the counts against the lineage's true-count ledger
        # (see _advance_locked).
        self._resume_unvalidated = True

    # -- budget ----------------------------------------------------------------

    @property
    def budget(self) -> PrivacyBudget:
        """The shared (thread-safe) budget every epoch composes against."""
        return self._budget

    @property
    def spent_epsilon(self) -> float:
        """ε spent by *this process* (a warm restart starts at zero)."""
        return self._budget.spent_epsilon

    @property
    def remaining_epsilon(self) -> float:
        return self._budget.remaining_epsilon

    # -- ingestion -------------------------------------------------------------

    @property
    def domain_size(self) -> int:
        return self._domain_size

    @property
    def pending_rows(self) -> int:
        """Rows ingested but not yet folded into any epoch."""
        return self._buffer.pending_rows

    def ingest(self, indexes) -> int:
        """Ingest rows given as domain indexes; may trigger a refresh.

        Returns the number of rows ingested.  When the refresh policy
        fires and no build is already in flight, the epoch advances
        synchronously (for latency-sensitive ingest paths, keep the
        default :class:`~repro.streaming.policy.ManualRefreshPolicy` and
        drive :meth:`advance_epoch_background` yourself).  A *failed*
        auto-refresh never raises out of ingest — the rows are already
        safely buffered, and re-ingesting them would double-count; the
        failure is recorded in :attr:`last_refresh_error` for monitoring
        (a persistent cause, such as an exhausted budget, will surface
        again on the next explicit :meth:`advance_epoch`).
        """
        rows = self._buffer.add(indexes)
        self._record_ingest(rows)
        self._maybe_refresh()
        return rows

    def ingest_counts(self, delta) -> int:
        """Ingest a pre-aggregated delta count vector; may trigger a refresh."""
        rows = self._buffer.add_counts(delta)
        self._record_ingest(rows)
        self._maybe_refresh()
        return rows

    def ingest_relation(self, relation: Relation, attribute: str) -> int:
        """Ingest every tuple of a delta relation; may trigger a refresh."""
        rows = self._buffer.add_relation(relation, attribute)
        self._record_ingest(rows)
        self._maybe_refresh()
        return rows

    def _record_ingest(self, rows: int) -> None:
        if obs.enabled():
            obs.registry().counter(
                "repro_stream_ingest_rows_total", "Rows ingested into streams"
            ).inc(rows, stream=self.name)

    def _maybe_refresh(self) -> None:
        if not self.policy.should_refresh(self._buffer.pending_rows):
            return
        # Never stack policy-triggered builds: the non-blocking acquire
        # makes the in-flight check atomic, and the policy is re-checked
        # under the lock — a concurrent ingest that lost the race finds
        # its rows already drained and must not charge a near-empty
        # epoch for them.  Pending rows simply ride into the next epoch.
        if not self.breaker.allow_probe():
            # Open breaker: keep serving the last published epoch (stale
            # but valid) instead of hammering a failing build path on
            # every ingest.  Every probe_interval-th opportunity is let
            # through as the healing probe, and an explicit
            # advance_epoch() always bypasses this gate.
            if obs.enabled():
                obs.registry().counter(
                    "repro_stream_refreshes_suppressed_total",
                    "Auto-refreshes suppressed by an open circuit breaker",
                ).inc(stream=self.name)
            return
        if not self._advance_lock.acquire(blocking=False):
            return
        try:
            if self.policy.should_refresh(self._buffer.pending_rows):
                self._advance_locked()
                self.breaker.record_success()
                self.last_refresh_error = None
        except Exception as error:
            self.breaker.record_failure(error)
            # The ingest itself succeeded — the rows are in the buffer and
            # a failed build restored its drained share — so raising here
            # would invite the caller to re-ingest the same batch and
            # double-count it.  Auto-refresh degrades to buffer-only
            # ingestion; the error surfaces on the next explicit
            # advance_epoch() and through last_refresh_error.
            self.last_refresh_error = error
        finally:
            self._advance_lock.release()

    # -- epoch building --------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Index of the epoch currently being served (-1 before epoch 0)."""
        with self._serve_lock:
            return self._current[0] if self._current is not None else -1

    def advance_epoch(self) -> EpochRecord:
        """Build and publish the next epoch synchronously.

        Drains the ingest buffer, folds the delta into the current counts,
        materializes the epoch's release at the scheduled ε, records the
        epoch in the lineage, and atomically swaps it in for serving.  On
        *any* failure the drained rows are restored to the buffer, the
        epoch counter does not advance, and — because the charge happens
        only after the release is computed — no ε is spent.
        """
        with self._advance_lock:
            try:
                record = self._advance_locked()
            except Exception as error:
                self.breaker.record_failure(error)
                raise
        self.breaker.record_success()
        return record

    def advance_epoch_background(self) -> "Future[EpochRecord]":
        """Schedule :meth:`advance_epoch` on the build thread.

        Queries keep being answered from the current epoch while the build
        runs; the returned future resolves to the new
        :class:`EpochRecord` (or carries the build's exception).  Builds
        are serialized on a single worker so concurrent triggers can never
        race the schedule.
        """
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"epoch-build-{self.name}"
                )
            return self._executor.submit(self.advance_epoch)

    def _advance_locked(self) -> EpochRecord:
        epoch = self.lineage.next_epoch
        epsilon = self.schedule.epsilon_for(epoch)
        # The process budget starts at zero after a warm restart, so it
        # alone cannot enforce total_epsilon over the stream's *lifetime*;
        # the lineage carries the cross-restart ledger, and this check
        # composes the new epoch against it before any work is done.  The
        # process budget is the floor for charges the lineage missed (a
        # lineage persist failure after a successful build); a charge
        # orphaned that way is unrecoverable across restarts, which is
        # the documented residual of non-transactional store + lineage.
        lifetime = max(self.lineage.spent_epsilon, self._budget.spent_epsilon)
        if lifetime + epsilon > self._budget.total.epsilon + 1e-12:
            raise BudgetExhaustedError(
                f"epoch {epoch} would charge ε={epsilon:g}, but the stream "
                f"has already spent ε={lifetime:g} of its lifetime "
                f"{self._budget.total.epsilon:g} across its lineage"
            )
        if self._resume_unvalidated:
            # Building on stale base counts after a resume would publish a
            # release that regresses by every previously folded row; the
            # lineage records each epoch's true total exactly so the
            # mismatch is detectable before any work (0.5 of absolute
            # slack tolerates text-serialized counts, never a whole row).
            recorded = self.lineage.latest.total_rows
            current = float(self._counts.sum())
            if abs(current - recorded) > 0.5 + 1e-9 * abs(recorded):
                raise LineageConflictError(
                    f"stream {self.name!r} resumed at epoch "
                    f"{self.lineage.latest.epoch} whose release covered "
                    f"{recorded:g} rows, but the supplied counts hold "
                    f"{current:g}; pass the stream's *current* database "
                    f"(base plus previously released rows) to keep building"
                )
            self._resume_unvalidated = False
        delta, rows = self._buffer.drain()
        # Gate the fold on the delta itself, not the row count: fractional
        # pre-aggregated deltas can sum below one whole row yet still
        # carry data that must reach the epoch.
        counts = self._counts + delta if delta.any() else self._counts
        try:
            if faults.enabled():
                # Injected before any mechanism work: a failed epoch
                # charges nothing and the drained rows are restored.
                faults.check("stream.epoch_build")
            builder = HistogramEngine(
                counts,
                branching=self.branching,
                cache=self.cache,
                budget=self._budget,
                spend_label=f"epoch {epoch} ({self.estimator})",
            )
            if obs.enabled():
                build_start = perf_counter()
                with obs.tracer().span(
                    "stream.advance_epoch",
                    stream=self.name,
                    epoch=epoch,
                    epsilon=epsilon,
                    rows=rows,
                ):
                    release = builder.materialize(
                        self.estimator,
                        epsilon=epsilon,
                        branching=self.branching,
                        seed=self.base_seed + epoch,
                    )
                obs.registry().histogram(
                    "repro_stream_epoch_build_seconds",
                    "Epoch build latency (seconds)",
                ).observe(perf_counter() - build_start, stream=self.name)
            else:
                release = builder.materialize(
                    self.estimator,
                    epsilon=epsilon,
                    branching=self.branching,
                    seed=self.base_seed + epoch,
                )
        except BaseException:
            # The build charged nothing (the engine charges only after a
            # successful computation) and must lose nothing: the drained
            # rows rejoin the backlog for the next attempt.
            self._restore_backlog(delta, rows)
            raise
        record = EpochRecord(
            epoch=epoch,
            key=release.key,
            epsilon=epsilon,
            rows_ingested=rows,
            total_rows=float(counts.sum()),
        )
        try:
            self.lineage.append(record)
        except BaseException:
            # The epoch's ε is already charged (the artifact exists), but
            # the epoch is not published: restore the rows so they are
            # re-released by the next successful epoch rather than lost.
            self._restore_backlog(delta, rows)
            raise
        self._counts = counts
        with self._serve_lock:
            self._current = (epoch, release)
            self.materializations += builder.materializations
        if obs.enabled():
            obs.registry().counter(
                "repro_stream_epochs_total", "Epochs built and published"
            ).inc(stream=self.name)
        return record

    def _restore_backlog(self, delta, rows: int) -> None:
        """Return a drained delta to the buffer, counting the restore."""
        self._buffer.restore(delta, rows)
        if obs.enabled():
            obs.registry().counter(
                "repro_stream_buffer_restores_total",
                "Drained deltas restored after a failed epoch",
            ).inc(stream=self.name)

    def release_for_epoch(self, epoch: int) -> MaterializedRelease:
        """The immutable release a past epoch published (no ε, ever).

        Resolved from the in-memory cache, falling back to the durable
        store; raises when the epoch was never built or its artifact is
        gone from both.
        """
        records = self.lineage.records
        if not 0 <= epoch < len(records):
            raise ReproError(
                f"stream {self.name!r} has no epoch {epoch} "
                f"(built through {len(records) - 1})"
            )
        key = records[epoch].key
        release = self.cache.get(key)
        if release is None and self.cache.store is not None:
            release = self.cache.store.get(key)
            if release is not None:
                self.cache.put(key, release)
        if release is None:
            raise ReproError(
                f"epoch {epoch} of stream {self.name!r} was evicted and no "
                f"store holds its artifact"
            )
        return release

    # -- serving ---------------------------------------------------------------

    def submit(self, batch: QueryBatch | RangeWorkload) -> StreamBatchResult:
        """Answer a batch from the latest published epoch.

        The epoch snapshot is taken once, before answering, and the whole
        batch is answered from that single immutable release — a
        concurrent epoch swap affects only batches submitted after it.
        """
        if isinstance(batch, RangeWorkload):
            batch = QueryBatch.from_workload(batch)
        with self._serve_lock:
            current = self._current
        if current is None:
            raise ReproError(
                f"stream {self.name!r} has no epoch yet; ingest data and "
                f"advance an epoch first"
            )
        epoch, release = current
        start = perf_counter()
        answers = self.planner.answer(release, batch)
        answer_seconds = perf_counter() - start
        self.stats.record_batch(len(batch), answer_seconds)
        if obs.enabled():
            record_submit_metrics("stream", len(batch), answer_seconds)
        variances = ci_los = ci_his = confidence = None
        if self.slo is not None:
            model_key = (release.estimator, float(release.epsilon), release.branching)
            model = self._uncertainty_models.get(model_key)
            if model is None:
                model = uncertainty_model_for(
                    release.estimator,
                    domain_size=self._domain_size,
                    epsilon=release.epsilon,
                    branching=release.branching,
                )
                self._uncertainty_models[model_key] = model
            variances, ci_los, ci_his, confidence = score_batch_accuracy(
                model, batch, answers, self.slo, self.accuracy, "stream"
            )
        return StreamBatchResult(
            answers=answers,
            epoch=epoch,
            estimator=release.estimator,
            epsilon=release.epsilon,
            dataset_fingerprint=release.dataset_fingerprint,
            answer_seconds=answer_seconds,
            degraded=self.breaker.degraded,
            variances=variances,
            ci_los=ci_los,
            ci_his=ci_his,
            confidence=confidence,
        )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Wait for any in-flight background build and release its thread."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "StreamingHistogramEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StreamingHistogramEngine(name={self.name!r}, epoch={self.epoch}, "
            f"pending_rows={self.pending_rows}, "
            f"spent_epsilon={self.spent_epsilon:g})"
        )
