"""Deterministic fault injection, retry policies, and graceful degradation.

This package is the robustness substrate of the serving stack, built
from three independent pieces —

* :mod:`repro.faults.injector`: a registry of named fault points
  (``store.write``, ``lineage.append``, ``stream.epoch_build``, …) armed
  with *seeded* schedules — fail the Nth invocation, fail with a seeded
  probability, fail once then heal, or simulate a crash mid-write
  through the :mod:`repro.utils.io_atomic` hooks — so every failure a
  chaos test observes is reproducible from ``(schedule, seed)`` alone;
* :mod:`repro.faults.retry`: :class:`~repro.faults.retry.RetryPolicy`,
  exponential backoff with deterministic seeded jitter, bounded
  attempts, and a per-attempt deadline — applied to store writes,
  lineage appends, and per-shard builds, always *around* fallible I/O
  and never around an ε charge, so a retry can never re-spend budget;
* :mod:`repro.faults.degrade`: a per-tenant
  :class:`~repro.faults.degrade.CircuitBreaker` for stale-serve mode —
  a failed epoch refresh trips the breaker, the engine keeps answering
  from the last published release with a ``degraded`` flag, and a
  successful probe closes it —

plus the module-level default injector the engines consult.

**The no-op fast path is the contract**, exactly as for
:mod:`repro.obs`: injection is *disabled* by default, and every
instrumented call site guards with ``if faults.enabled():`` before
calling :func:`check`, so a production deployment pays one
module-attribute read and a branch per site — zero calls into the
injector and bit-identical answers.  Tests prove this with a counting
double installed via :func:`set_injector` while injection stays
disabled.

This package sits at the bottom of the layer DAG next to
``repro.utils``: the storage and serving tiers import *it*, never the
reverse (it depends only on :mod:`repro.exceptions`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Mapping

from repro.faults.degrade import BreakerSnapshot, CircuitBreaker
from repro.faults.injector import (
    FAULT_POINTS,
    CrashFault,
    FailFirst,
    FailNth,
    FailWithProbability,
    FaultError,
    FaultInjector,
    FaultSchedule,
)
from repro.faults.retry import RetryPolicy, run_with_retry

__all__ = [
    "FAULT_POINTS",
    "BreakerSnapshot",
    "CircuitBreaker",
    "CrashFault",
    "FailFirst",
    "FailNth",
    "FailWithProbability",
    "FaultError",
    "FaultInjector",
    "FaultSchedule",
    "RetryPolicy",
    "run_with_retry",
    "enabled",
    "enable",
    "disable",
    "injector",
    "set_injector",
    "check",
    "reset",
    "session",
]

_enabled: bool = False
_injector: FaultInjector = FaultInjector()


def enabled() -> bool:
    """Whether instrumented call sites should consult the injector.

    The hot-path gate: every fault point in the storage and serving
    tiers reads this one module attribute before doing anything else, so
    the disabled path performs zero injector calls.
    """
    return _enabled


def enable() -> None:
    """Arm the current default injector's schedules at every fault point."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Disarm injection; the injector keeps its schedules and counters."""
    global _enabled
    _enabled = False


def injector() -> FaultInjector:
    """The default injector instrumented call sites consult."""
    return _injector


def set_injector(new: FaultInjector) -> FaultInjector:
    """Install ``new`` as the default injector, returning the previous one.

    Independent of :func:`enabled` on purpose: tests install counting
    doubles while injection stays disabled to prove the no-op fast path
    really performs zero fault-layer calls.
    """
    global _injector
    previous, _injector = _injector, new
    return previous


def check(point: str) -> None:
    """Consult the default injector at ``point`` (may raise a fault).

    Call sites must gate with ``if faults.enabled():`` — calling this
    unconditionally would defeat the zero-overhead contract.
    """
    _injector.check(point)


def reset() -> None:
    """Disable injection and replace the default injector with a fresh one."""
    global _enabled, _injector
    _enabled = False
    _injector = FaultInjector()


@contextmanager
def session(schedules: "Mapping[str, FaultSchedule] | None" = None):
    """Enable injection with a fresh injector for one scoped workload.

    Yields the :class:`FaultInjector`; on exit the previous injector and
    enabled state are restored exactly, so a chaos test can arm
    schedules without leaking state into the process-wide defaults.
    """
    global _enabled
    fresh = FaultInjector(schedules)
    previous_injector = set_injector(fresh)
    previous_enabled = _enabled
    _enabled = True
    try:
        yield fresh
    finally:
        _enabled = previous_enabled
        set_injector(previous_injector)
