"""Per-tenant circuit breaking and the stale-serve degradation mode.

When a stream's epoch build starts failing — disk trouble, an exhausted
mechanism dependency, an injected chaos schedule — the worst response is
to hammer the failing path on every ingest *or* to stop answering
queries.  Neither is necessary: the last published release is immutable
and still perfectly valid (it simply grows stale), and failures carry
information worth surfacing.  :class:`CircuitBreaker` packages the
standard pattern, deterministically:

* every failed build is recorded; ``failure_threshold`` consecutive
  failures *trip* the breaker (open state);
* while open, the owning engine keeps serving the last published
  release and flags every answer ``degraded=True``; policy-triggered
  auto-refreshes are suppressed except for one deterministic *probe*
  every ``probe_interval`` opportunities (explicit
  ``advance_epoch()`` calls are always probes — an operator decision
  outranks the breaker);
* one successful build closes the breaker and clears the degradation
  flag.

The breaker is a pure counter machine — no wall clocks — so chaos tests
replay identically: the same failure schedule produces the same trip,
the same skipped refreshes, and the same healing probe every run.  The
fleet surfaces every tenant's :class:`BreakerSnapshot` (state, trip
count, last error) through ``FleetStats.stream_health`` and, when
observability is enabled, as gauges on the default registry.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.exceptions import ReproError

__all__ = ["BreakerSnapshot", "CircuitBreaker"]

#: Breaker states (plain strings so snapshots serialize trivially).
STATE_CLOSED = "closed"
STATE_OPEN = "open"


@dataclass(frozen=True)
class BreakerSnapshot:
    """A point-in-time, immutable view of one tenant's circuit breaker."""

    name: str
    state: str
    degraded: bool
    consecutive_failures: int
    failure_threshold: int
    trips: int
    probes_allowed: int
    refreshes_suppressed: int
    last_error: str | None

    def to_json(self) -> dict:
        """A plain-dict form for reports and the CLI."""
        return {
            "name": self.name,
            "state": self.state,
            "degraded": self.degraded,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "trips": self.trips,
            "probes_allowed": self.probes_allowed,
            "refreshes_suppressed": self.refreshes_suppressed,
            "last_error": self.last_error,
        }


class CircuitBreaker:
    """Trip on consecutive failures; heal on one success; probe on a cadence.

    Parameters
    ----------
    name:
        The tenant this breaker protects (used in snapshots/telemetry).
    failure_threshold:
        Consecutive failures that trip the breaker (default 1: the first
        failed refresh already degrades the tenant).
    probe_interval:
        While open, every ``probe_interval``-th :meth:`allow_probe` call
        is allowed through as a half-open probe; the rest are suppressed.
        Purely counter-based, so the cadence is deterministic.
    """

    def __init__(
        self,
        name: str = "",
        *,
        failure_threshold: int = 1,
        probe_interval: int = 4,
    ) -> None:
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if probe_interval < 1:
            raise ReproError(
                f"probe_interval must be >= 1, got {probe_interval}"
            )
        self.name = str(name)
        self.failure_threshold = int(failure_threshold)
        self.probe_interval = int(probe_interval)
        self._lock = threading.Lock()
        self._consecutive_failures = 0  # guarded-by: _lock
        self._open = False  # guarded-by: _lock
        self._trips = 0  # guarded-by: _lock
        self._probe_clock = 0  # guarded-by: _lock
        self._probes_allowed = 0  # guarded-by: _lock
        self._suppressed = 0  # guarded-by: _lock
        self._last_error: str | None = None  # guarded-by: _lock

    # -- outcomes --------------------------------------------------------------

    def record_failure(self, error: BaseException | str) -> bool:
        """Record one failed build; returns ``True`` when this trips it."""
        if isinstance(error, BaseException):
            message = str(error) or error.__class__.__name__
        else:
            message = str(error)
        with self._lock:
            self._last_error = message
            self._consecutive_failures += 1
            if self._open or self._consecutive_failures < self.failure_threshold:
                return False
            self._open = True
            self._trips += 1
            self._probe_clock = 0
            return True

    def record_success(self) -> bool:
        """Record one successful build; returns ``True`` when this heals it."""
        with self._lock:
            healed = self._open
            self._open = False
            self._consecutive_failures = 0
            self._last_error = None
            self._probe_clock = 0
            return healed

    def allow_probe(self) -> bool:
        """Whether an *automatic* refresh may run right now.

        Closed: always ``True`` (normal operation).  Open: one call in
        every :attr:`probe_interval` is let through as the half-open
        probe; the others are suppressed (and counted), which is the
        graceful part of the degradation — a failing build path is not
        hammered on every ingest.  Explicit ``advance_epoch()`` calls
        bypass this check entirely.
        """
        with self._lock:
            if not self._open:
                return True
            self._probe_clock += 1
            if self._probe_clock >= self.probe_interval:
                self._probe_clock = 0
                self._probes_allowed += 1
                return True
            self._suppressed += 1
            return False

    # -- introspection ---------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether the tenant is currently serving stale answers."""
        with self._lock:
            return self._open

    @property
    def state(self) -> str:
        with self._lock:
            return STATE_OPEN if self._open else STATE_CLOSED

    @property
    def last_error(self) -> str | None:
        """The most recent failure message, or ``None`` after healing."""
        with self._lock:
            return self._last_error

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    def snapshot(self) -> BreakerSnapshot:
        """An immutable, consistent view of the breaker's counters."""
        with self._lock:
            return BreakerSnapshot(
                name=self.name,
                state=STATE_OPEN if self._open else STATE_CLOSED,
                degraded=self._open,
                consecutive_failures=self._consecutive_failures,
                failure_threshold=self.failure_threshold,
                trips=self._trips,
                probes_allowed=self._probes_allowed,
                refreshes_suppressed=self._suppressed,
                last_error=self._last_error,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CircuitBreaker(name={self.name!r}, state={self.state!r}, "
            f"trips={self.trips})"
        )
