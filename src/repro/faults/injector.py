"""Named fault points with deterministic, seeded failure schedules.

A *fault point* is a stable string name for one fallible operation in
the storage and serving tiers (``store.write``, ``lineage.append``,
``io.replace``, …; the closed catalog is :data:`FAULT_POINTS`).  The
instrumented call sites consult the process-default
:class:`FaultInjector` — behind the ``if faults.enabled():`` gate — and
an armed schedule decides, from the point's invocation counter alone,
whether that invocation fails.  Every schedule is a deterministic
function of its construction arguments (including an explicit seed for
the probabilistic one), so a chaos run is exactly reproducible and a
shrinking failure can be replayed from its ``(point, schedule)`` pair.

Two error shapes are injected:

* :class:`FaultError` — an ordinary transient failure (the analogue of
  a full disk or a flaky filesystem); callers see it where an
  ``OSError`` would surface, and retry policies treat it as retryable;
* :class:`CrashFault` — a simulated *process death* mid-operation; the
  :mod:`repro.utils.io_atomic` hooks deliberately leave their temp file
  behind on this one (a real crash cleans nothing), which is what the
  crash-recovery tests sweep up.
"""

from __future__ import annotations

import random
import threading
from typing import Iterable, Mapping

from repro.exceptions import ReproError

__all__ = [
    "FAULT_POINTS",
    "FaultError",
    "CrashFault",
    "FaultSchedule",
    "FailNth",
    "FailFirst",
    "FailWithProbability",
    "FaultInjector",
]

#: The closed catalog of fault-point names.  Arming an unknown name is a
#: hard error — a typo must not silently produce a fault-free chaos run.
FAULT_POINTS = frozenset(
    {
        # durable tier
        "store.write",  # ReleaseStore.put: artifact + manifest persistence
        "store.load",  # ReleaseStore.get: artifact load from disk
        "lineage.append",  # Epoch/Sharded lineage: ledger persistence
        "io.flush",  # io_atomic: flush/fsync of the temp file
        "io.replace",  # io_atomic: the atomic rename (crash-mid-write)
        # serving tier
        "cache.fill",  # ReleaseCache.get_or_build: miss resolution
        "shard.build",  # build_shard_releases: one shard's computation
        "stream.epoch_build",  # streaming engines: the epoch build step
    }
)


class FaultError(ReproError):
    """An injected transient failure at a named fault point."""

    def __init__(self, point: str, invocation: int, message: str | None = None):
        self.point = point
        self.invocation = invocation
        super().__init__(
            message
            or f"injected fault at {point!r} (invocation {invocation})"
        )


class CrashFault(FaultError):
    """An injected simulated crash: the operation dies mid-flight.

    :func:`repro.utils.io_atomic.atomic_write_bytes` treats this one
    specially — the temp file is left on disk exactly as a killed
    process would leave it, so recovery paths are exercised for real.
    """

    def __init__(self, point: str, invocation: int):
        super().__init__(
            point,
            invocation,
            f"injected crash at {point!r} (invocation {invocation})",
        )


class FaultSchedule:
    """Decides, per invocation, whether a fault point fails.

    Subclasses implement :meth:`should_fail` as a deterministic function
    of the 1-based invocation number (plus any seeded internal state
    consumed in invocation order).  Set :attr:`crash` to inject
    :class:`CrashFault` instead of :class:`FaultError`.
    """

    #: inject a simulated crash instead of a transient error
    crash: bool = False

    def should_fail(self, invocation: int) -> bool:
        """Whether the ``invocation``-th check at this point fails."""
        raise NotImplementedError

    def make_error(self, point: str, invocation: int) -> FaultError:
        """The exception to raise for a failing invocation."""
        if self.crash:
            return CrashFault(point, invocation)
        return FaultError(point, invocation)


class FailNth(FaultSchedule):
    """Fail exactly the given 1-based invocation numbers.

    ``FailNth(1)`` fails the first call only; ``FailNth((2, 3))`` the
    second and third.  ``crash=True`` injects :class:`CrashFault`.
    """

    def __init__(self, nth: int | Iterable[int], *, crash: bool = False):
        numbers = {nth} if isinstance(nth, int) else set(nth)
        if not numbers or any(n < 1 for n in numbers):
            raise ReproError(
                f"FailNth needs 1-based invocation numbers, got {sorted(numbers)}"
            )
        self.numbers = frozenset(numbers)
        self.crash = bool(crash)

    def should_fail(self, invocation: int) -> bool:
        return invocation in self.numbers


class FailFirst(FaultSchedule):
    """Fail the first ``count`` invocations, then heal permanently.

    ``FailFirst(1)`` is the canonical fail-once-then-heal schedule: the
    first attempt fails, every retry succeeds.
    """

    def __init__(self, count: int = 1, *, crash: bool = False):
        if count < 1:
            raise ReproError(f"FailFirst count must be >= 1, got {count}")
        self.count = int(count)
        self.crash = bool(crash)

    def should_fail(self, invocation: int) -> bool:
        return invocation <= self.count


class FailWithProbability(FaultSchedule):
    """Fail each invocation independently with seeded probability ``p``.

    The draws come from a private ``random.Random(seed)`` consumed one
    per invocation, so the exact failure pattern is a deterministic
    function of ``(p, seed)`` and the invocation order — a chaos sweep
    over seeds is reproducible bit-for-bit.
    """

    def __init__(self, p: float, seed: int, *, crash: bool = False):
        if not 0.0 <= p <= 1.0:
            raise ReproError(f"failure probability must be in [0, 1], got {p}")
        self.p = float(p)
        self.seed = int(seed)
        self.crash = bool(crash)
        self._rng = random.Random(self.seed)

    def should_fail(self, invocation: int) -> bool:
        return self._rng.random() < self.p


class FaultInjector:
    """A thread-safe registry of armed fault schedules and counters.

    Every :meth:`check` increments the point's invocation counter even
    when no schedule is armed, so tests can assert exactly how many
    times a code path consulted the layer (and — with a counting double
    installed while injection is disabled — that the production path
    performs *zero* such calls).
    """

    def __init__(
        self, schedules: "Mapping[str, FaultSchedule] | None" = None
    ) -> None:
        self._lock = threading.Lock()
        self._schedules: dict[str, FaultSchedule] = {}  # guarded-by: _lock
        self._invocations: dict[str, int] = {}  # guarded-by: _lock
        self._injected: dict[str, int] = {}  # guarded-by: _lock
        if schedules:
            for point, schedule in schedules.items():
                self.arm(point, schedule)

    @staticmethod
    def _validate_point(point: str) -> str:
        if point not in FAULT_POINTS:
            raise ReproError(
                f"unknown fault point {point!r}; known points: "
                f"{sorted(FAULT_POINTS)}"
            )
        return point

    def arm(self, point: str, schedule: FaultSchedule) -> None:
        """Arm ``schedule`` at ``point`` (replacing any previous one)."""
        self._validate_point(point)
        if not isinstance(schedule, FaultSchedule):
            raise ReproError(
                f"schedule for {point!r} must be a FaultSchedule, "
                f"got {schedule!r}"
            )
        with self._lock:
            self._schedules[point] = schedule

    def disarm(self, point: str) -> None:
        """Remove any schedule at ``point`` (counters are preserved)."""
        self._validate_point(point)
        with self._lock:
            self._schedules.pop(point, None)

    def check(self, point: str) -> None:
        """Count one invocation of ``point``; raise if its schedule fires."""
        self._validate_point(point)
        with self._lock:
            invocation = self._invocations.get(point, 0) + 1
            self._invocations[point] = invocation
            schedule = self._schedules.get(point)
            if schedule is None or not schedule.should_fail(invocation):
                return
            self._injected[point] = self._injected.get(point, 0) + 1
            error = schedule.make_error(point, invocation)
        raise error

    # -- introspection ---------------------------------------------------------

    def invocations(self, point: str | None = None) -> int:
        """Checks seen at ``point`` (or across every point when ``None``)."""
        with self._lock:
            if point is None:
                return sum(self._invocations.values())
            return self._invocations.get(self._validate_point(point), 0)

    def injected(self, point: str | None = None) -> int:
        """Faults actually raised at ``point`` (or in total when ``None``)."""
        with self._lock:
            if point is None:
                return sum(self._injected.values())
            return self._injected.get(self._validate_point(point), 0)

    def snapshot(self) -> dict[str, dict[str, int]]:
        """``{point: {"invocations": n, "injected": m}}`` for touched points."""
        with self._lock:
            points = set(self._invocations) | set(self._injected)
            return {
                point: {
                    "invocations": self._invocations.get(point, 0),
                    "injected": self._injected.get(point, 0),
                }
                for point in sorted(points)
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        with self._lock:
            armed = sorted(self._schedules)
        return f"FaultInjector(armed={armed})"
