"""Bounded retries with exponential backoff and deterministic jitter.

:class:`RetryPolicy` is the one retry implementation shared by the
durable tier: the release store's artifact/manifest writes, the stream
lineage appends, and the per-shard release builds all run through
:func:`run_with_retry` when their owner was constructed with a policy.
Three properties are deliberate:

* **determinism** — backoff jitter comes from a private
  ``random.Random(seed)`` created *per call*, so the same policy yields
  the same delay sequence every time; a chaos run's timing behaviour is
  a pure function of its configuration;
* **ε-safety by placement** — retries wrap fallible *I/O and
  computation that precedes the charge*, never a
  :meth:`~repro.privacy.budget.PrivacyBudget.spend`.  A store write or
  lineage append retried after its release was charged re-runs only the
  persistence; a shard build retried before the charge re-runs only
  pure computation.  Nothing in this module touches a budget;
* **no sleeping under serve-path locks** — ``run_with_retry`` is in the
  LOCK002 blocking-call catalog
  (:data:`repro.utils.io_atomic.BLOCKING_WAIT_NAMES`), so statan
  rejects any call site that would hold a ``# guarded-by:`` lock across
  a backoff sleep.  The durable tier's own single-writer locks are
  unannotated by design and may serialize over a retry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from time import perf_counter, sleep
from typing import Callable, Iterator

from repro.exceptions import ReproError
from repro.faults.injector import CrashFault, FaultError

__all__ = ["RetryPolicy", "run_with_retry", "DEFAULT_RETRYABLE"]

#: Exception classes retried by default: real filesystem trouble and the
#: injected stand-ins for it.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (OSError, FaultError)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a fallible operation, and how to wait.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (``1`` disables retrying).
    base_delay:
        Backoff before the first retry, in seconds; retry ``k`` (1-based)
        waits ``base_delay * multiplier**(k-1)``, capped at ``max_delay``.
    multiplier / max_delay:
        Exponential-backoff shape.
    jitter:
        Fraction of each delay randomized: the actual wait is drawn
        uniformly from ``[delay * (1 - jitter), delay]``.  ``0`` disables
        jitter entirely.
    seed:
        Seed for the jitter stream.  Each :func:`run_with_retry` call
        builds a fresh ``random.Random(seed)``, so delay sequences are
        identical across calls and runs — deterministic backoff.
    attempt_deadline:
        Optional per-attempt wall-clock budget in seconds.  An attempt
        that *fails* after running longer than this is considered
        hopeless (the failure mode is slowness, which backoff would only
        compound) and is not retried; its exception propagates.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5
    seed: int = 0
    attempt_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ReproError(
                f"backoff multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.attempt_deadline is not None and self.attempt_deadline <= 0:
            raise ReproError(
                f"attempt_deadline must be positive, got {self.attempt_deadline}"
            )

    def delays(self) -> Iterator[float]:
        """The deterministic backoff delays, one per retry, in order."""
        rng = random.Random(self.seed)
        for k in range(self.max_attempts - 1):
            delay = min(self.base_delay * self.multiplier**k, self.max_delay)
            if self.jitter:
                delay *= 1.0 - self.jitter * rng.random()
            yield delay


def run_with_retry(
    policy: RetryPolicy,
    operation: Callable[[], object],
    *,
    retry_on: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE,
    describe: str = "operation",
    on_retry: Callable[[int, BaseException], None] | None = None,
    wait: Callable[[float], None] = sleep,
) -> object:
    """Run ``operation`` under ``policy``, returning its result.

    Only exceptions matching ``retry_on`` are retried; anything else
    propagates immediately (a programming error must not be massaged by
    backoff).  :class:`~repro.faults.injector.CrashFault` is the one
    carve-out *inside* ``retry_on``: it simulates a hard process death,
    which leaves nothing alive to retry, so it always propagates.  ``on_retry(attempt, error)`` is called before each
    backoff wait, and ``wait`` is injectable so tests can run retry
    schedules without real sleeping.  After the final attempt the last
    exception propagates unchanged.

    This function sleeps.  It is cataloged in
    :data:`repro.utils.io_atomic.BLOCKING_WAIT_NAMES`, so LOCK002
    forbids calling it while holding a ``# guarded-by:`` lock.
    """
    delays = policy.delays()
    for attempt in range(1, policy.max_attempts + 1):
        started = perf_counter()
        try:
            return operation()
        except retry_on as error:
            if isinstance(error, CrashFault):
                # A simulated process death: a real crash leaves nothing
                # to retry in-process, so the runner must not heal it.
                raise
            elapsed = perf_counter() - started
            overran = (
                policy.attempt_deadline is not None
                and elapsed > policy.attempt_deadline
            )
            if attempt >= policy.max_attempts or overran:
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            delay = next(delays)
            if delay > 0:
                wait(delay)
    raise AssertionError(f"unreachable: {describe} exited the retry loop")
