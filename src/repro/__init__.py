"""repro — reproduction of Hay et al., "Boosting the Accuracy of
Differentially Private Histograms Through Consistency" (PVLDB 2010).

The library implements the paper's two histogram strategies end to end:

* **Unattributed histograms** — the sorted query ``S`` plus isotonic
  constrained inference (:class:`repro.core.UnattributedHistogramTask`,
  :class:`repro.estimators.ConstrainedSortedEstimator`).
* **Universal histograms** — the hierarchical query ``H`` plus tree
  least-squares constrained inference
  (:class:`repro.core.UniversalHistogramTask`,
  :class:`repro.estimators.ConstrainedHierarchicalEstimator`).

together with the substrates they rest on: a small relational layer
(:mod:`repro.db`), the Laplace / geometric mechanisms and budget
accounting (:mod:`repro.privacy`), query sequences and workloads
(:mod:`repro.queries`), the inference algorithms (:mod:`repro.inference`),
baseline estimators (:mod:`repro.estimators`), synthetic stand-ins for the
paper's datasets (:mod:`repro.data`), the experiment harness that
regenerates every figure (:mod:`repro.analysis`), an online serving
tier that materializes releases once and answers millions of range
queries from them at no further privacy cost (:mod:`repro.serving`), and
a streaming tier that keeps those releases fresh under live row arrivals
via epoch-based re-release with exact sequential-composition accounting
(:mod:`repro.streaming`).

Quickstart::

    import numpy as np
    from repro import UnattributedHistogramTask

    degrees = np.random.default_rng(0).poisson(3, size=1000)
    task = UnattributedHistogramTask(degrees)
    private_degree_sequence = task.release(epsilon=0.1, rng=0)
"""

from repro.core.tasks import UnattributedHistogramTask, UniversalHistogramTask
from repro.core.pipeline import Analyst, DataOwner, PrivateSession
from repro.estimators import (
    ConstrainedHierarchicalEstimator,
    ConstrainedSortedEstimator,
    HierarchicalLaplaceEstimator,
    IdentityLaplaceEstimator,
    SortAndRoundEstimator,
    SortedLaplaceEstimator,
    WaveletEstimator,
)
from repro.inference import (
    hierarchical_inference,
    isotonic_regression,
)
from repro.privacy import LaplaceMechanism, PrivacyBudget, PrivacyParameters
from repro.queries import (
    HierarchicalQuery,
    SortedCountQuery,
    UnitCountQuery,
)
from repro.serving import (
    EngineFleet,
    HistogramEngine,
    MaterializedRelease,
    QueryBatch,
    ReleaseCache,
    ReleaseStore,
)

__version__ = "1.0.0"

__all__ = [
    "UnattributedHistogramTask",
    "UniversalHistogramTask",
    "Analyst",
    "DataOwner",
    "PrivateSession",
    "ConstrainedSortedEstimator",
    "SortedLaplaceEstimator",
    "SortAndRoundEstimator",
    "ConstrainedHierarchicalEstimator",
    "HierarchicalLaplaceEstimator",
    "IdentityLaplaceEstimator",
    "WaveletEstimator",
    "isotonic_regression",
    "hierarchical_inference",
    "LaplaceMechanism",
    "PrivacyBudget",
    "PrivacyParameters",
    "UnitCountQuery",
    "SortedCountQuery",
    "HierarchicalQuery",
    "EngineFleet",
    "HistogramEngine",
    "MaterializedRelease",
    "QueryBatch",
    "ReleaseCache",
    "ReleaseStore",
    "__version__",
]
