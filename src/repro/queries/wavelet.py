"""Haar-wavelet query strategy (the Privelet baseline of Xiao et al.).

The Related Work section notes that the wavelet technique of Xiao, Wang
and Gehrke is conceptually similar to the binary ``H`` query — a tree of
increasingly fine-grained summaries — and that Li et al. later showed its
error to be equivalent to a binary ``H``.  We implement it as an external
baseline so the benchmark suite can verify that claim empirically.

Mechanics (binary domains, ``n = 2^m``):

* The *analysis* step computes one base coefficient (the mean of all unit
  counts) and one detail coefficient per internal node of the binary tree
  over the domain: ``d_v = (mean(left half) - mean(right half)) / 2``.
* Adding or removing one record changes the base coefficient by ``1/n``
  and the detail coefficient of each of the ``log2 n`` ancestors of the
  affected leaf by ``1/|range(v)|``.  Adding Laplace noise with
  per-coefficient scale proportional to those magnitudes makes the total
  privacy loss ``ε`` when each coefficient's individual loss is
  ``ε/ℓ`` with ``ℓ = log2(n) + 1`` — the same budget split as ``H``.
* The *synthesis* step reconstructs every unit count from the noisy
  coefficients; range queries are answered by summing reconstructed unit
  counts (detail coefficients of nodes strictly inside the range cancel,
  so the effective error is poly-logarithmic, as for ``H``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import QueryError
from repro.privacy.definitions import PrivacyParameters
from repro.utils.arrays import as_float_vector, require_power_of
from repro.utils.random import as_generator, trial_streams

__all__ = ["HaarWaveletQuery", "WaveletCoefficients", "WaveletCoefficientsBatch"]


@dataclass(frozen=True)
class WaveletCoefficients:
    """Noisy (or exact) Haar coefficients of a count vector.

    ``base`` is the overall mean; ``details[level]`` is the array of detail
    coefficients for the internal nodes at that level of the binary tree
    (level 0 = root, so ``details[0]`` has one entry and
    ``details[m-1]`` has ``n/2`` entries).
    """

    base: float
    details: tuple[np.ndarray, ...]
    epsilon: float | None = None

    @property
    def num_leaves(self) -> int:
        if not self.details:
            return 1
        return int(self.details[-1].size * 2)


@dataclass(frozen=True)
class WaveletCoefficientsBatch:
    """``trials`` independent noisy Haar coefficient sets, stacked.

    ``base`` has shape ``(trials,)``; ``details[level]`` has shape
    ``(trials, 2**level)``.  Row ``t`` across all arrays is one
    :class:`WaveletCoefficients` draw.
    """

    base: np.ndarray
    details: tuple[np.ndarray, ...]
    epsilon: float | None = None

    @property
    def trials(self) -> int:
        return int(np.asarray(self.base).shape[0])

    @property
    def num_leaves(self) -> int:
        if not self.details:
            return 1
        return int(self.details[-1].shape[1] * 2)

    def trial(self, index: int) -> WaveletCoefficients:
        """The ``index``-th trial as a scalar :class:`WaveletCoefficients`."""
        return WaveletCoefficients(
            base=float(self.base[index]),
            details=tuple(level[index] for level in self.details),
            epsilon=self.epsilon,
        )


class HaarWaveletQuery:
    """Haar-wavelet strategy over a binary domain of size ``n = 2^m``."""

    def __init__(self, domain_size: int) -> None:
        require_power_of(domain_size, 2, name="domain_size")
        self.domain_size = int(domain_size)
        self.num_levels = int(round(np.log2(self.domain_size)))

    # -- analysis ------------------------------------------------------------

    @property
    def height(self) -> int:
        """ℓ = log2(n) + 1, matching the binary ``H`` tree height."""
        return self.num_levels + 1

    def transform(self, counts) -> WaveletCoefficients:
        """Exact Haar analysis of a count vector."""
        counts = self._check_counts(counts)
        details: list[np.ndarray] = []
        current = counts.astype(np.float64)
        # Build means bottom-up; detail at a node is half the difference of
        # its children's means.
        for _ in range(self.num_levels):
            pairs = current.reshape(-1, 2)
            details.append((pairs[:, 0] - pairs[:, 1]) / 2.0)
            current = pairs.mean(axis=1)
        details.reverse()  # root level first
        return WaveletCoefficients(base=float(current[0]), details=tuple(details))

    # -- privacy -------------------------------------------------------------

    def coefficient_scales(self, epsilon: float) -> tuple[float, list[float]]:
        """Laplace scales for the base and each detail level.

        A record changes the base by ``1/n`` and the detail at its level-i
        ancestor by ``2^i / n``; giving each coefficient a per-coefficient
        privacy loss of ``ε/ℓ`` therefore requires scales ``ℓ/(n·ε)`` and
        ``ℓ·2^i/(n·ε)`` respectively.
        """
        if epsilon <= 0:
            raise QueryError(f"epsilon must be positive, got {epsilon}")
        per_coefficient = epsilon / self.height
        base_scale = (1.0 / self.domain_size) / per_coefficient
        detail_scales = [
            (2.0**level / self.domain_size) / per_coefficient
            for level in range(self.num_levels)
        ]
        return base_scale, detail_scales

    def randomize(
        self,
        counts,
        params: PrivacyParameters | float,
        rng: np.random.Generator | int | None = None,
    ) -> WaveletCoefficients:
        """ε-differentially private noisy Haar coefficients."""
        if not isinstance(params, PrivacyParameters):
            params = PrivacyParameters(float(params))
        generator = as_generator(rng)
        exact = self.transform(counts)
        base_scale, detail_scales = self.coefficient_scales(params.epsilon)
        noisy_base = exact.base + generator.laplace(0.0, base_scale)
        noisy_details = tuple(
            level_values + generator.laplace(0.0, scale, size=level_values.size)
            for level_values, scale in zip(exact.details, detail_scales)
        )
        return WaveletCoefficients(
            base=float(noisy_base), details=noisy_details, epsilon=params.epsilon
        )

    def randomize_many(
        self,
        counts,
        params: PrivacyParameters | float,
        trials: int,
        rng=None,
    ) -> WaveletCoefficientsBatch:
        """``trials`` independent noisy coefficient sets in one pass.

        The exact analysis runs once; a single stream draws each
        coefficient's noise for all trials in one call, while a per-trial
        seed schedule reproduces ``trials`` scalar :meth:`randomize` calls
        bit for bit (base first, then each detail level, per trial).
        """
        if trials <= 0:
            raise QueryError(f"trials must be positive, got {trials}")
        if not isinstance(params, PrivacyParameters):
            params = PrivacyParameters(float(params))
        exact = self.transform(counts)
        base_scale, detail_scales = self.coefficient_scales(params.epsilon)
        streams = trial_streams(rng, trials)
        if streams is None:
            generator = as_generator(rng)
            base = exact.base + generator.laplace(0.0, base_scale, size=trials)
            details = tuple(
                level_values
                + generator.laplace(0.0, scale, size=(trials, level_values.size))
                for level_values, scale in zip(exact.details, detail_scales)
            )
            return WaveletCoefficientsBatch(
                base=base, details=details, epsilon=params.epsilon
            )
        base = np.empty(trials, dtype=np.float64)
        details = [
            np.empty((trials, level_values.size), dtype=np.float64)
            for level_values in exact.details
        ]
        for trial, stream in enumerate(streams):
            base[trial] = exact.base + stream.laplace(0.0, base_scale)
            for level, (level_values, scale) in enumerate(
                zip(exact.details, detail_scales)
            ):
                details[level][trial] = level_values + stream.laplace(
                    0.0, scale, size=level_values.size
                )
        return WaveletCoefficientsBatch(
            base=base, details=tuple(details), epsilon=params.epsilon
        )

    # -- synthesis -----------------------------------------------------------

    def reconstruct(self, coefficients: WaveletCoefficients) -> np.ndarray:
        """Invert the Haar analysis, returning estimated unit counts."""
        if coefficients.num_leaves != self.domain_size and self.num_levels > 0:
            raise QueryError(
                f"coefficients describe {coefficients.num_leaves} leaves, "
                f"expected {self.domain_size}"
            )
        current = np.array([coefficients.base], dtype=np.float64)
        for level_values in coefficients.details:
            expanded = np.empty(current.size * 2, dtype=np.float64)
            expanded[0::2] = current + level_values
            expanded[1::2] = current - level_values
            current = expanded
        return current

    def reconstruct_many(self, coefficients: WaveletCoefficientsBatch) -> np.ndarray:
        """Trial-batched :meth:`reconstruct`: returns ``(trials, n)`` counts.

        Row ``t`` equals ``reconstruct(coefficients.trial(t))`` bit for bit
        (the synthesis is elementwise per trial).
        """
        if coefficients.num_leaves != self.domain_size and self.num_levels > 0:
            raise QueryError(
                f"coefficients describe {coefficients.num_leaves} leaves, "
                f"expected {self.domain_size}"
            )
        trials = coefficients.trials
        current = np.asarray(coefficients.base, dtype=np.float64).reshape(trials, 1)
        for level_values in coefficients.details:
            expanded = np.empty((trials, current.shape[1] * 2), dtype=np.float64)
            expanded[:, 0::2] = current + level_values
            expanded[:, 1::2] = current - level_values
            current = expanded
        return current

    def range_query(
        self, coefficients: WaveletCoefficients, lo: int, hi: int
    ) -> float:
        """Answer ``c([lo, hi])`` from (noisy) coefficients."""
        if not 0 <= lo <= hi < self.domain_size:
            raise QueryError(
                f"invalid range [{lo}, {hi}] for domain size {self.domain_size}"
            )
        return float(self.reconstruct(coefficients)[lo : hi + 1].sum())

    def expected_leaf_variance(self, epsilon: float) -> float:
        """Analytic variance of one reconstructed unit count.

        Used by the comparison benchmark against ``H``; the closed form is
        ``2·(ℓ/ε)²·(1 + (n² - 1)/3)/n²``.
        """
        base_scale, detail_scales = self.coefficient_scales(epsilon)
        variance = 2.0 * base_scale**2
        for scale in detail_scales:
            variance += 2.0 * scale**2
        return variance

    # -- helpers --------------------------------------------------------------

    def _check_counts(self, counts) -> np.ndarray:
        counts = as_float_vector(counts, name="counts")
        if counts.size != self.domain_size:
            raise QueryError(
                f"count vector has length {counts.size}, expected {self.domain_size}"
            )
        return counts
