"""The hierarchical query sequence ``H`` (Section 4 of the paper).

``H`` arranges interval counts into a complete k-ary tree ``T`` over the
domain: the root covers the whole domain ``[x_1, x_n]``, every node has
``k`` children covering equal sub-intervals, and the leaves are the unit
ranges.  The sequence lists the counts in breadth-first order.  Its
sensitivity is ℓ, the number of nodes on a root-to-leaf path (Proposition
4), because one record contributes to exactly one node per level.

The module has two layers:

* :class:`TreeLayout` — the pure geometry of a complete k-ary tree stored
  in breadth-first array order: parent/child navigation, node intervals,
  level slices, minimal subtree decompositions of ranges, and vectorised
  aggregation of leaf counts up the tree.  It is shared by the ``H``
  estimators and by the hierarchical constrained-inference code.
* :class:`HierarchicalQuery` — the :class:`~repro.queries.base.QuerySequence`
  built on a layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.exceptions import QueryError
from repro.queries.base import QuerySequence

__all__ = ["TreeLayout", "HierarchicalQuery", "decomposition_sums"]


def decomposition_sums(gathered: np.ndarray) -> np.ndarray:
    """Sum the last axis of gathered node values, shape-independently.

    ``gathered`` is ``(..., L)`` — the values of the ``L`` decomposition
    nodes for each trial (and optionally each query).  A plain
    ``.sum(axis=-1)`` picks different accumulation orders depending on the
    array's shape, so a one-trial sum would not be bit-for-bit equal to the
    same trial inside a batch.  ``np.add.reduceat`` reduces each length-L
    segment independently, making the result a function of the segment
    contents only — the invariant the batched-vs-scalar equality tests
    rely on.
    """
    gathered = np.ascontiguousarray(gathered, dtype=np.float64)
    length = gathered.shape[-1]
    flat = gathered.reshape(-1)
    starts = np.arange(0, flat.size, length)
    return np.add.reduceat(flat, starts).reshape(gathered.shape[:-1])


@dataclass(frozen=True)
class TreeLayout:
    """Geometry of a complete k-ary tree over ``num_leaves`` unit buckets.

    Nodes are identified by their breadth-first index: the root is 0,
    level ``i`` occupies indexes ``offset(i) .. offset(i+1) - 1`` where
    ``offset(i) = (k^i - 1)/(k - 1)``.  ``num_leaves`` must be a positive
    power of ``branching``.
    """

    num_leaves: int
    branching: int

    def __post_init__(self) -> None:
        if self.branching < 2:
            raise QueryError(f"branching factor must be >= 2, got {self.branching}")
        if self.num_leaves < 1:
            raise QueryError(f"num_leaves must be positive, got {self.num_leaves}")
        size = self.num_leaves
        while size % self.branching == 0:
            size //= self.branching
        if size != 1:
            raise QueryError(
                f"num_leaves={self.num_leaves} is not a power of branching="
                f"{self.branching}; pad the count vector first"
            )

    # -- global shape -------------------------------------------------------

    @property
    def height(self) -> int:
        """ℓ: number of nodes on a root-to-leaf path (paper's convention)."""
        leaves = self.num_leaves
        levels = 1
        while leaves > 1:
            leaves //= self.branching
            levels += 1
        return levels

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ``m = (k^ℓ - 1)/(k - 1)``."""
        return (self.branching**self.height - 1) // (self.branching - 1)

    @property
    def num_internal(self) -> int:
        """Number of non-leaf nodes."""
        return self.num_nodes - self.num_leaves

    def level_sizes(self) -> list[int]:
        """Number of nodes per level, root (level 0) first."""
        return [self.branching**level for level in range(self.height)]

    @cached_property
    def _level_offsets(self) -> np.ndarray:
        """Cumulative level offsets ``offset(0) .. offset(height)``.

        Entry ``i`` is the breadth-first index of the first node at level
        ``i``; the final entry is ``num_nodes``.  Precomputed once so that
        per-node level lookups are a single ``searchsorted`` instead of a
        per-call scan over the levels.
        """
        sizes = self.branching ** np.arange(self.height, dtype=np.int64)
        return np.concatenate(([0], np.cumsum(sizes)))

    def level_offset(self, level: int) -> int:
        """Breadth-first index of the first node at ``level``."""
        self._check_level(level)
        return int(self._level_offsets[level])

    def level_slice(self, level: int) -> slice:
        """Slice of breadth-first indexes occupied by ``level``."""
        start = self.level_offset(level)
        return slice(start, start + self.branching**level)

    @property
    def leaf_offset(self) -> int:
        """Breadth-first index of the first leaf."""
        return self.level_offset(self.height - 1)

    # -- per-node navigation ---------------------------------------------------

    def _check_level(self, level: int) -> int:
        if not 0 <= level < self.height:
            raise QueryError(f"level {level} outside [0, {self.height})")
        return level

    def check_node(self, node: int) -> int:
        """Validate a breadth-first node index."""
        if not 0 <= node < self.num_nodes:
            raise QueryError(f"node {node} outside [0, {self.num_nodes})")
        return node

    def level_of(self, node: int) -> int:
        """Level (root = 0) of a node, via the precomputed offset table."""
        self.check_node(node)
        return int(np.searchsorted(self._level_offsets, node, side="right") - 1)

    def is_leaf(self, node: int) -> bool:
        """True when the node is a unit-length leaf."""
        return self.check_node(node) >= self.leaf_offset

    def is_root(self, node: int) -> bool:
        """True for the root node."""
        return self.check_node(node) == 0

    def parent(self, node: int) -> int:
        """Breadth-first index of the parent (root has no parent)."""
        self.check_node(node)
        if node == 0:
            raise QueryError("the root has no parent")
        level = self.level_of(node)
        position = node - self.level_offset(level)
        return self.level_offset(level - 1) + position // self.branching

    def children(self, node: int) -> list[int]:
        """Breadth-first indexes of the node's children (empty for leaves)."""
        self.check_node(node)
        if self.is_leaf(node):
            return []
        level = self.level_of(node)
        position = node - self.level_offset(level)
        first = self.level_offset(level + 1) + position * self.branching
        return list(range(first, first + self.branching))

    def node_interval(self, node: int) -> tuple[int, int]:
        """Inclusive leaf-index interval ``[lo, hi]`` covered by the node."""
        self.check_node(node)
        level = self.level_of(node)
        position = node - self.level_offset(level)
        span = self.num_leaves // (self.branching**level)
        lo = position * span
        return lo, lo + span - 1

    def leaf_node(self, leaf_index: int) -> int:
        """Breadth-first node index of the leaf covering unit bucket ``leaf_index``."""
        if not 0 <= leaf_index < self.num_leaves:
            raise QueryError(
                f"leaf index {leaf_index} outside [0, {self.num_leaves})"
            )
        return self.leaf_offset + leaf_index

    def path_to_root(self, node: int) -> list[int]:
        """Nodes from ``node`` up to (and including) the root."""
        self.check_node(node)
        path = [node]
        while path[-1] != 0:
            path.append(self.parent(path[-1]))
        return path

    # -- aggregation and decomposition -------------------------------------------

    def aggregate(self, leaf_counts: np.ndarray) -> np.ndarray:
        """Sum leaf values up the tree, returning all node values in BFS order.

        ``result[v]`` is the sum of ``leaf_counts`` over ``node_interval(v)``.
        Vectorised level by level (each level is a reshape-and-sum of the
        one below), so the cost is ``O(num_nodes)``.
        """
        leaf_counts = np.asarray(leaf_counts, dtype=np.float64)
        if leaf_counts.shape != (self.num_leaves,):
            raise QueryError(
                f"leaf_counts has shape {leaf_counts.shape}, "
                f"expected ({self.num_leaves},)"
            )
        values = np.empty(self.num_nodes, dtype=np.float64)
        values[self.level_slice(self.height - 1)] = leaf_counts
        current = leaf_counts
        for level in range(self.height - 2, -1, -1):
            current = current.reshape(-1, self.branching).sum(axis=1)
            values[self.level_slice(level)] = current
        return values

    def aggregate_many(self, leaf_counts: np.ndarray) -> np.ndarray:
        """Trial-batched :meth:`aggregate`: ``(trials, num_leaves)`` in,
        ``(trials, num_nodes)`` out.

        Row ``t`` of the result equals ``aggregate(leaf_counts[t])``; the
        per-level reshape-and-sum runs once over all trials.
        """
        leaf_counts = np.asarray(leaf_counts, dtype=np.float64)
        if leaf_counts.ndim != 2 or leaf_counts.shape[1] != self.num_leaves:
            raise QueryError(
                f"leaf_counts has shape {leaf_counts.shape}, "
                f"expected (trials, {self.num_leaves})"
            )
        trials = leaf_counts.shape[0]
        values = np.empty((trials, self.num_nodes), dtype=np.float64)
        values[:, self.level_slice(self.height - 1)] = leaf_counts
        current = leaf_counts
        for level in range(self.height - 2, -1, -1):
            current = current.reshape(trials, -1, self.branching).sum(axis=2)
            values[:, self.level_slice(level)] = current
        return values

    def decompose_range(self, lo: int, hi: int) -> list[int]:
        """Minimal set of nodes whose disjoint intervals exactly cover ``[lo, hi]``.

        This is the "sum the fewest sub-intervals" strategy of Section 4.2:
        at most ``2(k-1)`` nodes per level are needed, so the answer to any
        range query is a sum of ``O(k·ℓ)`` noisy node counts.
        """
        if not 0 <= lo <= hi < self.num_leaves:
            raise QueryError(
                f"invalid leaf range [{lo}, {hi}] for {self.num_leaves} leaves"
            )
        nodes: list[int] = []
        self._decompose(0, lo, hi, nodes)
        return nodes

    def _decompose(self, node: int, lo: int, hi: int, out: list[int]) -> None:
        node_lo, node_hi = self.node_interval(node)
        if lo <= node_lo and node_hi <= hi:
            out.append(node)
            return
        if node_hi < lo or hi < node_lo:
            return
        for child in self.children(node):
            self._decompose(child, lo, hi, out)

    def node_label(self, node: int) -> str:
        """Readable label for a node, e.g. ``"[0,7]"`` or ``"[3]"`` for a leaf."""
        lo, hi = self.node_interval(node)
        return f"[{lo}]" if lo == hi else f"[{lo},{hi}]"


class HierarchicalQuery(QuerySequence):
    """The hierarchical query sequence ``H`` with branching factor ``k``.

    The domain size must be a power of ``k``; callers with other sizes pad
    the count vector with empty buckets first
    (:func:`repro.db.histogram.pad_counts`).
    """

    def __init__(self, domain_size: int, branching: int = 2) -> None:
        super().__init__(domain_size)
        self.layout = TreeLayout(num_leaves=domain_size, branching=branching)

    @property
    def branching(self) -> int:
        """Branching factor ``k`` of the interval tree."""
        return self.layout.branching

    @property
    def height(self) -> int:
        """Tree height ℓ (nodes on a root-to-leaf path)."""
        return self.layout.height

    @property
    def output_size(self) -> int:
        return self.layout.num_nodes

    @property
    def sensitivity(self) -> float:
        """Sensitivity of ``H`` is ℓ (Proposition 4)."""
        return float(self.layout.height)

    def answer(self, counts: np.ndarray) -> np.ndarray:
        """All node counts of the tree in breadth-first order."""
        return self.layout.aggregate(self._check_counts(counts))

    def entry_names(self) -> list[str]:
        return [
            f"c({self.layout.node_label(node)})"
            for node in range(self.layout.num_nodes)
        ]

    def range_from_answer(self, answer: np.ndarray, lo: int, hi: int) -> float:
        """Answer ``c([lo, hi])`` by summing the minimal subtree decomposition.

        Works on true or noisy answer vectors alike; this is the H̃ range
        estimator of Section 4.2.
        """
        answer = np.asarray(answer, dtype=np.float64)
        if answer.size != self.layout.num_nodes:
            raise QueryError(
                f"answer vector has length {answer.size}, "
                f"expected {self.layout.num_nodes}"
            )
        nodes = self.layout.decompose_range(lo, hi)
        return float(decomposition_sums(answer[nodes]))

    def range_from_answers(self, answers: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Trial-batched :meth:`range_from_answer` over a ``(trials, m)`` matrix.

        Entry ``t`` equals ``range_from_answer(answers[t], lo, hi)`` bit
        for bit — the same minimal-decomposition gather-and-sum, run once
        across trials.
        """
        answers = np.asarray(answers, dtype=np.float64)
        if answers.ndim != 2 or answers.shape[1] != self.layout.num_nodes:
            raise QueryError(
                f"answer matrix has shape {answers.shape}, "
                f"expected (trials, {self.layout.num_nodes})"
            )
        nodes = self.layout.decompose_range(lo, hi)
        return decomposition_sums(answers[:, nodes])

    def constraint_violations(self, answer: np.ndarray, tolerance: float = 1e-9) -> int:
        """Number of internal nodes whose count differs from the sum of children.

        Zero means the vector satisfies the tree constraints γ_H.
        """
        answer = np.asarray(answer, dtype=np.float64)
        if answer.size != self.layout.num_nodes:
            raise QueryError(
                f"answer vector has length {answer.size}, "
                f"expected {self.layout.num_nodes}"
            )
        violations = 0
        for node in range(self.layout.num_internal):
            children = self.layout.children(node)
            if abs(answer[node] - answer[children].sum()) > tolerance:
                violations += 1
        return violations
