"""Strategy-matrix view of query sequences (the matrix-mechanism connection).

Li et al. (PODS 2010), cited in the paper's Related Work, recast both the
hierarchical and wavelet strategies as instances of the *matrix mechanism*:
a query sequence is a matrix ``A`` (one row per counting query, one column
per unit bucket) applied to the count vector ``x``; the noisy answer is
``A·x + noise`` and any workload of linear queries is estimated by a linear
combination of the noisy rows.

This module builds explicit strategy matrices for ``L`` and ``H`` and
workload matrices for range-query workloads.  They are used by

* the test suite, as an independent oracle: the closed-form hierarchical
  inference of Theorem 3 must equal the ordinary-least-squares solution
  computed from the explicit matrix; and
* the ablation benchmark that evaluates error formulas
  ``trace(W (AᵀA)⁻¹ Wᵀ)`` for different strategies.

Explicit matrices are only feasible for modest domain sizes (the matrix
for ``H`` over ``n`` leaves has ``~2n`` rows), which is exactly the regime
where an oracle is useful.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import QueryError
from repro.queries.base import QuerySequence
from repro.queries.hierarchical import HierarchicalQuery
from repro.queries.identity import UnitCountQuery
from repro.queries.sorted import SortedCountQuery
from repro.queries.workload import RangeWorkload

__all__ = ["strategy_matrix", "workload_matrix", "expected_workload_error"]


_MATRIX_SIZE_LIMIT = 1 << 22  # refuse to materialise matrices above ~4M entries


def strategy_matrix(query: QuerySequence) -> np.ndarray:
    """The 0/1 matrix ``A`` with ``Q(x) = A·x`` for linear query sequences.

    Defined for ``L`` and ``H``.  The sorted query ``S`` is *not* linear
    (sorting depends on the data), so requesting its matrix is an error —
    an intentional guard against silently treating it as linear.
    """
    if isinstance(query, SortedCountQuery):
        raise QueryError("the sorted query S is not a linear query sequence")
    rows = query.output_size
    cols = query.domain_size
    if rows * cols > _MATRIX_SIZE_LIMIT:
        raise QueryError(
            f"strategy matrix would have {rows}x{cols} entries; "
            "use the implicit tree operations instead"
        )
    if isinstance(query, UnitCountQuery):
        return np.eye(cols, dtype=np.float64)
    if isinstance(query, HierarchicalQuery):
        matrix = np.zeros((rows, cols), dtype=np.float64)
        for node in range(query.layout.num_nodes):
            lo, hi = query.layout.node_interval(node)
            matrix[node, lo : hi + 1] = 1.0
        return matrix
    # Generic fallback: probe with unit vectors.  Correct for any linear
    # sequence, cost is one answer() call per bucket.
    matrix = np.zeros((rows, cols), dtype=np.float64)
    for bucket in range(cols):
        unit = np.zeros(cols, dtype=np.float64)
        unit[bucket] = 1.0
        matrix[:, bucket] = query.answer(unit)
    return matrix


def workload_matrix(workload: RangeWorkload) -> np.ndarray:
    """The 0/1 matrix ``W`` whose rows are the workload's range queries."""
    rows = len(workload)
    cols = workload.domain_size
    if rows * cols > _MATRIX_SIZE_LIMIT:
        raise QueryError(
            f"workload matrix would have {rows}x{cols} entries; "
            "evaluate queries individually instead"
        )
    matrix = np.zeros((rows, cols), dtype=np.float64)
    for i, query in enumerate(workload):
        matrix[i, query.lo : query.hi + 1] = 1.0
    return matrix


def expected_workload_error(
    strategy: np.ndarray, workload: np.ndarray, sensitivity: float, epsilon: float
) -> float:
    """Total expected squared error of a workload under the matrix mechanism.

    For strategy matrix ``A`` answered with ``Lap(Δ/ε)`` noise and workload
    ``W`` estimated by ordinary least squares, the total error is
    ``(2Δ²/ε²)·trace(W (AᵀA)⁻¹ Wᵀ)``.  Used to cross-check the Theorem 4
    optimality claim numerically on small domains.
    """
    if epsilon <= 0:
        raise QueryError(f"epsilon must be positive, got {epsilon}")
    if sensitivity <= 0:
        raise QueryError(f"sensitivity must be positive, got {sensitivity}")
    gram = strategy.T @ strategy
    try:
        gram_inv = np.linalg.inv(gram)
    except np.linalg.LinAlgError as exc:
        raise QueryError(
            "strategy matrix is rank deficient; workload error undefined"
        ) from exc
    covariance_trace = float(np.trace(workload @ gram_inv @ workload.T))
    return 2.0 * (sensitivity / epsilon) ** 2 * covariance_trace
