"""Analytic and empirical sensitivity of query sequences.

Sensitivity (Definition 2.2) is the largest L1 change of the answer vector
over neighbouring databases.  Neighbouring databases differ by one record,
which at the count-vector level means one unit count changes by ±1 (with
the constraint that counts stay non-negative when removing).

* :func:`analytic_sensitivity` dispatches to the known closed forms
  (L: 1, S: 1, H: ℓ).
* :func:`empirical_sensitivity` measures the sensitivity on a concrete
  count vector by trying every single-bucket ±1 perturbation; it is used
  by the test suite to confirm that the analytic values are never
  exceeded, and that the ``H`` bound is tight.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SensitivityError
from repro.queries.base import QuerySequence
from repro.queries.hierarchical import HierarchicalQuery
from repro.queries.identity import UnitCountQuery
from repro.queries.sorted import SortedCountQuery
from repro.utils.arrays import as_nonnegative_counts

__all__ = ["analytic_sensitivity", "empirical_sensitivity"]


def analytic_sensitivity(query: QuerySequence) -> float:
    """The proven L1 sensitivity of a known query sequence.

    Falls back to the query's own ``sensitivity`` property for custom
    sequences, after checking it is positive.
    """
    if isinstance(query, (UnitCountQuery, SortedCountQuery)):
        return 1.0
    if isinstance(query, HierarchicalQuery):
        return float(query.height)
    sensitivity = float(query.sensitivity)
    if sensitivity <= 0:
        raise SensitivityError(
            f"{type(query).__name__} reports non-positive sensitivity {sensitivity}"
        )
    return sensitivity


def empirical_sensitivity(
    query: QuerySequence,
    counts,
    buckets: np.ndarray | None = None,
) -> float:
    """Largest observed ``||Q(x) - Q(x')||_1`` over single-record neighbours of ``x``.

    Parameters
    ----------
    query:
        The query sequence under test.
    counts:
        The baseline count vector ``x`` (non-negative).
    buckets:
        Optional subset of bucket indexes to perturb; by default every
        bucket is tried.  Each bucket is perturbed by +1 (record added)
        and, when the count is positive, by -1 (record removed).

    Notes
    -----
    This is a lower bound on the true sensitivity (which is a maximum over
    *all* instances); the tests combine it with adversarially chosen
    ``counts`` for which the analytic bounds are known to be tight.
    """
    counts = as_nonnegative_counts(counts, name="counts")
    if counts.size != query.domain_size:
        raise SensitivityError(
            f"count vector has length {counts.size}, "
            f"expected domain size {query.domain_size}"
        )
    if buckets is None:
        buckets = np.arange(counts.size)
    else:
        buckets = np.asarray(buckets, dtype=np.int64)
        if buckets.size and (buckets.min() < 0 or buckets.max() >= counts.size):
            raise SensitivityError("perturbation bucket outside the domain")
    baseline = query.answer(counts)
    worst = 0.0
    for bucket in buckets:
        for delta in (+1.0, -1.0):
            if delta < 0 and counts[bucket] <= 0:
                continue
            neighbor = counts.copy()
            neighbor[bucket] += delta
            distance = float(np.abs(query.answer(neighbor) - baseline).sum())
            worst = max(worst, distance)
    return worst
