"""The unit-count query sequence ``L``.

``L = <c([x_1]), ..., c([x_n])>`` asks for the count of every unit-length
range.  Adding or removing one record changes exactly one of those counts
by one, so the sensitivity is 1 (Example 2 in the paper).  ``L`` is both
the conventional baseline strategy for universal histograms and the input
representation every other sequence is defined in terms of.
"""

from __future__ import annotations

import numpy as np

from repro.queries.base import QuerySequence

__all__ = ["UnitCountQuery"]


class UnitCountQuery(QuerySequence):
    """The identity query sequence ``L`` over ``n`` unit buckets.

    Inherits the trial-batched
    :meth:`~repro.queries.base.QuerySequence.randomize_many` path: since
    ``L(x) = x``, a ``(trials, n)`` noisy release is one noise-matrix draw
    added to the count vector.
    """

    @property
    def output_size(self) -> int:
        return self.domain_size

    @property
    def sensitivity(self) -> float:
        """Sensitivity of ``L`` is 1: one record affects one unit count by one."""
        return 1.0

    def answer(self, counts: np.ndarray) -> np.ndarray:
        """``L(x)`` is simply ``x`` itself."""
        return self._check_counts(counts).copy()

    def entry_names(self) -> list[str]:
        return [f"c([{i}])" for i in range(self.domain_size)]
