"""The query-sequence protocol shared by L, S, H, and the wavelet baseline.

A query sequence ``Q`` maps the vector of true unit counts ``x`` (the
histogram ``L(I)``) to a vector of answers ``Q(x)``.  Each concrete
sequence knows its own L1 sensitivity, how to produce a noisy
ε-differentially private answer through the Laplace mechanism, and how to
describe its entries for display.

Working on count vectors rather than relations keeps the privacy semantics
intact: adding or removing one record of the database changes exactly one
unit count by exactly one, so the neighbouring relation on count vectors
is "one entry changes by ±1", and sensitivities proven in the paper carry
over verbatim.  The :mod:`repro.db` substrate converts relations to count
vectors at the boundary.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.exceptions import QueryError
from repro.privacy.definitions import PrivacyParameters
from repro.privacy.laplace import LaplaceMechanism
from repro.utils.arrays import as_float_vector

__all__ = ["QuerySequence", "NoisyAnswer", "NoisyAnswerBatch"]


@dataclass(frozen=True)
class NoisyAnswer:
    """The output of answering a query sequence under differential privacy.

    Attributes
    ----------
    values:
        The noisy answer vector ``q̃ = Q̃(I)``.
    epsilon:
        Privacy parameter used.
    sensitivity:
        The L1 sensitivity the noise was calibrated to.
    noise_scale:
        Scale ``Δ_Q/ε`` of the Laplace noise actually added.
    """

    values: np.ndarray
    epsilon: float
    sensitivity: float
    noise_scale: float

    @property
    def per_query_variance(self) -> float:
        """Expected squared error of each individual noisy answer."""
        return 2.0 * self.noise_scale**2

    def __len__(self) -> int:
        return int(self.values.size)


@dataclass(frozen=True)
class NoisyAnswerBatch:
    """``trials`` independent ε-DP answers to one query sequence.

    ``values`` is a ``(trials, m)`` matrix; row ``t`` is distributed exactly
    like one :class:`NoisyAnswer` (and is bit-for-bit equal to it when a
    per-trial seed schedule is used).
    """

    values: np.ndarray
    epsilon: float
    sensitivity: float
    noise_scale: float

    @property
    def trials(self) -> int:
        """Number of independent noisy answer vectors (matrix rows)."""
        return int(self.values.shape[0])

    @property
    def per_query_variance(self) -> float:
        """Expected squared error of each individual noisy answer."""
        return 2.0 * self.noise_scale**2

    def trial(self, index: int) -> NoisyAnswer:
        """The ``index``-th trial as a scalar :class:`NoisyAnswer`."""
        return NoisyAnswer(
            values=self.values[index],
            epsilon=self.epsilon,
            sensitivity=self.sensitivity,
            noise_scale=self.noise_scale,
        )

    def __len__(self) -> int:
        return self.trials


class QuerySequence(abc.ABC):
    """Abstract base class for the paper's query sequences.

    Concrete subclasses are constructed for a specific domain size ``n``
    and expose:

    * :meth:`answer` — the true answers ``Q(x)`` for a count vector ``x``;
    * :attr:`sensitivity` — the L1 sensitivity ``Δ_Q``;
    * :meth:`randomize` — the ε-DP noisy answers via the Laplace mechanism
      (Proposition 1);
    * :meth:`entry_names` — human-readable labels for each answer entry.
    """

    def __init__(self, domain_size: int) -> None:
        if domain_size <= 0:
            raise QueryError(f"domain size must be positive, got {domain_size}")
        self._domain_size = int(domain_size)

    # -- shape ----------------------------------------------------------------

    @property
    def domain_size(self) -> int:
        """Number of unit buckets the sequence is defined over."""
        return self._domain_size

    @property
    @abc.abstractmethod
    def output_size(self) -> int:
        """Number of counting queries in the sequence (length of ``Q(x)``)."""

    def __len__(self) -> int:
        return self.output_size

    # -- semantics --------------------------------------------------------------

    @property
    @abc.abstractmethod
    def sensitivity(self) -> float:
        """L1 sensitivity ``Δ_Q`` under record add/remove."""

    @abc.abstractmethod
    def answer(self, counts: np.ndarray) -> np.ndarray:
        """True answers ``Q(x)`` for the unit-count vector ``x``."""

    def entry_names(self) -> list[str]:
        """Labels for the individual counting queries (for tables/examples)."""
        return [f"{type(self).__name__}[{i}]" for i in range(self.output_size)]

    # -- shared helpers -----------------------------------------------------------

    def _check_counts(self, counts) -> np.ndarray:
        counts = as_float_vector(counts, name="counts")
        if counts.size != self._domain_size:
            raise QueryError(
                f"count vector has length {counts.size}, expected {self._domain_size}"
            )
        return counts

    def mechanism(self, params: PrivacyParameters | float) -> LaplaceMechanism:
        """The Laplace mechanism calibrated to this sequence's sensitivity."""
        if not isinstance(params, PrivacyParameters):
            params = PrivacyParameters(float(params))
        return LaplaceMechanism(sensitivity=self.sensitivity, params=params)

    def randomize(
        self,
        counts,
        params: PrivacyParameters | float,
        rng: np.random.Generator | int | None = None,
    ) -> NoisyAnswer:
        """Answer the sequence under ε-differential privacy.

        Computes the true answers and adds i.i.d. ``Lap(Δ_Q/ε)`` noise to
        each (Proposition 1 of the paper).
        """
        counts = self._check_counts(counts)
        mechanism = self.mechanism(params)
        noisy = mechanism.randomize(self.answer(counts), rng=rng)
        return NoisyAnswer(
            values=noisy,
            epsilon=mechanism.params.epsilon,
            sensitivity=self.sensitivity,
            noise_scale=mechanism.scale,
        )

    def randomize_many(
        self,
        counts,
        params: PrivacyParameters | float,
        trials: int,
        rng=None,
    ) -> NoisyAnswerBatch:
        """Answer the sequence under ε-DP, ``trials`` times at once.

        The true answers are computed once and a ``(trials, m)`` Laplace
        noise matrix is added — the trial-batched counterpart of
        :meth:`randomize`.  ``rng`` is either a single stream (one
        vectorized draw) or a per-trial seed schedule, in which case row
        ``t`` equals the scalar ``randomize(counts, params, rng=schedule[t])``
        bit for bit.
        """
        if trials <= 0:
            raise QueryError(f"trials must be positive, got {trials}")
        counts = self._check_counts(counts)
        mechanism = self.mechanism(params)
        noisy = mechanism.randomize_many(self.answer(counts), trials, rng=rng)
        return NoisyAnswerBatch(
            values=noisy,
            epsilon=mechanism.params.epsilon,
            sensitivity=self.sensitivity,
            noise_scale=mechanism.scale,
        )

    def expected_error(self, params: PrivacyParameters | float) -> float:
        """Total expected squared error of the raw noisy answer vector.

        ``error(Q̃) = m · 2Δ²/ε²`` where ``m`` is the output size —
        Definition 2.3 applied to independent Laplace noise.
        """
        mechanism = self.mechanism(params)
        return self.output_size * mechanism.per_query_variance

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(domain_size={self._domain_size}, "
            f"output_size={self.output_size}, sensitivity={self.sensitivity})"
        )
