"""The sorted query sequence ``S`` (Section 3 of the paper).

``S = <rank_1(U), ..., rank_n(U)>`` returns the multiset of unit counts in
ascending order.  The attribution of counts to buckets is discarded, which
is exactly what an *unattributed histogram* (e.g. a graph degree sequence)
needs.  Crucially:

* the sensitivity of ``S`` is still 1 (Proposition 3): adding a record
  increments the count at the *last* position holding the affected value,
  which preserves the sort order and changes the output by L1 distance 1;
* the output is known a priori to satisfy ``S[i] <= S[i+1]``, the ordering
  constraints γ_S that constrained inference exploits.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import QueryError
from repro.queries.base import QuerySequence

__all__ = ["SortedCountQuery"]


class SortedCountQuery(QuerySequence):
    """The sorted (unattributed) query sequence ``S`` over ``n`` unit buckets."""

    @property
    def output_size(self) -> int:
        return self.domain_size

    @property
    def sensitivity(self) -> float:
        """Sensitivity of ``S`` is 1 (Proposition 3)."""
        return 1.0

    def answer(self, counts: np.ndarray) -> np.ndarray:
        """``S(x)``: the unit counts in ascending order."""
        return np.sort(self._check_counts(counts))

    def entry_names(self) -> list[str]:
        return [f"rank_{i + 1}(U)" for i in range(self.domain_size)]

    @staticmethod
    def constraint_violations(values: np.ndarray) -> int:
        """Number of adjacent out-of-order pairs in a (possibly noisy) answer.

        Zero means the vector already satisfies γ_S; the experiments use
        this to show how often raw noisy answers are inconsistent.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size <= 1:
            return 0
        return int(np.sum(values[:-1] > values[1:]))

    @staticmethod
    def constraint_violations_many(values: np.ndarray) -> np.ndarray:
        """Per-trial :meth:`constraint_violations` over a ``(trials, n)`` matrix."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise QueryError(
                f"expected a (trials, n) matrix, got shape {values.shape}"
            )
        if values.shape[1] <= 1:
            return np.zeros(values.shape[0], dtype=np.int64)
        return np.sum(values[:, :-1] > values[:, 1:], axis=1).astype(np.int64)
