"""Query sequences: L, S, H, and baselines.

The paper's three query sequences over a unit-count histogram of size
``n`` (Section 2, Figure 2):

* **L** (:class:`~repro.queries.identity.UnitCountQuery`) — the counts of
  all unit-length ranges; sensitivity 1.
* **S** (:class:`~repro.queries.sorted.SortedCountQuery`) — the same
  counts in ascending order; sensitivity 1 (Proposition 3), with ordering
  constraints ``s[i] <= s[i+1]``.
* **H** (:class:`~repro.queries.hierarchical.HierarchicalQuery`) — a
  complete k-ary tree of interval counts in breadth-first order;
  sensitivity ℓ, the tree height (Proposition 4), with parent/child sum
  constraints.

Plus the Haar-wavelet query of Xiao et al. (Related Work) as an external
baseline, workload generators for range queries, sensitivity tooling
(analytic and empirical), and the strategy-matrix view that connects the
queries to the matrix mechanism of Li et al.
"""

from repro.queries.base import QuerySequence, NoisyAnswer, NoisyAnswerBatch
from repro.queries.identity import UnitCountQuery
from repro.queries.sorted import SortedCountQuery
from repro.queries.hierarchical import HierarchicalQuery, TreeLayout
from repro.queries.wavelet import HaarWaveletQuery
from repro.queries.workload import RangeWorkload, RangeQuerySpec
from repro.queries.sensitivity import empirical_sensitivity, analytic_sensitivity
from repro.queries.matrix import strategy_matrix, workload_matrix

__all__ = [
    "QuerySequence",
    "NoisyAnswer",
    "NoisyAnswerBatch",
    "UnitCountQuery",
    "SortedCountQuery",
    "HierarchicalQuery",
    "TreeLayout",
    "HaarWaveletQuery",
    "RangeWorkload",
    "RangeQuerySpec",
    "empirical_sensitivity",
    "analytic_sensitivity",
    "strategy_matrix",
    "workload_matrix",
]
