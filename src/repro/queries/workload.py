"""Range-query workload generation.

The universal-histogram experiments (Section 5.2) evaluate estimators on
sets of range queries of varying size and position: for each range size
``2^i`` they draw locations uniformly at random and average the squared
error over samples.  This module provides the workload abstractions the
experiment runners and benchmarks use:

* :class:`RangeQuerySpec` — one range ``[lo, hi]`` in leaf-index space;
* :class:`RangeWorkload` — a named collection of ranges with factory
  methods for the paper's random-size workloads, exhaustive small-domain
  workloads, prefix workloads (cumulative counts), and fixed-size sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import QueryError
from repro.utils.random import as_generator

__all__ = ["RangeQuerySpec", "RangeWorkload"]


@dataclass(frozen=True)
class RangeQuerySpec:
    """A single range query ``c([lo, hi])`` over leaf indexes (inclusive)."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi < self.lo:
            raise QueryError(f"invalid range [{self.lo}, {self.hi}]")

    @property
    def length(self) -> int:
        """Number of unit buckets covered."""
        return self.hi - self.lo + 1

    def true_answer(self, counts: np.ndarray) -> float:
        """Evaluate the range against a vector of true unit counts."""
        counts = np.asarray(counts, dtype=np.float64)
        if self.hi >= counts.size:
            raise QueryError(
                f"range [{self.lo}, {self.hi}] exceeds domain of size {counts.size}"
            )
        return float(counts[self.lo : self.hi + 1].sum())


class RangeWorkload:
    """An ordered collection of range queries over a domain of ``domain_size`` leaves."""

    def __init__(self, domain_size: int, queries: Sequence[RangeQuerySpec], name: str = "workload"):
        if domain_size <= 0:
            raise QueryError(f"domain_size must be positive, got {domain_size}")
        self.domain_size = int(domain_size)
        self.name = name
        for query in queries:
            if query.hi >= self.domain_size:
                raise QueryError(
                    f"query [{query.lo}, {query.hi}] exceeds domain size {domain_size}"
                )
        self._queries = list(queries)

    # -- collection protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[RangeQuerySpec]:
        return iter(self._queries)

    def __getitem__(self, index: int) -> RangeQuerySpec:
        return self._queries[index]

    @property
    def queries(self) -> list[RangeQuerySpec]:
        return list(self._queries)

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """The workload as two parallel ``int64`` arrays ``(los, his)``.

        This is the hand-off format for vectorized consumers such as the
        serving planner (:mod:`repro.serving.planner`) and the batch index
        method :meth:`repro.db.index.SortedColumnIndex.count_ranges`.
        """
        los = np.fromiter((q.lo for q in self._queries), dtype=np.int64, count=len(self._queries))
        his = np.fromiter((q.hi for q in self._queries), dtype=np.int64, count=len(self._queries))
        return los, his

    def true_answers(self, counts: np.ndarray) -> np.ndarray:
        """Vector of true answers for every query in the workload.

        Vectorized via one prefix-sum pass: O(n + q) instead of O(n·q).
        """
        counts = np.asarray(counts, dtype=np.float64)
        if not self._queries:
            return np.zeros(0)
        los, his = self.bounds()
        if his.max() >= counts.size:
            raise QueryError(
                f"workload over {self.domain_size} leaves exceeds count vector "
                f"of size {counts.size}"
            )
        prefix = np.concatenate(([0.0], np.cumsum(counts)))
        return prefix[his + 1] - prefix[los]

    # -- factories ------------------------------------------------------------------

    @classmethod
    def random_ranges(
        cls,
        domain_size: int,
        length: int,
        count: int,
        rng: np.random.Generator | int | None = None,
        name: str | None = None,
    ) -> "RangeWorkload":
        """``count`` ranges of a fixed ``length`` at uniformly random locations.

        This is the workload the paper uses in Figure 6 for each range size.
        """
        if not 1 <= length <= domain_size:
            raise QueryError(
                f"range length {length} must be in [1, {domain_size}]"
            )
        if count <= 0:
            raise QueryError(f"count must be positive, got {count}")
        generator = as_generator(rng)
        starts = generator.integers(0, domain_size - length + 1, size=count)
        queries = [RangeQuerySpec(int(s), int(s) + length - 1) for s in starts]
        return cls(domain_size, queries, name=name or f"random-{length}")

    @classmethod
    def size_sweep(
        cls,
        domain_size: int,
        sizes: Sequence[int],
        count_per_size: int,
        rng: np.random.Generator | int | None = None,
    ) -> dict[int, "RangeWorkload"]:
        """One random workload per range size — the full Figure 6 x-axis."""
        generator = as_generator(rng)
        return {
            int(size): cls.random_ranges(
                domain_size, int(size), count_per_size, rng=generator
            )
            for size in sizes
        }

    @classmethod
    def all_ranges(cls, domain_size: int, max_queries: int | None = None) -> "RangeWorkload":
        """Every range ``[lo, hi]`` (only sensible for small domains).

        ``max_queries`` guards against accidental quadratic blow-ups.
        """
        total = domain_size * (domain_size + 1) // 2
        if max_queries is not None and total > max_queries:
            raise QueryError(
                f"all_ranges would create {total} queries, above the cap {max_queries}"
            )
        queries = [
            RangeQuerySpec(lo, hi)
            for lo in range(domain_size)
            for hi in range(lo, domain_size)
        ]
        return cls(domain_size, queries, name="all-ranges")

    @classmethod
    def prefixes(cls, domain_size: int) -> "RangeWorkload":
        """All prefix ranges ``[0, i]`` — the cumulative-distribution workload."""
        queries = [RangeQuerySpec(0, hi) for hi in range(domain_size)]
        return cls(domain_size, queries, name="prefixes")

    @classmethod
    def unit_queries(cls, domain_size: int) -> "RangeWorkload":
        """All unit-length ranges — equivalent to the ``L`` query as a workload."""
        queries = [RangeQuerySpec(i, i) for i in range(domain_size)]
        return cls(domain_size, queries, name="units")

    @classmethod
    def from_predicate(cls, mask, name: str = "predicate") -> "RangeWorkload":
        """Ranges covering the maximal contiguous runs of a boolean mask.

        A selection predicate over an ordered domain (``age in 30..39 or
        60..69``) is a union of intervals; this factory turns its indicator
        vector into the equivalent range workload, so predicate counts can
        be served from the same prefix-sum pass as plain ranges.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 1 or mask.size == 0:
            raise QueryError("predicate mask must be a non-empty 1-dimensional array")
        padded = np.concatenate(([False], mask, [False]))
        edges = np.flatnonzero(padded[1:] != padded[:-1])
        starts, stops = edges[0::2], edges[1::2]
        queries = [RangeQuerySpec(int(lo), int(hi) - 1) for lo, hi in zip(starts, stops)]
        return cls(mask.size, queries, name=name)

    @classmethod
    def dyadic_sizes(cls, domain_size: int, margin_levels: int = 2) -> list[int]:
        """The paper's range-size grid: powers of two ``2^1 .. 2^(ℓ - margin)``.

        ``margin_levels = 2`` reproduces "sizes 2^i for i = 1..ℓ-2" from
        Section 5.2.
        """
        if domain_size < 2:
            raise QueryError("domain_size must be at least 2")
        height = int(round(np.log2(domain_size))) + 1
        top = max(1, height - margin_levels)
        return [2**i for i in range(1, top + 1) if 2**i <= domain_size]
