"""Exception hierarchy for the ``repro`` library.

Every error raised on purpose by the library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``
from misuse of the Python API, ``KeyboardInterrupt``, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class DomainError(ReproError):
    """A value, interval, or index falls outside the declared domain."""


class SchemaError(ReproError):
    """A relation was constructed or queried with an invalid schema."""


class QueryError(ReproError):
    """A query sequence or range query is malformed."""


class PrivacyBudgetError(ReproError):
    """An operation would exceed the available privacy budget."""


class BudgetExhaustedError(PrivacyBudgetError):
    """A charge was refused because it would exceed the remaining ε.

    The *expected* budget failure (distinct from a misconfigured charge,
    which stays a plain :class:`PrivacyBudgetError`): the caller asked
    for more ε than the total leaves.  The CLI maps it to its own exit
    code so operators can tell "budget spent" from "store broken".
    """


class ReleaseStoreError(ReproError):
    """A durable release store is missing, corrupt, or inconsistent."""


class StoreCorruptionError(ReleaseStoreError):
    """A store artifact or manifest failed an integrity check on load.

    Raised when the damage cannot be isolated (a corrupt manifest);
    per-artifact damage is instead *quarantined* by
    :meth:`~repro.serving.store.ReleaseStore.get` (the artifact is
    renamed to ``*.corrupt`` and the key falls through to a cold
    rebuild), so one bad file never takes down the serve path.
    """


class LineageConflictError(ReleaseStoreError):
    """A stream lineage disagrees with the engine or itself.

    Covers out-of-order/gapped epoch appends, non-contiguous ledgers on
    load, and warm-restart identity mismatches (plan, seed schedule,
    ε schedule, estimator, or base counts that contradict the recorded
    history) — all cases where continuing would corrupt the stream's
    composition ledger.
    """


class SensitivityError(ReproError):
    """Sensitivity could not be established for a query sequence."""


class InferenceError(ReproError):
    """Constrained inference failed (e.g. inconsistent constraint set)."""


class ConstraintViolationError(InferenceError):
    """A vector claimed to be consistent violates its constraint set."""


class ExperimentError(ReproError):
    """An experiment or benchmark harness was configured incorrectly."""
