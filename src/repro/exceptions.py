"""Exception hierarchy for the ``repro`` library.

Every error raised on purpose by the library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``
from misuse of the Python API, ``KeyboardInterrupt``, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class DomainError(ReproError):
    """A value, interval, or index falls outside the declared domain."""


class SchemaError(ReproError):
    """A relation was constructed or queried with an invalid schema."""


class QueryError(ReproError):
    """A query sequence or range query is malformed."""


class PrivacyBudgetError(ReproError):
    """An operation would exceed the available privacy budget."""


class ReleaseStoreError(ReproError):
    """A durable release store is missing, corrupt, or inconsistent."""


class SensitivityError(ReproError):
    """Sensitivity could not be established for a query sequence."""


class InferenceError(ReproError):
    """Constrained inference failed (e.g. inconsistent constraint set)."""


class ConstraintViolationError(InferenceError):
    """A vector claimed to be consistent violates its constraint set."""


class ExperimentError(ReproError):
    """An experiment or benchmark harness was configured incorrectly."""
