"""Batch query planning: thousands of range queries, one vectorized pass.

The serving tier's unit of work is a :class:`QueryBatch` — parallel arrays
of inclusive range bounds, buildable from raw ``(lo, hi)`` pairs or from
any of the workload shapes in :mod:`repro.queries.workload` (random
ranges, units, prefixes, the total, predicate masks).  The
:class:`BatchQueryPlanner` answers a whole batch against a
:class:`~repro.serving.release.MaterializedRelease` with two vectorized
gathers on the release's prefix-sum index; the per-query Python loop is
kept only as the reference implementation the throughput benchmark
measures against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.index import SortedColumnIndex
from repro.exceptions import QueryError
from repro.queries.workload import RangeWorkload
from repro.serving.release import MaterializedRelease
from repro.utils.arrays import as_range_bounds
from repro.utils.random import as_generator

__all__ = ["QueryBatch", "BatchResult", "BatchQueryPlanner"]


@dataclass(frozen=True, eq=False)
class QueryBatch:
    """An ordered batch of inclusive range queries ``[lo_i, hi_i]``.

    Bounds are validated (``0 <= lo <= hi``) and frozen at construction;
    the upper-domain check happens against the release at answer time
    because a batch is not tied to any particular domain size.

    ``eq=False`` because the generated element-wise ``__eq__``/``__hash__``
    would be ambiguous (and raise) on array fields; batches compare and
    hash by identity.
    """

    los: np.ndarray
    his: np.ndarray
    name: str = "batch"

    def __post_init__(self) -> None:
        los, his = as_range_bounds(self.los, self.his)
        los, his = los.copy(), his.copy()
        los.setflags(write=False)
        his.setflags(write=False)
        object.__setattr__(self, "los", los)
        object.__setattr__(self, "his", his)
        object.__setattr__(self, "_max_hi", int(his.max()) if his.size else -1)

    def __len__(self) -> int:
        return int(self.los.size)

    @property
    def lengths(self) -> np.ndarray:
        """Number of unit buckets each query covers."""
        return self.his - self.los + 1

    @property
    def max_hi(self) -> int:
        """The largest upper bound (-1 for an empty batch); precomputed."""
        return self._max_hi

    # -- factories -------------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs, name: str = "batch") -> "QueryBatch":
        """Build from an iterable of ``(lo, hi)`` pairs (or an (n, 2) array)."""
        bounds = np.asarray(list(pairs) if not isinstance(pairs, np.ndarray) else pairs)
        if bounds.size == 0:
            return cls(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), name)
        if bounds.ndim != 2 or bounds.shape[1] != 2:
            raise QueryError(f"expected (n, 2) range pairs, got shape {bounds.shape}")
        return cls(bounds[:, 0], bounds[:, 1], name)

    @classmethod
    def from_workload(cls, workload: RangeWorkload) -> "QueryBatch":
        """Adopt any :class:`RangeWorkload` shape (units, prefixes, random...)."""
        los, his = workload.bounds()
        return cls(los, his, name=workload.name)

    @classmethod
    def units(cls, domain_size: int) -> "QueryBatch":
        """Every unit count — the ``L`` query as a batch."""
        return cls.from_workload(RangeWorkload.unit_queries(domain_size))

    @classmethod
    def prefixes(cls, domain_size: int) -> "QueryBatch":
        """All prefixes ``[0, i]`` — the cumulative-distribution batch."""
        return cls.from_workload(RangeWorkload.prefixes(domain_size))

    @classmethod
    def total(cls, domain_size: int) -> "QueryBatch":
        """The single whole-domain range."""
        if domain_size <= 0:
            raise QueryError(f"domain_size must be positive, got {domain_size}")
        return cls(np.array([0]), np.array([domain_size - 1]), name="total")

    @classmethod
    def from_predicate(cls, mask, name: str = "predicate") -> "QueryBatch":
        """The contiguous runs of a boolean selection mask."""
        return cls.from_workload(RangeWorkload.from_predicate(mask, name=name))

    @classmethod
    def random(
        cls,
        domain_size: int,
        count: int,
        rng: np.random.Generator | int | None = None,
        name: str = "random",
    ) -> "QueryBatch":
        """``count`` ranges with uniformly random endpoints (mixed lengths).

        Unlike :meth:`RangeWorkload.random_ranges` (fixed length, the
        Figure 6 protocol) this draws both endpoints, which is the right
        stand-in for an ad-hoc analyst workload.
        """
        if domain_size <= 0 or count <= 0:
            raise QueryError(
                f"domain_size and count must be positive, got {domain_size}, {count}"
            )
        generator = as_generator(rng)
        a = generator.integers(0, domain_size, size=count)
        b = generator.integers(0, domain_size, size=count)
        return cls(np.minimum(a, b), np.maximum(a, b), name=name)


@dataclass(frozen=True)
class BatchResult:
    """Answers for one submitted batch, plus serving telemetry.

    The two durations separate one-off materialization cost from the
    steady-state serving cost: ``build_seconds`` covers resolving the
    release (a cold mechanism-plus-inference build, a store load, or just
    the cache lookup when warm) while ``answer_seconds`` is the vectorized
    answering pass alone.

    When the engine scored the batch against an uncertainty model (a
    configured :class:`repro.accuracy.slo.AccuracySLO`, or an explicit
    ``with_accuracy=True``), every row also carries its exact variance
    and a ``confidence``-level interval ``[ci_lo, ci_hi]`` around the
    estimate; otherwise those fields are ``None`` and the hot path pays
    nothing.
    """

    answers: np.ndarray
    estimator: str
    epsilon: float
    build_seconds: float
    answer_seconds: float
    from_cache: bool
    variances: np.ndarray | None = None
    ci_los: np.ndarray | None = None
    ci_his: np.ndarray | None = None
    confidence: float | None = None

    @property
    def elapsed_seconds(self) -> float:
        """Total wall-clock time of the submission (build + answer)."""
        return self.build_seconds + self.answer_seconds

    @property
    def ci_halfwidths(self) -> np.ndarray | None:
        """Per-answer CI halfwidths (None when accuracy was not scored)."""
        if self.ci_his is None:
            return None
        return self.ci_his - self.answers

    @property
    def num_queries(self) -> int:
        return int(self.answers.size)

    @property
    def queries_per_second(self) -> float:
        """Serving throughput for this batch, excluding release-build time
        (0 if timing was below clock resolution)."""
        if self.answer_seconds <= 0:
            return 0.0
        return self.num_queries / self.answer_seconds


class BatchQueryPlanner:
    """Answers query batches against materialized releases.

    Stateless: the planner owns no data, only the answering strategies.
    """

    @staticmethod
    def _check(release: MaterializedRelease, batch: QueryBatch) -> None:
        if batch.max_hi >= release.domain_size:
            raise QueryError(
                f"batch {batch.name!r} reaches bucket {batch.max_hi}, beyond "
                f"the release domain of size {release.domain_size}"
            )

    def answer(self, release: MaterializedRelease, batch: QueryBatch) -> np.ndarray:
        """All answers in one vectorized prefix-sum pass (the serving path).

        The batch's bounds were validated at construction and its maximum
        upper bound is checked against the release here, so the release's
        per-call validation scans are skipped.
        """
        self._check(release, batch)
        return release.range_sums(batch.los, batch.his, assume_valid=True)

    def answer_loop(self, release: MaterializedRelease, batch: QueryBatch) -> np.ndarray:
        """Reference per-query Python loop; used by tests and the benchmark."""
        self._check(release, batch)
        return np.array(
            [release.range_sum(lo, hi) for lo, hi in zip(batch.los, batch.his)]
        )

    def true_answers(self, index: SortedColumnIndex, batch: QueryBatch) -> np.ndarray:
        """Non-private ground truth from a sorted-column index.

        Uses the batch :meth:`~repro.db.index.SortedColumnIndex.count_ranges`
        method, so the whole batch costs two binary-search passes.
        """
        if batch.max_hi >= index.domain.size:
            raise QueryError(
                f"batch {batch.name!r} reaches bucket {batch.max_hi}, beyond "
                f"the index domain of size {index.domain.size}"
            )
        return index.count_ranges(batch.los, batch.his).astype(np.float64)
