"""Online serving of materialized private-histogram releases.

The rest of the library produces one-shot releases; this package turns
them into a serving tier built on the paper's key operational property:
once a consistent private histogram is released, any number of range
queries can be answered from it with no further privacy cost
(Proposition 2).  The pieces:

* :class:`MaterializedRelease` — the immutable release artifact with an
  O(1) prefix-sum range index and ``.npz`` serialization
  (:mod:`repro.serving.release`);
* :class:`ReleaseCache` — an LRU over release identities with
  hit/miss/eviction counters (:mod:`repro.serving.cache`);
* :class:`QueryBatch` / :class:`BatchQueryPlanner` — vectorized batch
  answering of range, unit, prefix, total, and predicate queries
  (:mod:`repro.serving.planner`);
* :class:`HistogramEngine` — the façade wiring the Figure 1 roles, a
  thread-safe privacy budget, the cache, and the planner behind
  ``submit(QueryBatch) -> BatchResult`` (:mod:`repro.serving.engine`);
* :class:`ServingStats` — per-request latency/throughput accounting
  (:mod:`repro.serving.stats`).

Quickstart::

    import numpy as np
    from repro.serving import HistogramEngine, QueryBatch

    counts = np.random.default_rng(0).poisson(5, size=1024)
    engine = HistogramEngine(counts, total_epsilon=1.0)
    batch = QueryBatch.random(engine.domain_size, 100_000, rng=0)
    result = engine.submit(batch, "constrained", epsilon=0.1, seed=7)
    result.answers            # 100k range estimates, one prefix-sum pass
    engine.spent_epsilon      # 0.1 — and stays 0.1 on every repeat submit
"""

from repro.serving.cache import CacheStats, ReleaseCache
from repro.serving.engine import (
    ESTIMATOR_NAMES,
    HistogramEngine,
    resolve_estimator,
)
from repro.serving.planner import BatchQueryPlanner, BatchResult, QueryBatch
from repro.serving.release import (
    MaterializedRelease,
    ReleaseKey,
    fingerprint_counts,
)
from repro.serving.stats import ServingStats, StatsSnapshot

__all__ = [
    "MaterializedRelease",
    "ReleaseKey",
    "fingerprint_counts",
    "ReleaseCache",
    "CacheStats",
    "QueryBatch",
    "BatchResult",
    "BatchQueryPlanner",
    "HistogramEngine",
    "resolve_estimator",
    "ESTIMATOR_NAMES",
    "ServingStats",
    "StatsSnapshot",
]
