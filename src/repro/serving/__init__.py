"""Online serving of materialized private-histogram releases.

The rest of the library produces one-shot releases; this package turns
them into a serving tier built on the paper's key operational property:
once a consistent private histogram is released, any number of range
queries can be answered from it with no further privacy cost
(Proposition 2).  The pieces:

* :class:`MaterializedRelease` — the immutable release artifact with an
  O(1) prefix-sum range index and ``.npz`` serialization
  (:mod:`repro.serving.release`);
* :class:`ReleaseStore` — durable, restart-safe persistence of releases
  (:mod:`repro.serving.store`);
* :class:`ReleaseCache` — an LRU over release identities, optionally
  backed by a store, with hit/miss/eviction/store-hit counters
  (:mod:`repro.serving.cache`);
* :class:`QueryBatch` / :class:`BatchQueryPlanner` — vectorized batch
  answering of range, unit, prefix, total, and predicate queries
  (:mod:`repro.serving.planner`);
* :class:`HistogramEngine` — the façade wiring the Figure 1 roles, a
  thread-safe privacy budget (charged only after a successful build), the
  cache, and the planner behind ``submit(QueryBatch) -> BatchResult``
  (:mod:`repro.serving.engine`);
* :class:`EngineFleet` — many engines, one façade: per-dataset budgets,
  a shared cache/store, routing by dataset name, aggregated stats; hosts
  streaming tenants (:mod:`repro.streaming`) and sharded massive-domain
  tenants (:mod:`repro.sharding`) beside static engines
  (:mod:`repro.serving.fleet`);
* :class:`ServingStats` — per-request latency/throughput accounting with
  build time separated from answer time (:mod:`repro.serving.stats`).

Durable artifact layout
-----------------------

A :class:`ReleaseStore` directory looks like::

    <root>/
      manifest.json                  # ReleaseKey -> artifact, oldest put first
      artifacts/
        <fingerprint>-<estimator>-eps<ε>-b<k>-s<seed>-<hash>.v<N>.npz
      streams/                       # written by streaming/sharded engines
        <stream-name>-<hash>.json           # epoch lineage: epoch -> ReleaseKey, ε
        <stream-name>-<hash>.sharded.json   # sharded lineage: epoch -> refresh set + keys

``manifest.json`` is keyed by the *full* release identity (dataset
fingerprint, estimator, ε, branching, seed); every artifact is a
versioned ``.npz`` written atomically (temp file + ``os.replace``), and
loads verify the artifact's stored identity — fingerprint included —
against the requested key before serving it.

**Epoch-versioned artifacts.** The streaming tier
(:mod:`repro.streaming`) reuses this exact layout for incremental
re-release: epoch ``i`` of a stream is an ordinary release whose identity
differs from every other epoch's — the fingerprint covers the epoch's
updated counts, ε follows the stream's schedule, and the seed is
``base_seed + i`` — so each epoch lands in ``artifacts/`` as its own
immutable version, with no special-casing in the store.  The sidecar
``streams/<name>-<hash>.json`` lineage file (hash-suffixed so distinct
stream names never collide after sanitization) orders those identities by epoch
(plus each epoch's ε and row counts), which is what lets a restarted
stream resume its schedule and re-serve its latest epoch from disk with
zero additional ε.  Cache keying is epoch-aware for free: a
:class:`ReleaseCache` key *is* the release identity, so two epochs can
never alias each other in the shared cache.

**Privacy argument.** A materialized release is post-processing of the
ε-charged mechanism output (Proposition 2), so persisting, copying, or
sharing the artifacts — and warm-starting a fresh engine from them —
reveals nothing beyond the original release and costs no additional ε.
The store never holds the true counts; only their fingerprint, used as an
integrity check.

**Retention.** ``manifest.json`` records puts oldest-first (re-puts
refresh recency); :meth:`ReleaseStore.prune` retires everything but the
newest ``keep_latest`` artifacts, while any release referenced by a
stream lineage under ``streams/`` is protected unconditionally — pruning
must never break a stream's zero-ε warm restart.

Quickstart::

    import numpy as np
    from repro.serving import HistogramEngine, QueryBatch, ReleaseStore

    counts = np.random.default_rng(0).poisson(5, size=1024)
    store = ReleaseStore("releases")          # durable across restarts
    engine = HistogramEngine(counts, total_epsilon=1.0, store=store)
    batch = QueryBatch.random(engine.domain_size, 100_000, rng=0)
    result = engine.submit(batch, "constrained", epsilon=0.1, seed=7)
    result.answers            # 100k range estimates, one prefix-sum pass
    engine.spent_epsilon      # 0.1 — and stays 0.1 on every repeat submit

    # ... process restarts ...
    engine = HistogramEngine(counts, total_epsilon=1.0,
                             store=ReleaseStore("releases"))
    engine.submit(batch, "constrained", epsilon=0.1, seed=7)
    engine.materializations   # 0 — warm-started from disk
    engine.spent_epsilon      # 0.0 — zero additional ε
"""

from repro.serving.cache import CacheStats, ReleaseCache
from repro.serving.engine import (
    ESTIMATOR_NAMES,
    HistogramEngine,
    resolve_estimator,
)
from repro.serving.fleet import EngineFleet, FleetStats
from repro.serving.planner import BatchQueryPlanner, BatchResult, QueryBatch
from repro.serving.release import (
    MaterializedRelease,
    ReleaseKey,
    fingerprint_counts,
)
from repro.serving.stats import ServingStats, StatsSnapshot
from repro.serving.store import ReleaseStore

__all__ = [
    "MaterializedRelease",
    "ReleaseKey",
    "fingerprint_counts",
    "ReleaseCache",
    "CacheStats",
    "ReleaseStore",
    "QueryBatch",
    "BatchResult",
    "BatchQueryPlanner",
    "HistogramEngine",
    "EngineFleet",
    "FleetStats",
    "resolve_estimator",
    "ESTIMATOR_NAMES",
    "ServingStats",
    "StatsSnapshot",
]
