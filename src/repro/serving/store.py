"""Durable, restart-safe storage of materialized releases.

A :class:`MaterializedRelease` is expensive in the only currency that
matters — privacy budget — so losing one to a process restart means either
losing service or paying ε again.  The :class:`ReleaseStore` removes that
dilemma: every release is persisted as a versioned ``.npz`` artifact under
a store directory, and a cold engine (via
:class:`~repro.serving.cache.ReleaseCache`) warm-starts from disk with
zero recomputation and **zero additional ε**.

Persisting releases is safe because a materialized release is
post-processing of differentially private output (Proposition 2): the
artifact reveals nothing beyond what the ε-charged mechanism already
released, so it may be written to disk, copied between replicas, or
shipped to analysts without weakening the guarantee.  What must *never*
be persisted is the true count vector — the store therefore records only
the dataset *fingerprint*, which it uses as an integrity check on load.

On-disk layout (see also the package docstring)::

    <root>/
      manifest.json          # maps every full ReleaseKey to its artifact
      artifacts/
        <fingerprint>-<estimator>-eps<ε>-b<k>-s<seed>-<hash>.v1.npz

Writes are atomic: artifacts and the manifest are written to a temporary
file in the same directory and ``os.replace``-d into place, so a crash
mid-write can never leave a truncated artifact behind a manifest entry.
Loads verify that the artifact's stored identity (dataset fingerprint,
estimator, ε, branching, seed) matches the requested key exactly.

Failure handling draws a line between *transient* and *structural*
damage.  Transient trouble — an ``OSError`` from the filesystem, or an
injected :class:`~repro.faults.injector.FaultError` standing in for one
— is retried under the store's :class:`~repro.faults.retry.RetryPolicy`
(when configured) and, if it persists, raised as
:class:`ReleaseStoreError`; nothing is deleted, because the artifact is
presumed intact.  Structural damage — an artifact that no longer parses,
or whose stored identity disagrees with its manifest entry — is
*quarantined*: the file is renamed to ``*.corrupt``, its manifest entry
is dropped, and :meth:`ReleaseStore.get` returns ``None`` so the caller
falls through to a cold rebuild.  One bad file therefore costs one
re-charge, never the serve path.  Only a manifest that itself cannot be
trusted raises :class:`StoreCorruptionError` — damage that cannot be
isolated to a single key must fail loudly.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from pathlib import Path

from repro import faults, obs
from repro.exceptions import ReleaseStoreError, StoreCorruptionError
from repro.faults.injector import CrashFault, FaultError
from repro.faults.retry import RetryPolicy, run_with_retry
from repro.serving.release import FORMAT_VERSION, MaterializedRelease, ReleaseKey
from repro.utils.io_atomic import atomic_write_bytes, atomic_write_json

__all__ = ["ReleaseStore", "STORE_FORMAT_VERSION", "stream_ledger_path"]

#: Version of the manifest schema; bump when the layout changes.
STORE_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
ARTIFACTS_DIR = "artifacts"
STREAMS_DIR = "streams"

#: the fields that identify a release; any JSON object carrying all of
#: them inside a stream lineage file marks its artifact as in use.
_KEY_FIELDS = ("dataset_fingerprint", "estimator", "epsilon", "branching", "seed")

_SAFE = re.compile(r"[^A-Za-z0-9._~-]")


def _key_id(key: ReleaseKey) -> str:
    """A deterministic, injective string identity for a release key."""
    return (
        f"{key.dataset_fingerprint}:{key.estimator}:{key.epsilon!r}:"
        f"{key.branching}:{key.seed}"
    )


def _artifact_name(key: ReleaseKey) -> str:
    """A filename-safe artifact name for ``key``.

    Human-readable fields are sanitized for the filesystem, which could
    collide for adversarial estimator names, so a short hash of the exact
    key identity is appended to make the name injective; the load-time
    identity check is the final authority either way.
    """
    readable = _SAFE.sub(
        "-",
        f"{key.dataset_fingerprint}-{key.estimator}-eps{key.epsilon!r}"
        f"-b{key.branching}-s{key.seed}",
    )
    digest = hashlib.sha256(_key_id(key).encode("utf-8")).hexdigest()[:8]
    return f"{readable}-{digest}.v{FORMAT_VERSION}.npz"


def stream_ledger_path(root, name: str, suffix: str = ".json") -> Path:
    """The canonical lineage-file path for stream ``name`` under ``root``.

    Sanitizing alone is not injective ("clicks/eu" and "clicks-eu" would
    share a ledger — and silently continue each other's ε schedule), so a
    short hash of the exact name keeps distinct streams in distinct
    files, mirroring the store's artifact naming.  The one implementation
    shared by the monolithic and sharded streaming engines, so the two
    can never drift on naming rules.
    """
    safe = _SAFE.sub("-", name)
    digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:8]
    return Path(root) / STREAMS_DIR / f"{safe}-{digest}{suffix}"


class ReleaseStore:
    """A directory of persisted releases, keyed by full release identity.

    The store is thread-safe within one process (a lock serializes
    manifest updates).  It is designed for a single writer per directory;
    any number of read-only consumers (``batch-query`` style tools,
    warm-starting replicas) may open the same directory concurrently.

    Parameters
    ----------
    root:
        The store directory; created (with its ``artifacts/`` subdir) if
        missing.
    retry:
        Optional :class:`~repro.faults.retry.RetryPolicy` applied to
        artifact writes, manifest writes, and artifact loads.  Retries
        cover transient failures only (``OSError`` and injected
        :class:`~repro.faults.injector.FaultError`); they never re-run
        any ε-charged computation — the release being persisted was
        charged exactly once before :meth:`put` was called.
    """

    def __init__(self, root, *, retry: RetryPolicy | None = None) -> None:
        self.root = Path(root)
        self.retry = retry
        self._lock = threading.RLock()
        try:
            (self.root / ARTIFACTS_DIR).mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ReleaseStoreError(
                f"cannot create release store at {self.root}: {error}"
            ) from error
        self._manifest: dict[str, dict] = {}
        self._load_manifest()

    # -- manifest --------------------------------------------------------------

    def _run_durable(self, operation, describe: str):
        """Run one fallible I/O step under the store's retry policy.

        With no policy configured this is a plain call — zero overhead,
        identical behaviour.  The store's own lock is a single-writer
        serialization point, not a serve-path hot lock, so backing off
        while holding it is acceptable (and is why it carries no
        ``guarded-by`` annotation).
        """
        if self.retry is None:
            return operation()
        return run_with_retry(self.retry, operation, describe=describe)

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _load_manifest(self) -> None:
        path = self.manifest_path
        if not path.exists():
            return
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise StoreCorruptionError(
                f"cannot read store manifest {path}: {error}"
            ) from error
        version = document.get("store_format_version")
        if not isinstance(version, int) or version > STORE_FORMAT_VERSION:
            raise StoreCorruptionError(
                f"store manifest {path} has format version {version!r}, "
                f"newer than the supported {STORE_FORMAT_VERSION}"
            )
        releases = document.get("releases")
        if not isinstance(releases, dict):
            raise StoreCorruptionError(
                f"store manifest {path} has no release table"
            )
        self._manifest = releases

    def _write_manifest(self) -> None:
        document = {
            "store_format_version": STORE_FORMAT_VERSION,
            "releases": self._manifest,
        }
        try:
            self._run_durable(
                lambda: atomic_write_json(self.manifest_path, document),
                describe="write store manifest",
            )
        except CrashFault:
            raise  # a simulated process death must not be dressed up
        except (OSError, FaultError) as error:
            raise ReleaseStoreError(
                f"cannot write store manifest {self.manifest_path}: {error}"
            ) from error

    @staticmethod
    def _entry_key(entry: dict) -> ReleaseKey:
        try:
            return ReleaseKey(
                dataset_fingerprint=str(entry["dataset_fingerprint"]),
                estimator=str(entry["estimator"]),
                epsilon=float(entry["epsilon"]),
                branching=int(entry["branching"]),
                seed=int(entry["seed"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StoreCorruptionError(
                f"malformed manifest entry {entry!r}: {error}"
            ) from error

    # -- persistence -----------------------------------------------------------

    def put(self, release: MaterializedRelease) -> Path:
        """Persist ``release``, returning the artifact path written.

        The artifact is written atomically (temp file + rename) before the
        manifest is updated, so a reader can never follow a manifest entry
        to a partial file.  Re-putting an existing key overwrites its
        artifact in place and refreshes its recency (manifest order is
        oldest-put first, which is what :meth:`prune` retires from).
        """
        key = release.key
        key_id = _key_id(key)
        path = self.root / ARTIFACTS_DIR / _artifact_name(key)

        def write_artifact() -> None:
            if faults.enabled():
                faults.check("store.write")
            atomic_write_bytes(path, release._write_npz)

        with self._lock:
            try:
                self._run_durable(write_artifact, describe=f"persist {path.name}")
            except CrashFault:
                raise  # simulated process death: leave whatever a crash leaves
            except (OSError, FaultError) as error:
                raise ReleaseStoreError(
                    f"cannot persist release to {path}: {error}"
                ) from error
            previous = self._manifest.pop(key_id, None)
            self._manifest[key_id] = {
                "dataset_fingerprint": key.dataset_fingerprint,
                "estimator": key.estimator,
                "epsilon": key.epsilon,
                "branching": key.branching,
                "seed": key.seed,
                "artifact": f"{ARTIFACTS_DIR}/{path.name}",
                "format_version": FORMAT_VERSION,
            }
            try:
                self._write_manifest()
            except BaseException:
                # Keep memory in sync with disk: the entry is only visible
                # once the manifest that records it has been persisted.
                if previous is None:
                    self._manifest.pop(key_id, None)
                else:
                    self._manifest[key_id] = previous
                raise
        if obs.enabled():
            obs.registry().counter(
                "repro_store_writes_total", "Release artifacts persisted"
            ).inc()
        return path

    def get(self, key: ReleaseKey) -> MaterializedRelease | None:
        """The persisted release for ``key``, or ``None`` when absent.

        Transient load failures (``OSError`` / injected faults) are
        retried under the store's policy and, if they persist, raised as
        :class:`ReleaseStoreError` — the artifact is presumed intact, so
        nothing is deleted.  *Integrity* failures — an artifact that no
        longer parses, or whose stored identity (including the dataset
        fingerprint) disagrees with ``key`` — quarantine the artifact
        (renamed to ``*.corrupt``, manifest entry dropped) and return
        ``None``, so the caller rebuilds cold instead of serving, or
        dying on, a damaged release.
        """
        with self._lock:
            entry = self._manifest.get(_key_id(key))
        if entry is None:
            return None
        path = self.root / str(entry.get("artifact", ""))
        if self._entry_key(entry) != key:
            return self._quarantine(
                key,
                path,
                "manifest entry records a different identity than its key",
            )

        def load_artifact() -> MaterializedRelease:
            if faults.enabled():
                faults.check("store.load")
            # ``MaterializedRelease.load`` wraps OSError, so probe for
            # plain absence first: a missing file may be a transient
            # mount problem — retryable and loud, never quarantined.
            if not path.is_file():
                raise FileNotFoundError(f"artifact {path} is missing")
            return MaterializedRelease.load(path)

        try:
            release = self._run_durable(
                load_artifact, describe=f"load {path.name}"
            )
        except CrashFault:
            raise
        except FaultError as error:
            # Injected trouble is transient by definition — it models a
            # flaky disk, not a damaged artifact.  Quarantining here
            # would throw away a perfectly good (ε-charged) release.
            raise ReleaseStoreError(
                f"cannot load artifact {path} for {key}: {error}"
            ) from error
        except OSError as error:
            raise ReleaseStoreError(
                f"cannot load artifact {path} for {key}: {error}"
            ) from error
        except Exception as error:
            return self._quarantine(key, path, f"artifact unreadable: {error}")
        if release.key != key:
            return self._quarantine(
                key,
                path,
                f"artifact holds release {release.key}, not the requested key",
            )
        if obs.enabled():
            obs.registry().counter(
                "repro_store_loads_total", "Release artifacts loaded from disk"
            ).inc()
        return release

    def _quarantine(self, key: ReleaseKey, path: Path, reason: str) -> None:
        """Isolate a damaged artifact so the key rebuilds cold.

        The manifest entry is dropped first (and persisted — the drop is
        the authoritative act), then the artifact is renamed to
        ``*.corrupt`` so an operator can post-mortem it.  The rename is
        best-effort: a file that is also *missing* still quarantines
        cleanly.  Returns ``None`` for the convenience of ``get``.
        """
        key_id = _key_id(key)
        relative = f"{ARTIFACTS_DIR}/{path.name}"
        with self._lock:
            entry = self._manifest.pop(key_id, None)
            if entry is not None:
                try:
                    self._write_manifest()
                except BaseException:
                    self._manifest[key_id] = entry
                    raise
            # A tampered manifest can point two entries at one file; if a
            # surviving entry still claims this artifact, only the entry
            # is dropped — renaming the file would damage the other key.
            shared = any(
                other.get("artifact") == relative
                for other in self._manifest.values()
            )
        try:
            if not shared and path.is_file():
                path.replace(path.with_name(path.name + ".corrupt"))
        except OSError:
            pass  # isolation is best-effort; the entry drop already took effect
        if obs.enabled():
            obs.registry().counter(
                "repro_store_quarantines_total",
                "Damaged artifacts quarantined (renamed *.corrupt)",
            ).inc()
        return None

    # -- maintenance -----------------------------------------------------------

    def _lineage_referenced_ids(self) -> set[str]:
        """Key ids referenced by any stream lineage under ``streams/``.

        Walks every lineage document generically — any JSON object
        carrying the five release-identity fields counts — so both the
        monolithic epoch lineage and the sharded lineage (and future
        formats that keep the convention) protect their artifacts.  A
        lineage file that cannot be parsed fails the walk loudly: pruning
        must never proceed on a guess about what a stream still needs.
        """
        streams = self.root / STREAMS_DIR
        if not streams.is_dir():
            return set()
        referenced: set[str] = set()

        def walk(node) -> None:
            if isinstance(node, dict):
                if all(field in node for field in _KEY_FIELDS):
                    referenced.add(_key_id(self._entry_key(node)))
                for value in node.values():
                    walk(value)
            elif isinstance(node, list):
                for value in node:
                    walk(value)

        for path in sorted(streams.glob("*.json")):
            try:
                walk(json.loads(path.read_text()))
            except (OSError, ValueError) as error:
                raise ReleaseStoreError(
                    f"cannot read stream lineage {path} while pruning: {error}"
                ) from error
        return referenced

    def prune(self, keep_latest: int) -> list[ReleaseKey]:
        """Retire all but the ``keep_latest`` most recently put releases.

        The manifest records puts oldest-first (re-puts refresh recency),
        so a store serving a long-lived workload grows without bound;
        ``prune`` is the maintenance valve.  Entries older than the kept
        window are removed from the manifest (written atomically) and
        their artifact files deleted — **except** any release referenced
        by a stream lineage under ``streams/``, which is load-bearing
        state for a warm restart and is never deleted no matter how old.

        Returns the keys actually pruned, oldest first.
        """
        if keep_latest < 0:
            raise ReleaseStoreError(
                f"keep_latest must be >= 0, got {keep_latest}"
            )
        with self._lock:
            protected = self._lineage_referenced_ids()
            entries = list(self._manifest.items())
            # A negative slice clamps at the list start, so keeping more
            # than exists is a no-op rather than a wrap-around deletion.
            window = entries[-keep_latest:] if keep_latest else []
            kept_ids = {key_id for key_id, _ in window}
            doomed = [
                (key_id, entry)
                for key_id, entry in entries
                if key_id not in kept_ids and key_id not in protected
            ]
            if not doomed:
                return []
            backup = dict(self._manifest)
            for key_id, _ in doomed:
                del self._manifest[key_id]
            try:
                self._write_manifest()
            except BaseException:
                self._manifest = backup
                raise
            # Artifacts vanish only after the manifest stopped naming
            # them, so a crash between the two leaves orphan files (cheap)
            # rather than dangling manifest entries (loud errors).
            for _, entry in doomed:
                artifact = self.root / str(entry.get("artifact", ""))
                artifact.unlink(missing_ok=True)
            pruned = [self._entry_key(entry) for _, entry in doomed]
        if obs.enabled():
            registry = obs.registry()
            registry.counter(
                "repro_store_prunes_total", "Prune passes that retired artifacts"
            ).inc()
            registry.counter(
                "repro_store_pruned_releases_total", "Release artifacts pruned"
            ).inc(len(pruned))
        return pruned

    # -- introspection ---------------------------------------------------------

    def __contains__(self, key: ReleaseKey) -> bool:
        with self._lock:
            return _key_id(key) in self._manifest

    def __len__(self) -> int:
        with self._lock:
            return len(self._manifest)

    def keys(self) -> list[ReleaseKey]:
        """Every persisted release identity, in manifest order."""
        with self._lock:
            return [self._entry_key(entry) for entry in self._manifest.values()]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ReleaseStore(root={str(self.root)!r}, releases={len(self)})"
