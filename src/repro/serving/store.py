"""Durable, restart-safe storage of materialized releases.

A :class:`MaterializedRelease` is expensive in the only currency that
matters — privacy budget — so losing one to a process restart means either
losing service or paying ε again.  The :class:`ReleaseStore` removes that
dilemma: every release is persisted as a versioned ``.npz`` artifact under
a store directory, and a cold engine (via
:class:`~repro.serving.cache.ReleaseCache`) warm-starts from disk with
zero recomputation and **zero additional ε**.

Persisting releases is safe because a materialized release is
post-processing of differentially private output (Proposition 2): the
artifact reveals nothing beyond what the ε-charged mechanism already
released, so it may be written to disk, copied between replicas, or
shipped to analysts without weakening the guarantee.  What must *never*
be persisted is the true count vector — the store therefore records only
the dataset *fingerprint*, which it uses as an integrity check on load.

On-disk layout (see also the package docstring)::

    <root>/
      manifest.json          # maps every full ReleaseKey to its artifact
      artifacts/
        <fingerprint>-<estimator>-eps<ε>-b<k>-s<seed>-<hash>.v1.npz

Writes are atomic: artifacts and the manifest are written to a temporary
file in the same directory and ``os.replace``-d into place, so a crash
mid-write can never leave a truncated artifact behind a manifest entry.
Loads verify that the artifact's stored identity (dataset fingerprint,
estimator, ε, branching, seed) matches the requested key exactly; any
mismatch or corruption raises :class:`ReleaseStoreError` rather than
silently serving another dataset's release.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from pathlib import Path

from repro import obs
from repro.exceptions import ReleaseStoreError
from repro.serving.release import FORMAT_VERSION, MaterializedRelease, ReleaseKey
from repro.utils.io_atomic import atomic_write_bytes, atomic_write_json

__all__ = ["ReleaseStore", "STORE_FORMAT_VERSION", "stream_ledger_path"]

#: Version of the manifest schema; bump when the layout changes.
STORE_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
ARTIFACTS_DIR = "artifacts"
STREAMS_DIR = "streams"

#: the fields that identify a release; any JSON object carrying all of
#: them inside a stream lineage file marks its artifact as in use.
_KEY_FIELDS = ("dataset_fingerprint", "estimator", "epsilon", "branching", "seed")

_SAFE = re.compile(r"[^A-Za-z0-9._~-]")


def _key_id(key: ReleaseKey) -> str:
    """A deterministic, injective string identity for a release key."""
    return (
        f"{key.dataset_fingerprint}:{key.estimator}:{key.epsilon!r}:"
        f"{key.branching}:{key.seed}"
    )


def _artifact_name(key: ReleaseKey) -> str:
    """A filename-safe artifact name for ``key``.

    Human-readable fields are sanitized for the filesystem, which could
    collide for adversarial estimator names, so a short hash of the exact
    key identity is appended to make the name injective; the load-time
    identity check is the final authority either way.
    """
    readable = _SAFE.sub(
        "-",
        f"{key.dataset_fingerprint}-{key.estimator}-eps{key.epsilon!r}"
        f"-b{key.branching}-s{key.seed}",
    )
    digest = hashlib.sha256(_key_id(key).encode("utf-8")).hexdigest()[:8]
    return f"{readable}-{digest}.v{FORMAT_VERSION}.npz"


def stream_ledger_path(root, name: str, suffix: str = ".json") -> Path:
    """The canonical lineage-file path for stream ``name`` under ``root``.

    Sanitizing alone is not injective ("clicks/eu" and "clicks-eu" would
    share a ledger — and silently continue each other's ε schedule), so a
    short hash of the exact name keeps distinct streams in distinct
    files, mirroring the store's artifact naming.  The one implementation
    shared by the monolithic and sharded streaming engines, so the two
    can never drift on naming rules.
    """
    safe = _SAFE.sub("-", name)
    digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:8]
    return Path(root) / STREAMS_DIR / f"{safe}-{digest}{suffix}"


class ReleaseStore:
    """A directory of persisted releases, keyed by full release identity.

    The store is thread-safe within one process (a lock serializes
    manifest updates).  It is designed for a single writer per directory;
    any number of read-only consumers (``batch-query`` style tools,
    warm-starting replicas) may open the same directory concurrently.

    Parameters
    ----------
    root:
        The store directory; created (with its ``artifacts/`` subdir) if
        missing.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self._lock = threading.RLock()
        try:
            (self.root / ARTIFACTS_DIR).mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ReleaseStoreError(
                f"cannot create release store at {self.root}: {error}"
            ) from error
        self._manifest: dict[str, dict] = {}
        self._load_manifest()

    # -- manifest --------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _load_manifest(self) -> None:
        path = self.manifest_path
        if not path.exists():
            return
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise ReleaseStoreError(
                f"cannot read store manifest {path}: {error}"
            ) from error
        version = document.get("store_format_version")
        if not isinstance(version, int) or version > STORE_FORMAT_VERSION:
            raise ReleaseStoreError(
                f"store manifest {path} has format version {version!r}, "
                f"newer than the supported {STORE_FORMAT_VERSION}"
            )
        releases = document.get("releases")
        if not isinstance(releases, dict):
            raise ReleaseStoreError(f"store manifest {path} has no release table")
        self._manifest = releases

    def _write_manifest(self) -> None:
        document = {
            "store_format_version": STORE_FORMAT_VERSION,
            "releases": self._manifest,
        }
        try:
            atomic_write_json(self.manifest_path, document)
        except OSError as error:
            raise ReleaseStoreError(
                f"cannot write store manifest {self.manifest_path}: {error}"
            ) from error

    @staticmethod
    def _entry_key(entry: dict) -> ReleaseKey:
        try:
            return ReleaseKey(
                dataset_fingerprint=str(entry["dataset_fingerprint"]),
                estimator=str(entry["estimator"]),
                epsilon=float(entry["epsilon"]),
                branching=int(entry["branching"]),
                seed=int(entry["seed"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ReleaseStoreError(
                f"malformed manifest entry {entry!r}: {error}"
            ) from error

    # -- persistence -----------------------------------------------------------

    def put(self, release: MaterializedRelease) -> Path:
        """Persist ``release``, returning the artifact path written.

        The artifact is written atomically (temp file + rename) before the
        manifest is updated, so a reader can never follow a manifest entry
        to a partial file.  Re-putting an existing key overwrites its
        artifact in place and refreshes its recency (manifest order is
        oldest-put first, which is what :meth:`prune` retires from).
        """
        key = release.key
        key_id = _key_id(key)
        path = self.root / ARTIFACTS_DIR / _artifact_name(key)
        with self._lock:
            try:
                atomic_write_bytes(path, release._write_npz)
            except OSError as error:
                raise ReleaseStoreError(
                    f"cannot persist release to {path}: {error}"
                ) from error
            previous = self._manifest.pop(key_id, None)
            self._manifest[key_id] = {
                "dataset_fingerprint": key.dataset_fingerprint,
                "estimator": key.estimator,
                "epsilon": key.epsilon,
                "branching": key.branching,
                "seed": key.seed,
                "artifact": f"{ARTIFACTS_DIR}/{path.name}",
                "format_version": FORMAT_VERSION,
            }
            try:
                self._write_manifest()
            except BaseException:
                # Keep memory in sync with disk: the entry is only visible
                # once the manifest that records it has been persisted.
                if previous is None:
                    self._manifest.pop(key_id, None)
                else:
                    self._manifest[key_id] = previous
                raise
        if obs.enabled():
            obs.registry().counter(
                "repro_store_writes_total", "Release artifacts persisted"
            ).inc()
        return path

    def get(self, key: ReleaseKey) -> MaterializedRelease | None:
        """The persisted release for ``key``, or ``None`` when absent.

        Raises :class:`ReleaseStoreError` when the manifest names an
        artifact that is missing, unreadable, or whose stored identity
        (including the dataset fingerprint) disagrees with ``key`` — a
        corrupt store must fail loudly, never answer for the wrong data.
        """
        with self._lock:
            entry = self._manifest.get(_key_id(key))
        if entry is None:
            return None
        if self._entry_key(entry) != key:
            raise ReleaseStoreError(
                f"manifest entry for {key} records a different identity; "
                f"the store at {self.root} is corrupt"
            )
        path = self.root / str(entry.get("artifact", ""))
        try:
            release = MaterializedRelease.load(path)
        except Exception as error:
            raise ReleaseStoreError(
                f"cannot load artifact {path} for {key}: {error}"
            ) from error
        if release.key != key:
            raise ReleaseStoreError(
                f"artifact {path} holds release {release.key}, not the "
                f"requested {key}; refusing to serve a mismatched release"
            )
        if obs.enabled():
            obs.registry().counter(
                "repro_store_loads_total", "Release artifacts loaded from disk"
            ).inc()
        return release

    # -- maintenance -----------------------------------------------------------

    def _lineage_referenced_ids(self) -> set[str]:
        """Key ids referenced by any stream lineage under ``streams/``.

        Walks every lineage document generically — any JSON object
        carrying the five release-identity fields counts — so both the
        monolithic epoch lineage and the sharded lineage (and future
        formats that keep the convention) protect their artifacts.  A
        lineage file that cannot be parsed fails the walk loudly: pruning
        must never proceed on a guess about what a stream still needs.
        """
        streams = self.root / STREAMS_DIR
        if not streams.is_dir():
            return set()
        referenced: set[str] = set()

        def walk(node) -> None:
            if isinstance(node, dict):
                if all(field in node for field in _KEY_FIELDS):
                    referenced.add(_key_id(self._entry_key(node)))
                for value in node.values():
                    walk(value)
            elif isinstance(node, list):
                for value in node:
                    walk(value)

        for path in sorted(streams.glob("*.json")):
            try:
                walk(json.loads(path.read_text()))
            except (OSError, ValueError) as error:
                raise ReleaseStoreError(
                    f"cannot read stream lineage {path} while pruning: {error}"
                ) from error
        return referenced

    def prune(self, keep_latest: int) -> list[ReleaseKey]:
        """Retire all but the ``keep_latest`` most recently put releases.

        The manifest records puts oldest-first (re-puts refresh recency),
        so a store serving a long-lived workload grows without bound;
        ``prune`` is the maintenance valve.  Entries older than the kept
        window are removed from the manifest (written atomically) and
        their artifact files deleted — **except** any release referenced
        by a stream lineage under ``streams/``, which is load-bearing
        state for a warm restart and is never deleted no matter how old.

        Returns the keys actually pruned, oldest first.
        """
        if keep_latest < 0:
            raise ReleaseStoreError(
                f"keep_latest must be >= 0, got {keep_latest}"
            )
        with self._lock:
            protected = self._lineage_referenced_ids()
            entries = list(self._manifest.items())
            # A negative slice clamps at the list start, so keeping more
            # than exists is a no-op rather than a wrap-around deletion.
            window = entries[-keep_latest:] if keep_latest else []
            kept_ids = {key_id for key_id, _ in window}
            doomed = [
                (key_id, entry)
                for key_id, entry in entries
                if key_id not in kept_ids and key_id not in protected
            ]
            if not doomed:
                return []
            backup = dict(self._manifest)
            for key_id, _ in doomed:
                del self._manifest[key_id]
            try:
                self._write_manifest()
            except BaseException:
                self._manifest = backup
                raise
            # Artifacts vanish only after the manifest stopped naming
            # them, so a crash between the two leaves orphan files (cheap)
            # rather than dangling manifest entries (loud errors).
            for _, entry in doomed:
                artifact = self.root / str(entry.get("artifact", ""))
                artifact.unlink(missing_ok=True)
            pruned = [self._entry_key(entry) for _, entry in doomed]
        if obs.enabled():
            registry = obs.registry()
            registry.counter(
                "repro_store_prunes_total", "Prune passes that retired artifacts"
            ).inc()
            registry.counter(
                "repro_store_pruned_releases_total", "Release artifacts pruned"
            ).inc(len(pruned))
        return pruned

    # -- introspection ---------------------------------------------------------

    def __contains__(self, key: ReleaseKey) -> bool:
        with self._lock:
            return _key_id(key) in self._manifest

    def __len__(self) -> int:
        with self._lock:
            return len(self._manifest)

    def keys(self) -> list[ReleaseKey]:
        """Every persisted release identity, in manifest order."""
        with self._lock:
            return [self._entry_key(entry) for entry in self._manifest.values()]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ReleaseStore(root={str(self.root)!r}, releases={len(self)})"
