"""A multi-dataset serving fleet behind one façade.

One process rarely serves a single histogram.  :class:`EngineFleet` hosts
many :class:`~repro.serving.engine.HistogramEngine` instances — one per
registered ``(dataset, attribute)`` — and routes requests to them by
dataset name, while keeping the privacy story per-tenant:

* **per-dataset budgets** — every registered dataset gets its own
  :class:`~repro.privacy.budget.PrivacyBudget`; traffic against one
  dataset can never consume another's ε;
* **one shared cache** — all engines resolve releases through a single
  :class:`~repro.serving.cache.ReleaseCache` (optionally backed by a
  durable :class:`~repro.serving.store.ReleaseStore`).  Cache keys embed
  the dataset fingerprint, so sharing is safe: a release is only ever
  served for the exact counts it was computed from, and two names
  registered over identical counts legitimately share artifacts;
* **aggregated telemetry** — :meth:`EngineFleet.stats` folds every
  engine's :class:`~repro.serving.stats.ServingStats` into one
  fleet-level snapshot plus per-dataset detail.

Quickstart::

    fleet = EngineFleet(store=ReleaseStore("/var/lib/repro-releases"))
    fleet.register("nettrace", nettrace_counts, total_epsilon=1.0)
    fleet.register("searchlogs", searchlogs_counts, total_epsilon=0.5)
    result = fleet.submit("nettrace", batch, "constrained", epsilon=0.1, seed=7)
    fleet.stats().queries_per_second
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.exceptions import ReproError
from repro.queries.workload import RangeWorkload
from repro.serving.cache import ReleaseCache
from repro.serving.engine import HistogramEngine
from repro.serving.planner import BatchResult, QueryBatch
from repro.serving.release import MaterializedRelease
from repro.serving.stats import ServingStats, StatsSnapshot
from repro.serving.store import ReleaseStore

__all__ = ["FleetStats", "EngineFleet"]


@dataclass(frozen=True)
class FleetStats:
    """Aggregated serving telemetry for a whole fleet.

    ``spent_epsilon`` is the sum of per-dataset budgets' spending — pure
    telemetry; the enforced guarantee remains per-dataset, where each
    engine's budget lives.
    """

    datasets: int
    total: StatsSnapshot
    per_dataset: Mapping[str, StatsSnapshot]
    materializations: int
    spent_epsilon: float

    @property
    def requests(self) -> int:
        return self.total.requests

    @property
    def queries(self) -> int:
        return self.total.queries

    @property
    def queries_per_second(self) -> float:
        """Fleet-wide steady-state serving throughput."""
        return self.total.queries_per_second


class EngineFleet:
    """Registry and router for many single-dataset serving engines.

    Parameters
    ----------
    cache:
        A pre-built :class:`ReleaseCache` every engine shares; one is
        created otherwise.
    cache_capacity:
        Capacity of the created cache when ``cache`` is not supplied.
    store:
        Optional durable :class:`ReleaseStore` attached to the created
        cache, so the whole fleet warm-starts from persisted artifacts.
        When supplying ``cache``, attach the store there instead.
    """

    def __init__(
        self,
        *,
        cache: ReleaseCache | None = None,
        cache_capacity: int = 128,
        store: ReleaseStore | None = None,
    ) -> None:
        if cache is not None and store is not None:
            raise ReproError(
                "pass either a shared cache or a store, not both; attach the "
                "store to the shared ReleaseCache instead"
            )
        self.cache = cache if cache is not None else ReleaseCache(cache_capacity, store=store)
        self._engines: dict[str, HistogramEngine] = {}
        self._lock = threading.Lock()

    # -- registry --------------------------------------------------------------

    def register(
        self,
        name: str,
        data,
        total_epsilon: float,
        *,
        attribute: str | None = None,
        delta: float = 0.0,
        branching: int = 2,
    ) -> HistogramEngine:
        """Create and host an engine for ``name`` with its own ε budget.

        ``data``/``attribute``/``total_epsilon`` have the
        :class:`HistogramEngine` semantics.  Registering an existing name
        raises — budgets are load-bearing state that must not be silently
        replaced.
        """
        if not name:
            raise ReproError("a dataset name is required to register an engine")
        duplicate = ReproError(
            f"dataset {name!r} is already registered; unregister it first"
        )
        with self._lock:
            if name in self._engines:
                # Checked before engine construction too: fingerprinting a
                # large count vector is not free, so the common mistake
                # fails before doing any work.
                raise duplicate
        engine = HistogramEngine(
            data,
            total_epsilon,
            attribute=attribute,
            delta=delta,
            branching=branching,
            cache=self.cache,
        )
        with self._lock:
            if name in self._engines:
                raise duplicate
            self._engines[name] = engine
        return engine

    def unregister(self, name: str) -> None:
        """Drop the engine for ``name`` (its cached artifacts remain shared)."""
        with self._lock:
            if self._engines.pop(name, None) is None:
                raise ReproError(f"unknown dataset {name!r}")

    def engine(self, name: str) -> HistogramEngine:
        """The engine serving ``name``; raises for unknown datasets."""
        with self._lock:
            engine = self._engines.get(name)
        if engine is None:
            raise ReproError(
                f"unknown dataset {name!r}; registered: {sorted(self.names()) or 'none'}"
            )
        return engine

    def names(self) -> list[str]:
        """Registered dataset names, sorted."""
        with self._lock:
            return sorted(self._engines)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._engines

    def __len__(self) -> int:
        with self._lock:
            return len(self._engines)

    # -- routing ---------------------------------------------------------------

    def materialize(
        self,
        dataset: str,
        estimator: str = "constrained",
        *,
        epsilon: float,
        branching: int | None = None,
        seed: int = 0,
    ) -> MaterializedRelease:
        """Materialize a release for ``dataset`` (routing by name)."""
        return self.engine(dataset).materialize(
            estimator, epsilon=epsilon, branching=branching, seed=seed
        )

    def submit(
        self,
        dataset: str,
        batch: QueryBatch | RangeWorkload,
        estimator: str = "constrained",
        *,
        epsilon: float,
        branching: int | None = None,
        seed: int = 0,
    ) -> BatchResult:
        """Answer a batch against ``dataset``'s engine (routing by name)."""
        return self.engine(dataset).submit(
            batch, estimator, epsilon=epsilon, branching=branching, seed=seed
        )

    # -- telemetry -------------------------------------------------------------

    def stats(self) -> FleetStats:
        """Aggregate serving stats across every registered engine."""
        with self._lock:
            engines = dict(self._engines)
        per_dataset = {name: engine.stats.snapshot() for name, engine in engines.items()}
        total = ServingStats()
        for snapshot in per_dataset.values():
            total.merge_snapshot(snapshot)
        return FleetStats(
            datasets=len(engines),
            total=total.snapshot(),
            per_dataset=MappingProxyType(per_dataset),
            materializations=sum(e.materializations for e in engines.values()),
            spent_epsilon=sum(e.spent_epsilon for e in engines.values()),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EngineFleet(datasets={self.names()})"
