"""A multi-dataset serving fleet behind one façade.

One process rarely serves a single histogram.  :class:`EngineFleet` hosts
many :class:`~repro.serving.engine.HistogramEngine` instances — one per
registered ``(dataset, attribute)`` — and routes requests to them by
dataset name, while keeping the privacy story per-tenant:

* **per-dataset budgets** — every registered dataset gets its own
  :class:`~repro.privacy.budget.PrivacyBudget`; traffic against one
  dataset can never consume another's ε;
* **one shared cache** — all engines resolve releases through a single
  :class:`~repro.serving.cache.ReleaseCache` (optionally backed by a
  durable :class:`~repro.serving.store.ReleaseStore`).  Cache keys embed
  the dataset fingerprint, so sharing is safe: a release is only ever
  served for the exact counts it was computed from, and two names
  registered over identical counts legitimately share artifacts;
* **aggregated telemetry** — :meth:`EngineFleet.stats` folds every
  engine's :class:`~repro.serving.stats.ServingStats` into one
  fleet-level snapshot plus per-dataset detail.

Quickstart::

    fleet = EngineFleet(store=ReleaseStore("/var/lib/repro-releases"))
    fleet.register("nettrace", nettrace_counts, total_epsilon=1.0)
    fleet.register("searchlogs", searchlogs_counts, total_epsilon=0.5)
    result = fleet.submit("nettrace", batch, "constrained", epsilon=0.1, seed=7)
    fleet.stats().queries_per_second
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Mapping

from repro import obs
from repro.accuracy.slo import (
    AccuracySLO,
    AccuracySnapshot,
    combine_accuracy_snapshots,
)
from repro.exceptions import ReproError
from repro.queries.workload import RangeWorkload
from repro.serving.cache import ReleaseCache
from repro.serving.engine import HistogramEngine
from repro.serving.planner import BatchResult, QueryBatch
from repro.serving.release import MaterializedRelease
from repro.serving.stats import StatsSnapshot, combine_snapshots
from repro.serving.store import ReleaseStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.faults.degrade import BreakerSnapshot
    from repro.sharding.engine import ShardedHistogramEngine
    from repro.sharding.streaming import ShardedStreamingEngine
    from repro.streaming.engine import StreamBatchResult, StreamingHistogramEngine
    from repro.streaming.lineage import EpochRecord

__all__ = ["FleetStats", "EngineFleet"]


@dataclass(frozen=True)
class FleetStats:
    """Aggregated serving telemetry for a whole fleet.

    ``spent_epsilon`` is the sum of per-dataset budgets' spending (static
    engines and streams alike) — pure telemetry; the enforced guarantee
    remains per-dataset, where each engine's budget lives.  Streaming
    tenants additionally surface their epoch lineage: ``epochs`` counts
    epochs built fleet-wide, and ``stream_lineages`` maps each stream to
    its full :class:`~repro.streaming.lineage.EpochRecord` history.

    Health: ``stream_health`` maps each stream to its circuit breaker's
    :class:`~repro.faults.degrade.BreakerSnapshot`, and
    ``degraded_streams`` counts the tenants currently serving stale
    answers (breaker open) — the fleet-level view of graceful
    degradation, with each snapshot's ``last_error`` naming the cause.
    """

    datasets: int
    total: StatsSnapshot
    per_dataset: Mapping[str, StatsSnapshot]
    materializations: int
    spent_epsilon: float
    #: number of streaming tenants registered
    streams: int = 0
    #: epochs built across every stream (lineage lengths, not this-process builds)
    epochs: int = 0
    #: per-stream epoch history, oldest epoch first
    stream_lineages: Mapping[str, tuple["EpochRecord", ...]] = field(
        default_factory=dict
    )
    #: streaming tenants whose circuit breaker is currently open
    degraded_streams: int = 0
    #: per-stream circuit-breaker snapshots (state, trips, last error)
    stream_health: Mapping[str, "BreakerSnapshot"] = field(default_factory=dict)
    #: per-tenant accuracy rollups (answers scored against an SLO or an
    #: explicit ``with_accuracy=True``); empty when nothing was scored
    accuracy: Mapping[str, AccuracySnapshot] = field(default_factory=dict)
    #: fleet-wide fold of every tenant's accuracy snapshot
    accuracy_total: AccuracySnapshot = field(default_factory=AccuracySnapshot)

    @property
    def requests(self) -> int:
        return self.total.requests

    @property
    def queries(self) -> int:
        return self.total.queries

    @property
    def queries_per_second(self) -> float:
        """Fleet-wide steady-state serving throughput."""
        return self.total.queries_per_second


class EngineFleet:
    """Registry and router for many single-dataset serving engines.

    Parameters
    ----------
    cache:
        A pre-built :class:`ReleaseCache` every engine shares; one is
        created otherwise.
    cache_capacity:
        Capacity of the created cache when ``cache`` is not supplied.
    store:
        Optional durable :class:`ReleaseStore` attached to the created
        cache, so the whole fleet warm-starts from persisted artifacts.
        When supplying ``cache``, attach the store there instead.
    """

    def __init__(
        self,
        *,
        cache: ReleaseCache | None = None,
        cache_capacity: int = 128,
        store: ReleaseStore | None = None,
    ) -> None:
        if cache is not None and store is not None:
            raise ReproError(
                "pass either a shared cache or a store, not both; attach the "
                "store to the shared ReleaseCache instead"
            )
        self.cache = cache if cache is not None else ReleaseCache(cache_capacity, store=store)
        self._engines: dict[str, HistogramEngine] = {}
        self._streams: dict[str, "StreamingHistogramEngine"] = {}
        #: names mid-registration: reserved before the (side-effecting)
        #: engine construction so a duplicate race fails before it can
        #: build anything — for streams that build epoch 0 and write a
        #: lineage file, a lost race would otherwise corrupt shared state.
        self._reserved: set[str] = set()
        self._lock = threading.Lock()

    # -- registry --------------------------------------------------------------

    def register(
        self,
        name: str,
        data,
        total_epsilon: float,
        *,
        attribute: str | None = None,
        delta: float = 0.0,
        branching: int = 2,
        slo: AccuracySLO | None = None,
    ) -> HistogramEngine:
        """Create and host an engine for ``name`` with its own ε budget.

        ``data``/``attribute``/``total_epsilon`` have the
        :class:`HistogramEngine` semantics; ``slo`` opts the tenant into
        per-answer accuracy scoring against its target.  Registering an
        existing name raises — budgets are load-bearing state that must
        not be silently replaced.
        """
        if not name:
            raise ReproError("a dataset name is required to register an engine")
        duplicate = ReproError(
            f"dataset {name!r} is already registered; unregister it first"
        )
        self._reserve(name, duplicate)
        try:
            engine = HistogramEngine(
                data,
                total_epsilon,
                attribute=attribute,
                delta=delta,
                branching=branching,
                cache=self.cache,
                slo=slo,
            )
            with self._lock:
                self._engines[name] = engine
        finally:
            with self._lock:
                self._reserved.discard(name)
        return engine

    def _reserve(self, name: str, duplicate: ReproError) -> None:
        """Atomically claim ``name`` before any side-effecting construction.

        Checked against live engines, live streams, and in-flight
        registrations, so two racing register calls cannot both start
        building (and, for streams, both charge ε / write the lineage).
        """
        with self._lock:
            if (
                name in self._engines
                or name in self._streams
                or name in self._reserved
            ):
                raise duplicate
            self._reserved.add(name)

    def register_sharded(
        self,
        name: str,
        data,
        total_epsilon: float,
        *,
        attribute: str | None = None,
        delta: float = 0.0,
        branching: int = 2,
        num_shards: int | None = None,
        shard_size: int | None = None,
        workers: int | None = None,
        worker_mode: str = "auto",
        slo: AccuracySLO | None = None,
    ) -> "ShardedHistogramEngine":
        """Host a sharded massive-domain engine under ``name``.

        The sharded engine duck-types the monolithic one for every fleet
        path — :meth:`submit`, :meth:`materialize`, and :meth:`stats` all
        route to it unchanged — while each of its shards persists through
        the fleet's shared cache/store as a normal versioned artifact.
        It keeps its own ε budget, charged once per sharded release
        (parallel composition across the disjoint shards).
        """
        from repro.sharding.engine import ShardedHistogramEngine

        if not name:
            raise ReproError("a dataset name is required to register an engine")
        duplicate = ReproError(
            f"dataset {name!r} is already registered; unregister it first"
        )
        self._reserve(name, duplicate)
        try:
            engine = ShardedHistogramEngine(
                data,
                total_epsilon,
                attribute=attribute,
                delta=delta,
                branching=branching,
                num_shards=num_shards,
                shard_size=shard_size,
                workers=workers,
                worker_mode=worker_mode,
                cache=self.cache,
                slo=slo,
            )
            with self._lock:
                self._engines[name] = engine
        finally:
            with self._lock:
                self._reserved.discard(name)
        return engine

    def register_stream(
        self,
        name: str,
        data,
        total_epsilon: float,
        *,
        schedule,
        policy=None,
        attribute: str | None = None,
        estimator: str = "constrained",
        branching: int = 2,
        seed: int = 0,
        delta: float = 0.0,
        build_first_epoch: bool = True,
        slo: AccuracySLO | None = None,
    ) -> "StreamingHistogramEngine":
        """Host a continuously refreshed streaming tenant under ``name``.

        The stream shares the fleet's cache (and any store attached to it,
        which also makes its epoch lineage durable) while keeping its own
        ε budget and schedule — streaming and static tenants compose in
        one fleet without sharing privacy state.
        """
        from repro.streaming.engine import StreamingHistogramEngine

        if not name:
            raise ReproError("a dataset name is required to register a stream")
        duplicate = ReproError(
            f"dataset {name!r} is already registered; unregister it first"
        )
        self._reserve(name, duplicate)
        try:
            stream = StreamingHistogramEngine(
                data,
                total_epsilon,
                schedule,
                attribute=attribute,
                policy=policy,
                estimator=estimator,
                branching=branching,
                seed=seed,
                delta=delta,
                cache=self.cache,
                name=name,
                build_first_epoch=build_first_epoch,
                slo=slo,
            )
            with self._lock:
                self._streams[name] = stream
        finally:
            with self._lock:
                self._reserved.discard(name)
        return stream

    def register_sharded_stream(
        self,
        name: str,
        data,
        total_epsilon: float,
        *,
        schedule,
        refresh_rows: int = 1,
        num_shards: int | None = None,
        shard_size: int | None = None,
        attribute: str | None = None,
        estimator: str = "constrained",
        branching: int = 2,
        seed: int = 0,
        delta: float = 0.0,
        workers: int | None = None,
        worker_mode: str = "auto",
        build_first_epoch: bool = True,
        slo: AccuracySLO | None = None,
    ) -> "ShardedStreamingEngine":
        """Host a partial-refresh sharded streaming tenant under ``name``.

        Epochs re-release only the shards whose ingest deltas meet the
        per-shard ``refresh_rows`` threshold; the stream shares the
        fleet's cache/store (which also makes its sharded lineage
        durable) while keeping its own ε budget and schedule.
        """
        from repro.sharding.streaming import ShardedStreamingEngine

        if not name:
            raise ReproError("a dataset name is required to register a stream")
        duplicate = ReproError(
            f"dataset {name!r} is already registered; unregister it first"
        )
        self._reserve(name, duplicate)
        try:
            stream = ShardedStreamingEngine(
                data,
                total_epsilon,
                schedule,
                attribute=attribute,
                refresh_rows=refresh_rows,
                num_shards=num_shards,
                shard_size=shard_size,
                estimator=estimator,
                branching=branching,
                seed=seed,
                delta=delta,
                workers=workers,
                worker_mode=worker_mode,
                cache=self.cache,
                name=name,
                build_first_epoch=build_first_epoch,
                slo=slo,
            )
            with self._lock:
                self._streams[name] = stream
        finally:
            with self._lock:
                self._reserved.discard(name)
        return stream

    def unregister(self, name: str) -> None:
        """Drop the engine or stream for ``name`` (cached artifacts remain)."""
        with self._lock:
            if self._engines.pop(name, None) is not None:
                return
            stream = self._streams.pop(name, None)
        if stream is None:
            raise ReproError(f"unknown dataset {name!r}")
        stream.close()

    def engine(self, name: str) -> HistogramEngine:
        """The engine serving ``name``; raises for unknown datasets."""
        with self._lock:
            engine = self._engines.get(name)
        if engine is None:
            raise ReproError(
                f"unknown dataset {name!r}; registered: {sorted(self.names()) or 'none'}"
            )
        return engine

    def stream(self, name: str) -> "StreamingHistogramEngine":
        """The streaming tenant named ``name``; raises for unknown streams."""
        with self._lock:
            stream = self._streams.get(name)
        if stream is None:
            raise ReproError(
                f"unknown stream {name!r}; registered streams: "
                f"{sorted(self.stream_names()) or 'none'}"
            )
        return stream

    def names(self) -> list[str]:
        """Registered dataset names (static engines and streams), sorted."""
        with self._lock:
            return sorted([*self._engines, *self._streams])

    def stream_names(self) -> list[str]:
        """Registered streaming-tenant names, sorted."""
        with self._lock:
            return sorted(self._streams)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._engines or name in self._streams

    def __len__(self) -> int:
        with self._lock:
            return len(self._engines) + len(self._streams)

    # -- routing ---------------------------------------------------------------

    def materialize(
        self,
        dataset: str,
        estimator: str = "constrained",
        *,
        epsilon: float,
        branching: int | None = None,
        seed: int = 0,
    ) -> MaterializedRelease:
        """Materialize a release for ``dataset`` (routing by name)."""
        return self.engine(dataset).materialize(
            estimator, epsilon=epsilon, branching=branching, seed=seed
        )

    def submit(
        self,
        dataset: str,
        batch: QueryBatch | RangeWorkload,
        estimator: str = "constrained",
        *,
        epsilon: float,
        branching: int | None = None,
        seed: int = 0,
    ) -> BatchResult:
        """Answer a batch against ``dataset``'s engine (routing by name)."""
        return self.engine(dataset).submit(
            batch, estimator, epsilon=epsilon, branching=branching, seed=seed
        )

    def ingest(self, stream: str, indexes) -> int:
        """Ingest rows into the stream named ``stream`` (routing by name)."""
        return self.stream(stream).ingest(indexes)

    def advance_epoch(self, stream: str) -> "EpochRecord":
        """Advance the named stream one epoch synchronously."""
        return self.stream(stream).advance_epoch()

    def submit_stream(self, stream: str, batch) -> "StreamBatchResult":
        """Answer a batch from the named stream's latest epoch."""
        return self.stream(stream).submit(batch)

    # -- telemetry -------------------------------------------------------------

    def stats(self) -> FleetStats:
        """Aggregate serving stats across every registered engine and stream.

        The rollup is a pure fold over immutable per-tenant snapshots
        (:func:`~repro.serving.stats.combine_snapshots` — no shared
        accumulator, no extra lock).  When observability is enabled the
        same per-tenant figures are published as gauges on the default
        registry, so the exported metrics and this snapshot can never
        disagree.
        """
        with self._lock:
            engines = dict(self._engines)
            streams = dict(self._streams)
        per_dataset = {name: engine.stats.snapshot() for name, engine in engines.items()}
        per_dataset.update(
            {name: stream.stats.snapshot() for name, stream in streams.items()}
        )
        lineages = {
            name: tuple(stream.lineage.records) for name, stream in streams.items()
        }
        health = {
            name: stream.breaker.snapshot()
            for name, stream in streams.items()
            if getattr(stream, "breaker", None) is not None
        }
        accuracy = {
            name: tenant.accuracy.snapshot()
            for name, tenant in {**engines, **streams}.items()
            if getattr(tenant, "accuracy", None) is not None
        }
        # Only tenants that actually scored answers appear in the rollup.
        accuracy = {
            name: snapshot
            for name, snapshot in accuracy.items()
            if snapshot.answers
        }
        stats = FleetStats(
            datasets=len(engines) + len(streams),
            total=combine_snapshots(per_dataset.values()),
            per_dataset=MappingProxyType(per_dataset),
            materializations=sum(e.materializations for e in engines.values())
            + sum(s.materializations for s in streams.values()),
            spent_epsilon=sum(e.spent_epsilon for e in engines.values())
            + sum(s.spent_epsilon for s in streams.values()),
            streams=len(streams),
            epochs=sum(len(records) for records in lineages.values()),
            stream_lineages=MappingProxyType(lineages),
            degraded_streams=sum(
                1 for snapshot in health.values() if snapshot.degraded
            ),
            stream_health=MappingProxyType(health),
            accuracy=MappingProxyType(accuracy),
            accuracy_total=combine_accuracy_snapshots(accuracy.values()),
        )
        if obs.enabled():
            self._publish_tenant_gauges(engines, streams, per_dataset, stats)
        return stats

    @staticmethod
    def _publish_tenant_gauges(engines, streams, per_dataset, stats) -> None:
        """Mirror the per-tenant rollup onto the default metrics registry.

        Caller-gated: :meth:`stats` checks ``obs.enabled()`` before
        calling in, so the disabled path never reaches the registry.
        """
        registry = obs.registry()  # statan: ignore[OBS001] caller-gated (see stats())
        requests = registry.gauge(
            "repro_tenant_requests", "Batches answered per tenant"
        )
        queries = registry.gauge(
            "repro_tenant_queries", "Queries answered per tenant"
        )
        cold = registry.gauge(
            "repro_tenant_cold_builds", "Cold-built batches per tenant"
        )
        spent = registry.gauge(
            "repro_tenant_spent_epsilon", "ε spent per tenant (this process)"
        )
        accountants = {**engines, **streams}
        for name, snapshot in per_dataset.items():
            requests.set(snapshot.requests, dataset=name)
            queries.set(snapshot.queries, dataset=name)
            cold.set(snapshot.cold_builds, dataset=name)
            spent.set(accountants[name].spent_epsilon, dataset=name)
        registry.gauge(
            "repro_fleet_datasets", "Tenants registered in the fleet"
        ).set(stats.datasets)
        registry.gauge(
            "repro_fleet_streams", "Streaming tenants registered"
        ).set(stats.streams)
        registry.gauge(
            "repro_fleet_epochs", "Epochs recorded across every stream lineage"
        ).set(stats.epochs)
        registry.gauge(
            "repro_fleet_spent_epsilon", "ε spent fleet-wide (this process)"
        ).set(stats.spent_epsilon)
        degraded = registry.gauge(
            "repro_stream_degraded",
            "1 while the stream's circuit breaker is open (stale-serve mode)",
        )
        for name, snapshot in stats.stream_health.items():
            degraded.set(1.0 if snapshot.degraded else 0.0, stream=name)
        satisfaction = registry.gauge(
            "repro_accuracy_slo_satisfaction",
            "Fraction of scored answers meeting the tenant's accuracy SLO",
        )
        halfwidth = registry.gauge(
            "repro_accuracy_mean_ci_halfwidth",
            "Mean CI halfwidth of scored answers per tenant",
        )
        for name, snapshot in stats.accuracy.items():
            satisfaction.set(snapshot.satisfaction, dataset=name)
            halfwidth.set(snapshot.mean_halfwidth, dataset=name)
        registry.gauge(
            "repro_fleet_accuracy_answers",
            "Answers scored against an accuracy model fleet-wide",
        ).set(stats.accuracy_total.answers)
        registry.gauge(
            "repro_fleet_degraded_streams",
            "Streaming tenants currently serving stale answers",
        ).set(stats.degraded_streams)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EngineFleet(datasets={self.names()})"
