"""Materialized releases: the immutable serving artifact.

The paper's central operational fact (Proposition 2) is that constrained
inference is post-processing: once a consistent private histogram H̄ has
been computed, *any* number of range queries may be answered from it with
no further privacy cost.  A :class:`MaterializedRelease` freezes one such
release — the estimated unit counts plus the provenance needed to identify
it (estimator, ε, branching, seed, and a fingerprint of the source data) —
and equips it with an O(1) prefix-sum range index so the serving tier can
answer queries at memory speed.

Releases serialize to a single ``.npz`` file, so a data owner can
materialize once (paying ε) and ship the artifact to any number of
analysts or serving replicas.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.estimators.base import FittedRangeEstimate
from repro.exceptions import QueryError, ReproError
from repro.privacy.definitions import PrivacyParameters
from repro.utils.arrays import as_float_vector, as_range_bounds

__all__ = ["ReleaseKey", "MaterializedRelease", "fingerprint_counts"]

#: On-disk format version; bump when the ``.npz`` layout changes.
FORMAT_VERSION = 1


def fingerprint_counts(counts) -> str:
    """A short, stable fingerprint of a count vector.

    Two datasets share a fingerprint iff they have identical unit counts,
    so the fingerprint is a safe cache-key component: a release computed
    for one dataset is never served for another.
    """
    counts = np.ascontiguousarray(as_float_vector(counts, name="counts"))
    digest = hashlib.sha256()
    digest.update(str(counts.shape).encode("ascii"))
    digest.update(counts.tobytes())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class ReleaseKey:
    """The identity of one materialized release.

    Two materialization requests that agree on every field would produce
    the same artifact, so the serving cache may (and does) answer the
    second from the first — with zero additional ε spent.
    """

    dataset_fingerprint: str
    estimator: str
    epsilon: float
    branching: int
    seed: int

    def to_json(self) -> dict:
        """The key as a plain JSON-ready dict (one field per identity part)."""
        return {
            "dataset_fingerprint": self.dataset_fingerprint,
            "estimator": self.estimator,
            "epsilon": self.epsilon,
            "branching": self.branching,
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, entry: dict) -> "ReleaseKey":
        """Rebuild a key from :meth:`to_json` output (extra fields ignored).

        Raises :class:`~repro.exceptions.ReproError` on missing or
        mistyped fields, so every ledger that embeds keys fails loudly on
        a malformed entry instead of serving a half-parsed identity.
        """
        try:
            return cls(
                dataset_fingerprint=str(entry["dataset_fingerprint"]),
                estimator=str(entry["estimator"]),
                epsilon=float(entry["epsilon"]),
                branching=int(entry["branching"]),
                seed=int(entry["seed"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ReproError(
                f"malformed release key entry {entry!r}: {error}"
            ) from error


class MaterializedRelease:
    """An immutable consistent-histogram release with an O(1) range index.

    Parameters
    ----------
    unit_estimates:
        The released per-bucket estimates (the consistent leaves for H̄;
        noisy unit counts for the baselines).  Copied and frozen.
    estimator:
        Name of the strategy that produced the estimates ("H_bar", "L~",
        "H~", "wavelet", or "truth" for non-private ground truth).
    epsilon:
        Privacy parameter the release consumed.
    dataset_fingerprint:
        Fingerprint of the source counts (:func:`fingerprint_counts`).
    branching:
        Branching factor of the underlying tree query (recorded even for
        flat strategies so the cache key is total).
    seed:
        The seed the mechanism noise was drawn with; materialized releases
        require an explicit seed so that identity, not chance, determines
        cache hits.

    Range queries are answered from a precomputed prefix-sum array:
    ``c([lo, hi]) = prefix[hi + 1] - prefix[lo]``, one subtraction per
    query regardless of range length, and a whole batch is two fancy
    indexing operations.
    """

    def __init__(
        self,
        unit_estimates,
        *,
        estimator: str,
        epsilon: float,
        dataset_fingerprint: str,
        branching: int = 2,
        seed: int = 0,
    ) -> None:
        leaves = as_float_vector(unit_estimates, name="unit_estimates").copy()
        PrivacyParameters(float(epsilon))  # validates ε > 0
        if int(branching) < 2:
            raise QueryError(f"branching factor must be >= 2, got {branching}")
        leaves.setflags(write=False)
        self._leaves = leaves
        prefix = np.concatenate(([0.0], np.cumsum(leaves)))
        prefix.setflags(write=False)
        self._prefix = prefix
        self.estimator = str(estimator)
        self.epsilon = float(epsilon)
        self.dataset_fingerprint = str(dataset_fingerprint)
        self.branching = int(branching)
        self.seed = int(seed)

    # -- identity -------------------------------------------------------------

    @property
    def key(self) -> ReleaseKey:
        """The cache key this release answers for."""
        return ReleaseKey(
            dataset_fingerprint=self.dataset_fingerprint,
            estimator=self.estimator,
            epsilon=self.epsilon,
            branching=self.branching,
            seed=self.seed,
        )

    @property
    def domain_size(self) -> int:
        """Number of unit buckets the release covers."""
        return int(self._leaves.size)

    # -- answering ------------------------------------------------------------

    def unit_counts(self) -> np.ndarray:
        """The released unit estimates (copy)."""
        return self._leaves.copy()

    def unit_counts_view(self) -> np.ndarray:
        """The released unit estimates as a read-only view (no copy).

        For bulk consumers (sharded assembly stitches many releases per
        epoch) where the defensive copy of :meth:`unit_counts` would
        double the transient memory.  A slice view, not the owning
        array: ``setflags(write=True)`` on it raises, so callers cannot
        re-enable writes and mutate the served release.
        """
        return self._leaves[:]

    def total(self) -> float:
        """Estimate of the total number of records."""
        return float(self._prefix[-1])

    def range_sum(self, lo: int, hi: int) -> float:
        """Estimate ``c([lo, hi])`` (inclusive) in O(1)."""
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi < self._leaves.size:
            raise QueryError(
                f"invalid range [{lo}, {hi}] for domain size {self._leaves.size}"
            )
        return float(self._prefix[hi + 1] - self._prefix[lo])

    def range_sums(self, los, his, assume_valid: bool = False) -> np.ndarray:
        """Estimates for a whole batch of inclusive ranges in one pass.

        ``los`` and ``his`` are equal-length integer arrays; the answer is
        computed with two vectorized gathers on the prefix-sum array —
        no Python-level loop.

        ``assume_valid`` skips the bounds scans for callers that have
        already validated the batch (the planner validates once per
        :class:`~repro.serving.planner.QueryBatch`, not once per answer
        pass); invalid bounds then raise or, worse, silently wrap, so
        only pass ``True`` for pre-checked arrays.
        """
        if assume_valid:
            los = np.asarray(los, dtype=np.int64)
            his = np.asarray(his, dtype=np.int64)
        else:
            los, his = as_range_bounds(los, his, self._leaves.size)
        return self._prefix[his + 1] - self._prefix[los]

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_fitted(
        cls,
        fitted: FittedRangeEstimate,
        dataset_fingerprint: str,
        *,
        branching: int = 2,
        seed: int = 0,
    ) -> "MaterializedRelease":
        """Freeze the analyst-side result of one estimator run.

        Only the unit estimates are materialized; range queries are then
        sums of released unit counts.  For consistent releases (H̄, L̃, the
        wavelet reconstruction) this equals every other decomposition of
        the range, which is exactly the consistency property the paper's
        inference step buys.
        """
        return cls(
            fitted.unit_estimates,
            estimator=fitted.name,
            epsilon=fitted.epsilon,
            dataset_fingerprint=dataset_fingerprint,
            branching=branching,
            seed=seed,
        )

    # -- serialization ---------------------------------------------------------

    def _write_npz(self, handle) -> None:
        """Serialize the release's ``.npz`` payload to an open binary handle.

        Exposed (privately) so :class:`~repro.serving.store.ReleaseStore`
        can stream the exact same format into a temporary file for its
        atomic write-then-rename protocol.
        """
        np.savez(
            handle,
            format_version=np.int64(FORMAT_VERSION),
            unit_estimates=self._leaves,
            estimator=np.str_(self.estimator),
            epsilon=np.float64(self.epsilon),
            dataset_fingerprint=np.str_(self.dataset_fingerprint),
            branching=np.int64(self.branching),
            seed=np.int64(self.seed),
        )

    def save(self, path) -> Path:
        """Write the release to ``path`` as a ``.npz`` archive.

        Returns the path actually written (numpy appends ``.npz`` when the
        suffix is missing).
        """
        path = Path(path)
        try:
            with open(path, "wb") as handle:
                self._write_npz(handle)
        except OSError as error:
            raise ReproError(f"cannot write release to {path}: {error}") from error
        return path

    @classmethod
    def load(cls, path) -> "MaterializedRelease":
        """Read a release previously written by :meth:`save`."""
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                version = int(data["format_version"])
                if version > FORMAT_VERSION:
                    raise ReproError(
                        f"release file {path} has format version {version}, "
                        f"newer than the supported {FORMAT_VERSION}"
                    )
                return cls(
                    data["unit_estimates"],
                    estimator=str(data["estimator"]),
                    epsilon=float(data["epsilon"]),
                    dataset_fingerprint=str(data["dataset_fingerprint"]),
                    branching=int(data["branching"]),
                    seed=int(data["seed"]),
                )
        except (OSError, KeyError, ValueError) as error:
            raise ReproError(f"cannot load release from {path}: {error}") from error

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MaterializedRelease(estimator={self.estimator!r}, "
            f"epsilon={self.epsilon:g}, domain_size={self.domain_size}, "
            f"fingerprint={self.dataset_fingerprint!r})"
        )
