"""The serving façade: materialize once, answer millions of times.

:class:`HistogramEngine` turns the library's one-shot release flow into a
long-lived query-answering service.  It wires together

* the Figure 1 roles — each cold H̄ build runs through an explicit
  :class:`~repro.core.pipeline.PrivateSession` (analyst poses H, owner
  answers under ε, analyst infers the consistent leaves);
* a thread-safe :class:`PrivacyBudget` enforcing sequential composition
  across every release the engine ever materializes — charged **only
  after** a release has actually been computed, so a failing mechanism or
  inference run can never leak ε;
* the :class:`~repro.serving.cache.ReleaseCache`, so a repeated
  ``(estimator, ε, branching, seed)`` request is answered from the
  existing artifact with **zero** additional inference and **zero**
  additional ε — the operational payoff of Proposition 2;
* optionally a :class:`~repro.serving.store.ReleaseStore`, so releases
  survive process restarts and a cold engine warm-starts from disk, again
  with zero recomputation and zero additional ε;
* the :class:`~repro.serving.planner.BatchQueryPlanner`, so a batch of
  thousands of range queries costs one vectorized prefix-sum pass.

The engine lives in the data owner's trust domain (it holds the true
counts); everything it returns — releases and batch answers — is
post-processing of differentially private output and safe to export.
"""

from __future__ import annotations

import threading
from time import perf_counter

import numpy as np

from repro import obs
from repro.accuracy.models import UncertaintyModel, uncertainty_model_for
from repro.accuracy.slo import DEFAULT_CONFIDENCE, AccuracySLO, AccuracyStats
from repro.core.pipeline import PrivateSession
from repro.db.histogram import HistogramBuilder
from repro.db.relation import Relation
from repro.estimators.base import RangeQueryEstimator
from repro.estimators.hierarchical import (
    ConstrainedHierarchicalEstimator,
    HierarchicalLaplaceEstimator,
)
from repro.estimators.identity import IdentityLaplaceEstimator
from repro.estimators.wavelet import WaveletEstimator
from repro.exceptions import BudgetExhaustedError, PrivacyBudgetError, ReproError
from repro.privacy.budget import PrivacyBudget
from repro.privacy.definitions import PrivacyParameters
from repro.queries.workload import RangeWorkload
from repro.serving.cache import ReleaseCache
from repro.serving.planner import BatchQueryPlanner, BatchResult, QueryBatch
from repro.serving.release import MaterializedRelease, ReleaseKey, fingerprint_counts
from repro.serving.stats import ServingStats
from repro.serving.store import ReleaseStore
from repro.utils.arrays import as_float_vector

__all__ = [
    "ESTIMATOR_NAMES",
    "canonical_estimator_name",
    "resolve_estimator",
    "compute_release_leaves",
    "record_submit_metrics",
    "record_accuracy_metrics",
    "score_batch_accuracy",
    "HistogramEngine",
]


#: (registry, handles) pair backing :func:`record_submit_metrics`; the
#: serve families are resolved once per registry instead of five
#: get-or-create lookups per answered batch.  Racy rebuilds are benign
#: (both threads compute the same handles for the same registry).
_submit_metric_handles: tuple = (None, None)


def _submit_handles(registry):
    global _submit_metric_handles
    cached_registry, handles = _submit_metric_handles
    if cached_registry is not registry:
        handles = (
            registry.counter("repro_serve_batches_total", "Query batches answered"),
            registry.counter("repro_serve_queries_total", "Range queries answered"),
            registry.histogram(
                "repro_serve_answer_seconds", "Batch answer latency (seconds)"
            ),
            registry.histogram(
                "repro_serve_build_seconds",
                "Release resolution latency per batch (seconds)",
            ),
            registry.counter(
                "repro_serve_cold_builds_total",
                "Batches whose release was built cold (charged ε)",
            ),
        )
        _submit_metric_handles = (registry, handles)
    return handles


def record_submit_metrics(
    engine_kind: str,
    num_queries: int,
    answer_seconds: float,
    build_seconds: float = 0.0,
    built: bool = False,
) -> None:
    """Report one answered batch into the default metrics registry.

    Shared by every submit path (monolithic, sharded, streaming) so the
    serve metric families carry one consistent ``engine`` label.  Callers
    gate on :func:`repro.obs.enabled` — this function assumes reporting
    is on.
    """
    # Caller-gated contract (docstring above): every submit path checks
    # obs.enabled() before calling in, keeping the hot path boolean-only.
    batches, queries, answer, build, cold = _submit_handles(obs.registry())  # statan: ignore[OBS001]
    batches.inc(engine=engine_kind)
    queries.inc(num_queries, engine=engine_kind)
    answer.observe(answer_seconds, engine=engine_kind)
    build.observe(build_seconds, engine=engine_kind)
    if built:
        cold.inc(engine=engine_kind)


#: (registry, handles) cache for :func:`record_accuracy_metrics`,
#: mirroring :func:`_submit_handles`; racy rebuilds are benign.
_accuracy_metric_handles: tuple = (None, None)


def _accuracy_handles(registry):
    global _accuracy_metric_handles
    cached_registry, handles = _accuracy_metric_handles
    if cached_registry is not registry:
        handles = (
            registry.counter(
                "repro_accuracy_answers_total",
                "Answers scored against an uncertainty model",
            ),
            registry.counter(
                "repro_accuracy_slo_misses_total",
                "Scored answers whose CI halfwidth exceeded the SLO target",
            ),
        )
        _accuracy_metric_handles = (registry, handles)
    return handles


def record_accuracy_metrics(
    engine_kind: str, num_answers: int, num_misses: int
) -> None:
    """Report one accuracy-scored batch into the default registry.

    Shared by every submit path so the ``repro_accuracy_*`` families
    carry the same ``engine`` label as the serve families.  Callers gate
    on :func:`repro.obs.enabled` — this function assumes reporting is on.
    """
    # Caller-gated contract (docstring above), same as record_submit_metrics.
    answers, misses = _accuracy_handles(obs.registry())  # statan: ignore[OBS001]
    answers.inc(num_answers, engine=engine_kind)
    if num_misses:
        misses.inc(num_misses, engine=engine_kind)


def score_batch_accuracy(
    model: UncertaintyModel,
    batch: QueryBatch,
    answers: np.ndarray,
    slo: AccuracySLO | None,
    accuracy_stats: AccuracyStats | None,
    engine_kind: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Exact variances and CI bounds for one answered batch.

    Evaluates ``model`` over the batch's ranges, checks the halfwidths
    against ``slo`` (when declared), folds the outcome into
    ``accuracy_stats``, and reports the ``repro_accuracy_*`` counters.
    Returns ``(variances, ci_los, ci_his, confidence)`` for the engine to
    attach to its result.  Shared by every submit path so scoring
    semantics cannot drift between engines.
    """
    confidence = slo.confidence if slo is not None else DEFAULT_CONFIDENCE
    variances = model.range_variances(batch.los, batch.his)
    halfwidths = model.interval_halfwidths(
        batch.los, batch.his, confidence, variances=variances
    )
    within = None
    if slo is not None:
        within = halfwidths <= slo.target_ci_halfwidth
    if accuracy_stats is not None:
        accuracy_stats.record_batch(
            halfwidths,
            variances,
            within,
            weight=slo.workload_weight if slo is not None else 1.0,
        )
    if obs.enabled():
        misses = 0 if within is None else int(within.size - np.count_nonzero(within))
        record_accuracy_metrics(engine_kind, int(halfwidths.size), misses)
    return variances, answers - halfwidths, answers + halfwidths, confidence


#: CLI-friendly aliases accepted anywhere an estimator name is expected,
#: mapped to the canonical paper names used in cache keys and releases.
ESTIMATOR_NAMES = {
    "identity": "L~",
    "hierarchical": "H~",
    "constrained": "H_bar",
    "wavelet": "wavelet",
    "L~": "L~",
    "H~": "H~",
    "H_bar": "H_bar",
}


def canonical_estimator_name(name: str) -> str:
    """The canonical paper name for ``name`` (alias or already canonical)."""
    canonical = ESTIMATOR_NAMES.get(name)
    if canonical is None:
        raise ReproError(
            f"unknown estimator {name!r}; expected one of {sorted(ESTIMATOR_NAMES)}"
        )
    return canonical


def resolve_estimator(name: str, branching: int = 2) -> RangeQueryEstimator:
    """An estimator instance for ``name`` (alias or canonical paper name)."""
    canonical = canonical_estimator_name(name)
    if canonical == "L~":
        return IdentityLaplaceEstimator()
    if canonical == "H~":
        return HierarchicalLaplaceEstimator(branching=branching)
    if canonical == "H_bar":
        return ConstrainedHierarchicalEstimator(branching=branching)
    return WaveletEstimator()


def compute_release_leaves(counts, key: ReleaseKey, delta: float = 0.0) -> np.ndarray:
    """Run the private mechanism for ``key`` over ``counts``; no accounting.

    This is the one place a release's values are computed, shared by the
    monolithic engine and the per-shard builds in :mod:`repro.sharding`
    so that the same :class:`ReleaseKey` always resolves to the same
    values no matter which engine built it — a cache/store identity must
    never depend on the builder.  The caller owns the ε charge.

    The H̄ flow still exercises the explicit Figure 1 roles, but against
    a scratch :class:`PrivateSession` whose budget is exactly this
    build's ε.
    """
    if key.estimator == "H_bar":
        scratch = PrivateSession.over_counts(counts, key.epsilon, delta=delta)
        # np.rint matches the ConstrainedHierarchicalEstimator
        # round_output default.
        return np.rint(
            scratch.universal_histogram(
                key.epsilon, branching=key.branching, rng=key.seed
            )
        )
    instance = resolve_estimator(key.estimator, branching=key.branching)
    return instance.fit(counts, key.epsilon, rng=key.seed).unit_estimates


class HistogramEngine:
    """Long-lived private-histogram server over one dataset.

    Parameters
    ----------
    data:
        A :class:`Relation` (with ``attribute`` naming the range column)
        or a raw unit-count vector.
    total_epsilon:
        The overall privacy budget for every release this engine will
        ever materialize; enforced by sequential composition.  Omit it
        (and pass ``budget``) to share another accountant's budget.
    attribute:
        Range attribute when ``data`` is a relation.
    delta:
        Optional δ for the budget's parameters (the paper's mechanisms
        are pure ε-DP).
    branching:
        Default branching factor for tree-based estimators.
    cache:
        A shared :class:`ReleaseCache` (e.g. across engines serving
        replicas of the same data, or across a fleet); a private one is
        created otherwise.
    cache_capacity:
        Capacity of the private cache when ``cache`` is not supplied.
    store:
        Optional durable :class:`ReleaseStore` backing the private cache:
        the engine warm-starts from its artifacts (zero ε, zero
        inference) and persists new releases into it.  When sharing a
        ``cache``, attach the store to that cache instead.
    budget:
        An existing :class:`PrivacyBudget` to charge instead of creating a
        private one — the streaming tier uses this to account every
        epoch's build against one shared budget.  Mutually exclusive with
        ``total_epsilon``.
    spend_label:
        Label recorded on the budget for each charge (defaults to
        ``"materialize <estimator>"``); the streaming tier stamps its
        epoch index here so the audit trail names every epoch.
    slo:
        Optional :class:`~repro.accuracy.slo.AccuracySLO`.  When set,
        every submitted batch is scored against the release's exact
        uncertainty model: results carry ``(variance, ci_lo, ci_hi)``
        columns and the engine's ``accuracy`` statistics (surfaced via
        ``FleetStats`` and ``repro_accuracy_*`` metrics) track SLO
        satisfaction.  Without an SLO the scoring is off unless a submit
        passes ``with_accuracy=True``.
    """

    def __init__(
        self,
        data,
        total_epsilon: float | None = None,
        *,
        attribute: str | None = None,
        delta: float = 0.0,
        branching: int = 2,
        cache: ReleaseCache | None = None,
        cache_capacity: int = 32,
        store: ReleaseStore | None = None,
        budget: PrivacyBudget | None = None,
        spend_label: str | None = None,
        slo: AccuracySLO | None = None,
    ) -> None:
        if isinstance(data, Relation):
            if attribute is None:
                raise ReproError(
                    "a range attribute is required when the data is a Relation"
                )
            counts = HistogramBuilder(data, attribute).counts()
        else:
            counts = as_float_vector(data, name="counts")
        self._counts = counts
        self.fingerprint = fingerprint_counts(counts)
        self.default_branching = int(branching)
        if budget is not None:
            if total_epsilon is not None:
                raise ReproError(
                    "pass either total_epsilon or a shared budget, not both"
                )
            self._budget = budget
        elif total_epsilon is None:
            raise ReproError("either total_epsilon or a shared budget is required")
        else:
            self._budget = PrivacyBudget(PrivacyParameters(total_epsilon, delta))
        self._spend_label = spend_label
        if cache is not None and store is not None:
            raise ReproError(
                "pass either a shared cache or a store, not both; attach the "
                "store to the shared ReleaseCache instead"
            )
        self.cache = cache if cache is not None else ReleaseCache(cache_capacity, store=store)
        self.planner = BatchQueryPlanner()
        self.stats = ServingStats()
        #: number of times an actual private release was computed by *this*
        #: engine (charging its budget); cache and store hits leave it
        #: untouched, which is what the warm-start benchmarks assert.
        self.materializations = 0  # guarded-by: _materializations_lock
        self._materializations_lock = threading.Lock()
        self.slo = slo
        self.accuracy = AccuracyStats()
        # Uncertainty models per (estimator, ε, branching); racy rebuilds
        # are benign (same inputs produce an identical model).
        self._uncertainty_models: dict[tuple, UncertaintyModel] = {}

    # -- budget ----------------------------------------------------------------

    @property
    def budget(self) -> PrivacyBudget:
        """The engine's (thread-safe) privacy budget."""
        return self._budget

    @property
    def spent_epsilon(self) -> float:
        return self.budget.spent_epsilon

    @property
    def remaining_epsilon(self) -> float:
        return self.budget.remaining_epsilon

    @property
    def domain_size(self) -> int:
        """Number of unit buckets in the served histogram domain."""
        return int(self._counts.size)

    # -- materialization -------------------------------------------------------

    def release_key(
        self,
        estimator: str = "constrained",
        *,
        epsilon: float,
        branching: int | None = None,
        seed: int = 0,
    ) -> ReleaseKey:
        """The cache identity a materialization request resolves to.

        Every parameter is validated here — before any ε is spent — so an
        invalid request can never charge the budget.
        """
        branching = self.default_branching if branching is None else int(branching)
        if branching < 2:
            raise ReproError(f"branching factor must be >= 2, got {branching}")
        PrivacyParameters(float(epsilon))  # validates ε > 0
        return ReleaseKey(
            dataset_fingerprint=self.fingerprint,
            estimator=canonical_estimator_name(estimator),
            epsilon=float(epsilon),
            branching=branching,
            seed=int(seed),
        )

    def materialize(
        self,
        estimator: str = "constrained",
        *,
        epsilon: float,
        branching: int | None = None,
        seed: int = 0,
    ) -> MaterializedRelease:
        """The release for ``(estimator, ε, branching, seed)``, cached.

        On a cache miss this loads the release from the durable store if
        one is attached (no ε), else charges ``epsilon`` to the budget and
        runs the private mechanism plus inference; on a hit it returns the
        existing artifact untouched.  Raises
        :class:`~repro.exceptions.PrivacyBudgetError` when the charge
        would exceed the remaining budget.

        ``seed`` is part of the release identity: materialized artifacts
        are deterministic, so replicas and repeated requests agree on the
        exact released values.
        """
        key = self.release_key(estimator, epsilon=epsilon, branching=branching, seed=seed)
        release, _ = self._materialize(key)
        return release

    def _materialize(self, key: ReleaseKey) -> tuple[MaterializedRelease, bool]:
        """Resolve ``key`` to a release, reporting whether *this call* built it.

        The flag is derived from whether our own build callback actually
        ran — not from a racy pre-check of cache membership — so it is
        exact under concurrent submits and evictions.
        """
        built: list[bool] = []

        def build() -> MaterializedRelease:
            release = self._build_release(key)
            built.append(True)
            return release

        release = self.cache.get_or_build(key, build)
        return release, bool(built)

    def _build_release(self, key: ReleaseKey) -> MaterializedRelease:
        # Fail fast so an already-exhausted budget does not pay the
        # mechanism-plus-inference compute cost; the authoritative check
        # is the atomic spend() below.
        if not self.budget.can_spend(key.epsilon):
            raise BudgetExhaustedError(
                f"cannot materialize {key.estimator} at ε={key.epsilon:g}: only "
                f"{self.budget.remaining_epsilon:g} of "
                f"{self.budget.total.epsilon:g} remains"
            )
        if obs.enabled():
            with obs.tracer().span(
                "serve.build_release",
                estimator=key.estimator,
                epsilon=key.epsilon,
            ):
                leaves = self._compute_leaves(key)
            obs.registry().counter(
                "repro_release_builds_total",
                "Cold private releases computed (ε charged)",
            ).inc(estimator=key.estimator)
        else:
            leaves = self._compute_leaves(key)
        # ε is charged only once the release exists: a mechanism or
        # inference failure above spends nothing, and if a concurrent
        # build exhausted the budget meanwhile the freshly computed leaves
        # are discarded unreleased (pure post-processing never happened).
        self.budget.spend(
            key.epsilon, label=self._spend_label or f"materialize {key.estimator}"
        )
        with self._materializations_lock:
            self.materializations += 1
        return MaterializedRelease(
            leaves,
            estimator=key.estimator,
            epsilon=key.epsilon,
            dataset_fingerprint=key.dataset_fingerprint,
            branching=key.branching,
            seed=key.seed,
        )

    def _compute_leaves(self, key: ReleaseKey) -> np.ndarray:
        """Run the private mechanism for ``key`` without touching the budget.

        Delegates to the shared :func:`compute_release_leaves` — the
        engine's real budget is charged by the caller, after the
        computation has succeeded.
        """
        return compute_release_leaves(
            self._counts, key, delta=self.budget.total.delta
        )

    # -- serving ---------------------------------------------------------------

    def uncertainty_model(
        self, estimator: str, epsilon: float, branching: int
    ) -> UncertaintyModel:
        """The (cached) exact uncertainty model for one release identity."""
        key = (canonical_estimator_name(estimator), float(epsilon), int(branching))
        model = self._uncertainty_models.get(key)
        if model is None:
            model = uncertainty_model_for(
                key[0],
                domain_size=self.domain_size,
                epsilon=key[1],
                branching=key[2],
            )
            self._uncertainty_models[key] = model
        return model

    def submit(
        self,
        batch: QueryBatch | RangeWorkload,
        estimator: str = "constrained",
        *,
        epsilon: float,
        branching: int | None = None,
        seed: int = 0,
        with_accuracy: bool | None = None,
    ) -> BatchResult:
        """Answer a batch of range queries from the materialized release.

        The first submission for a given release identity pays the ε and
        inference cost; every subsequent one is pure post-processing at
        prefix-sum speed.  ``BatchResult.build_seconds`` isolates that
        one-off resolution cost from ``answer_seconds``, so throughput
        figures reflect steady-state serving.

        ``with_accuracy`` forces per-answer variance/CI scoring on (or
        off); the default scores exactly when the engine has an SLO.
        """
        if isinstance(batch, RangeWorkload):
            batch = QueryBatch.from_workload(batch)
        key = self.release_key(estimator, epsilon=epsilon, branching=branching, seed=seed)
        build_start = perf_counter()
        release, built = self._materialize(key)
        answer_start = perf_counter()
        answers = self.planner.answer(release, batch)
        answer_seconds = perf_counter() - answer_start
        build_seconds = answer_start - build_start
        self.stats.record_batch(
            len(batch), answer_seconds, build_seconds=build_seconds, cold=built
        )
        if obs.enabled():
            record_submit_metrics(
                "histogram", len(batch), answer_seconds, build_seconds, built
            )
        variances = ci_los = ci_his = confidence = None
        if with_accuracy or (with_accuracy is None and self.slo is not None):
            model = self.uncertainty_model(key.estimator, key.epsilon, key.branching)
            variances, ci_los, ci_his, confidence = score_batch_accuracy(
                model, batch, answers, self.slo, self.accuracy, "histogram"
            )
        return BatchResult(
            answers=answers,
            estimator=release.estimator,
            epsilon=release.epsilon,
            build_seconds=build_seconds,
            answer_seconds=answer_seconds,
            from_cache=not built,
            variances=variances,
            ci_los=ci_los,
            ci_his=ci_his,
            confidence=confidence,
        )
