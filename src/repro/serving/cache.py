"""An LRU cache of materialized releases.

Materializing a release is the expensive, ε-spending step of the serving
pipeline; answering from an existing release is free in both senses.  The
cache therefore keys releases by their full identity
(:class:`~repro.serving.release.ReleaseKey`: dataset fingerprint,
estimator, ε, branching, seed) so a repeated workload never recomputes
inference — and, because the engine charges the privacy budget inside the
build callback, never re-spends ε either.

The cache is thread-safe.  :meth:`ReleaseCache.get_or_build` serializes
builds *per key*: two concurrent requests for the same key never both
build (each build charges the privacy budget), while a slow cold build
for one key does not block hits or builds for any other key.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ReproError
from repro.serving.release import MaterializedRelease, ReleaseKey

__all__ = ["CacheStats", "ReleaseCache"]


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when idle)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ReleaseCache:
    """Least-recently-used cache of :class:`MaterializedRelease` objects."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ReproError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[ReleaseKey, MaterializedRelease]" = OrderedDict()
        self._lock = threading.RLock()
        self._build_locks: dict[ReleaseKey, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- lookups ---------------------------------------------------------------

    def get(self, key: ReleaseKey) -> MaterializedRelease | None:
        """The cached release for ``key``, or ``None`` (counts a hit/miss)."""
        with self._lock:
            release = self._entries.get(key)
            if release is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return release

    def put(self, key: ReleaseKey, release: MaterializedRelease) -> None:
        """Insert (or refresh) a release, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = release
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_or_build(
        self, key: ReleaseKey, builder: Callable[[], MaterializedRelease]
    ) -> MaterializedRelease:
        """The cached release for ``key``, building and caching it on a miss.

        Builds are serialized per key (duplicated builds would duplicate
        ε charges): a requester racing an in-flight build for the same key
        waits for it and then returns the cached artifact, while traffic
        for other keys proceeds untouched.  If a build fails, the waiter
        retries — a failed build charges nothing and caches nothing.
        """
        with self._lock:
            release = self.get(key)
            if release is not None:
                return release
            build_lock = self._build_locks.setdefault(key, threading.Lock())
        with build_lock:
            with self._lock:
                release = self._entries.get(key)
                if release is not None:
                    self._entries.move_to_end(key)
                    return release
            try:
                release = builder()
                self.put(key, release)
                return release
            finally:
                # Dropped only after a successful put (or on failure), so a
                # late arriver either finds the entry or waits on this lock.
                with self._lock:
                    self._build_locks.pop(key, None)

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: ReleaseKey) -> bool:
        """Membership test with no counter side effects."""
        with self._lock:
            return key in self._entries

    def keys(self) -> list[ReleaseKey]:
        """Cached keys from least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )
