"""An LRU cache of materialized releases, optionally backed by a store.

Materializing a release is the expensive, ε-spending step of the serving
pipeline; answering from an existing release is free in both senses.  The
cache therefore keys releases by their full identity
(:class:`~repro.serving.release.ReleaseKey`: dataset fingerprint,
estimator, ε, branching, seed) so a repeated workload never recomputes
inference — and, because the engine charges the privacy budget inside the
build callback, never re-spends ε either.

When constructed with a :class:`~repro.serving.store.ReleaseStore`, the
cache consults the store before invoking the builder: a release persisted
by an earlier process (or another replica) is loaded from disk instead of
being rebuilt, so warm starts cost **zero** inference and **zero** ε.
Freshly built releases are persisted back to the store before the build
is considered complete.

The cache is thread-safe.  :meth:`ReleaseCache.get_or_build` serializes
builds *per key*: two concurrent requests for the same key never both
build (each build charges the privacy budget), while a slow cold build
for one key does not block hits or builds for any other key.  After a
*failed* build, waiters and newcomers re-coordinate through the lock
registry (checking identity, not just presence) so at most one of them
retries at a time — a failed build can never fan out into concurrent
rebuilds that would double-charge ε.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro import faults, obs
from repro.exceptions import ReproError
from repro.serving.release import MaterializedRelease, ReleaseKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.serving.store import ReleaseStore

__all__ = ["CacheStats", "ReleaseCache"]


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    #: misses answered by loading a persisted artifact instead of building
    store_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when idle)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ReleaseCache:
    """Least-recently-used cache of :class:`MaterializedRelease` objects.

    Parameters
    ----------
    capacity:
        Maximum number of releases held in memory.
    store:
        Optional durable :class:`~repro.serving.store.ReleaseStore`;
        misses check the store before building, and successful builds are
        persisted to it.  Eviction only drops the in-memory copy — a
        stored release is reloaded (never rebuilt) on the next request.
    """

    def __init__(self, capacity: int = 32, store: "ReleaseStore | None" = None) -> None:
        if capacity < 1:
            raise ReproError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.store = store
        self._lock = threading.RLock()
        self._entries: "OrderedDict[ReleaseKey, MaterializedRelease]" = OrderedDict()  # guarded-by: _lock
        self._build_locks: dict[ReleaseKey, threading.Lock] = {}  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._store_hits = 0  # guarded-by: _lock
        #: keys whose release is cached but whose store write failed; the
        #: persist is retried on the next request for the key.
        self._unpersisted: set[ReleaseKey] = set()  # guarded-by: _lock

    # -- lookups ---------------------------------------------------------------

    def get(self, key: ReleaseKey) -> MaterializedRelease | None:
        """The cached release for ``key``, or ``None`` (counts a hit/miss)."""
        with self._lock:
            release = self._entries.get(key)
            if release is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        if obs.enabled():
            if release is None:
                obs.registry().counter(
                    "repro_cache_misses_total", "Release cache misses"
                ).inc()
            else:
                obs.registry().counter(
                    "repro_cache_hits_total", "Release cache hits"
                ).inc()
        return release

    def put(self, key: ReleaseKey, release: MaterializedRelease) -> None:
        """Insert (or refresh) a release, evicting the LRU entry if full."""
        evicted_now = 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = release
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._unpersisted.discard(evicted)
                self._evictions += 1
                evicted_now += 1
        if evicted_now and obs.enabled():
            obs.registry().counter(
                "repro_cache_evictions_total", "In-memory releases evicted"
            ).inc(evicted_now)

    def get_or_build(
        self, key: ReleaseKey, builder: Callable[[], MaterializedRelease]
    ) -> MaterializedRelease:
        """The cached release for ``key``, resolving a miss store-first.

        A miss is resolved in order: load from the durable store (no ε),
        else call ``builder`` (charges ε) and persist the result.  Builds
        are serialized per key — duplicated builds would duplicate ε
        charges — so a requester racing an in-flight build for the same
        key waits for it and then returns the cached artifact, while
        traffic for other keys proceeds untouched.

        If a build fails, exactly one waiter retries at a time: every
        thread that wakes up (or arrives) re-checks that the build lock it
        holds is still the *registered* one for the key, and starts over
        when it is not.  A failed build charges nothing and caches
        nothing.

        A *persist* failure (the build succeeded but the store write did
        not) raises too, but the release stays cached — no retry ever
        re-spends ε — and the store write is retried on the next request
        for the key, so a transient disk error cannot silently strand an
        artifact in memory only.
        """
        release = self.get(key)
        if release is not None:
            self._retry_persist(key, release)
            return release
        while True:
            with self._lock:
                build_lock = self._build_locks.setdefault(key, threading.Lock())
            with build_lock:
                with self._lock:
                    release = self._entries.get(key)
                    if release is not None:
                        self._entries.move_to_end(key)
                if release is not None:
                    self._retry_persist(key, release)
                    return release
                with self._lock:
                    stale_lock = self._build_locks.get(key) is not build_lock
                if stale_lock:
                    # The build we were waiting on failed and retired
                    # this lock; re-coordinate through the registry so
                    # we never build alongside a newcomer's lock.
                    if obs.enabled():
                        obs.registry().counter(
                            "repro_cache_lock_retries_total",
                            "Build-lock re-coordinations after a failed build",
                        ).inc()
                    continue
                from_store = False
                try:
                    if faults.enabled():
                        # An injected fill failure aborts before the
                        # store consult or the builder: nothing is
                        # charged, nothing is cached, and the failed
                        # build's lock retirement (below) lets exactly
                        # one retrier re-coordinate.
                        faults.check("cache.fill")
                    release = self.store.get(key) if self.store is not None else None
                    if release is not None:
                        from_store = True
                    else:
                        release = builder()
                    self.put(key, release)
                    if not from_store and self.store is not None:
                        # Persist before declaring the build complete; a
                        # store failure surfaces loudly, but the release
                        # stays cached so no retry re-spends ε.
                        self._persist(key, release)
                finally:
                    with self._lock:
                        if self._build_locks.get(key) is build_lock:
                            self._build_locks.pop(key)
                if from_store:
                    with self._lock:
                        self._store_hits += 1
                    if obs.enabled():
                        obs.registry().counter(
                            "repro_cache_store_hits_total",
                            "Misses answered from the durable store (zero ε)",
                        ).inc()
                return release

    def _persist(self, key: ReleaseKey, release: MaterializedRelease) -> None:
        """Write ``release`` to the store, tracking failures for retry."""
        try:
            self.store.put(release)
        except BaseException:
            with self._lock:
                self._unpersisted.add(key)
            raise
        with self._lock:
            self._unpersisted.discard(key)

    def _retry_persist(self, key: ReleaseKey, release: MaterializedRelease) -> None:
        """Re-attempt a previously failed store write for a cached release."""
        with self._lock:
            pending = self.store is not None and key in self._unpersisted
        if pending:
            self._persist(key, release)

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: ReleaseKey) -> bool:
        """Membership test with no counter side effects."""
        with self._lock:
            return key in self._entries

    def keys(self) -> list[ReleaseKey]:
        """Cached keys from least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every in-memory entry (counters and the store are preserved)."""
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
                store_hits=self._store_hits,
            )
