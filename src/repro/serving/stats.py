"""Per-request latency and throughput accounting for the serving engine.

The engine records one observation per submitted batch.  Counters are
protected by a lock so concurrent submissions from multiple threads are
tallied correctly, and snapshots are plain dataclasses safe to hand to
logging or monitoring code.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["StatsSnapshot", "ServingStats"]


@dataclass(frozen=True)
class StatsSnapshot:
    """A point-in-time view of engine activity."""

    requests: int
    queries: int
    total_seconds: float
    min_batch_seconds: float
    max_batch_seconds: float
    last_batch_seconds: float

    @property
    def queries_per_second(self) -> float:
        """Aggregate throughput over every recorded batch (0 when idle)."""
        return self.queries / self.total_seconds if self.total_seconds > 0 else 0.0

    @property
    def mean_batch_seconds(self) -> float:
        """Average wall-clock latency of one submitted batch."""
        return self.total_seconds / self.requests if self.requests else 0.0


class ServingStats:
    """Thread-safe accumulator of batch-serving observations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests = 0
        self._queries = 0
        self._total_seconds = 0.0
        self._min_seconds = float("inf")
        self._max_seconds = 0.0
        self._last_seconds = 0.0

    def record_batch(self, num_queries: int, seconds: float) -> None:
        """Record one answered batch of ``num_queries`` taking ``seconds``."""
        if num_queries < 0 or seconds < 0:
            raise ValueError(
                f"num_queries and seconds must be non-negative, got "
                f"{num_queries} and {seconds}"
            )
        with self._lock:
            self._requests += 1
            self._queries += int(num_queries)
            self._total_seconds += float(seconds)
            self._min_seconds = min(self._min_seconds, float(seconds))
            self._max_seconds = max(self._max_seconds, float(seconds))
            self._last_seconds = float(seconds)

    def snapshot(self) -> StatsSnapshot:
        """The counters as an immutable snapshot."""
        with self._lock:
            return StatsSnapshot(
                requests=self._requests,
                queries=self._queries,
                total_seconds=self._total_seconds,
                min_batch_seconds=0.0 if self._requests == 0 else self._min_seconds,
                max_batch_seconds=self._max_seconds,
                last_batch_seconds=self._last_seconds,
            )
