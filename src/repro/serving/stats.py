"""Per-request latency and throughput accounting for the serving engine.

The engine records one observation per submitted batch, split into two
durations with very different economics:

* **answer seconds** — the vectorized prefix-sum pass that answers the
  batch; this is the steady-state serving cost and the basis of every
  throughput figure;
* **build seconds** — the time spent resolving the release (cache lookup,
  store load, or the one-off mechanism-plus-inference build on a cold
  miss); amortized away by the cache and never part of
  ``queries_per_second``.

Counters are protected by a lock so concurrent submissions from multiple
threads are tallied correctly, and snapshots are plain dataclasses safe
to hand to logging or monitoring code.  Both :meth:`ServingStats.snapshot`
and :meth:`ServingStats.merge_snapshot` hold that one lock for their whole
operation, so a reader can never observe a torn state (a queries count
from one batch paired with seconds from another).

Aggregation across accumulators is a pure fold: :func:`combine_snapshots`
combines immutable snapshots without any shared lock, which is how the
fleet rolls up per-tenant telemetry.

Latency quantiles (p50/p95) come from a fixed log-spaced bucket
histogram recorded under the same lock as every other counter: each
snapshot carries the bucket counts, folds add them elementwise, and the
quantile properties walk the cumulative counts — so percentiles survive
aggregation across tenants, at the cost of bucket-boundary resolution
(a factor-of-two grid from 1µs up).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "LATENCY_BUCKET_BOUNDS",
    "StatsSnapshot",
    "ServingStats",
    "combine_snapshots",
]

#: Upper bounds (inclusive, seconds) of the latency histogram buckets:
#: a factor-of-two grid from 1µs to ~134s, plus one implicit overflow
#: bucket.  Fixed bounds make bucket counts elementwise-addable, which
#: is what keeps quantiles foldable across snapshots.
LATENCY_BUCKET_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2**i for i in range(28))


@dataclass(frozen=True)
class StatsSnapshot:
    """A point-in-time view of engine activity."""

    requests: int
    queries: int
    total_seconds: float
    min_batch_seconds: float
    max_batch_seconds: float
    last_batch_seconds: float
    #: cumulative release-resolution time (cold builds, store loads, and
    #: cache lookups), kept out of the throughput figures
    total_build_seconds: float = 0.0
    #: requests whose release was built cold (charged ε) rather than
    #: served from the cache or store
    cold_builds: int = 0
    #: answer-latency histogram: one count per
    #: :data:`LATENCY_BUCKET_BOUNDS` bucket plus a trailing overflow
    #: bucket; elementwise-addable, the basis of the p50/p95 properties
    latency_buckets: tuple[int, ...] = field(
        default_factory=lambda: (0,) * (len(LATENCY_BUCKET_BOUNDS) + 1)
    )

    def batch_seconds_quantile(self, q: float) -> float:
        """Approximate answer-latency quantile from the bucket histogram.

        Returns the upper bound of the bucket holding the ``q``-quantile
        observation (clamped to the exact observed ``max_batch_seconds``),
        so the estimate errs high by at most one factor-of-two bucket.
        Idle snapshots report 0.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        total = sum(self.latency_buckets)
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for i, count in enumerate(self.latency_buckets):
            cumulative += count
            if cumulative >= target:
                if i < len(LATENCY_BUCKET_BOUNDS):
                    return min(LATENCY_BUCKET_BOUNDS[i], self.max_batch_seconds)
                break
        return self.max_batch_seconds

    @property
    def p50_batch_seconds(self) -> float:
        """Median answer latency of one submitted batch (bucketed)."""
        return self.batch_seconds_quantile(0.5)

    @property
    def p95_batch_seconds(self) -> float:
        """95th-percentile answer latency of one submitted batch (bucketed)."""
        return self.batch_seconds_quantile(0.95)

    @property
    def queries_per_second(self) -> float:
        """Aggregate *serving* throughput: answered queries over answer time.

        One-off materialization cost is excluded, so this reflects the
        steady-state rate the engine sustains on a warm release (0 when
        idle).
        """
        return self.queries / self.total_seconds if self.total_seconds > 0 else 0.0

    @property
    def mean_batch_seconds(self) -> float:
        """Average wall-clock answer latency of one submitted batch."""
        return self.total_seconds / self.requests if self.requests else 0.0


def combine_snapshots(snapshots: Iterable[StatsSnapshot]) -> StatsSnapshot:
    """Fold immutable snapshots into one aggregate, lock-free.

    Pure function of its inputs: min/max are taken over the non-idle
    snapshots, ``last_batch_seconds`` is the last non-idle snapshot's (the
    fold-order semantics the fleet's per-engine merge always had), and
    every total is summed left to right.
    """
    requests = 0
    queries = 0
    total_seconds = 0.0
    min_seconds = float("inf")
    max_seconds = 0.0
    last_seconds = 0.0
    build_seconds = 0.0
    cold_builds = 0
    buckets = [0] * (len(LATENCY_BUCKET_BOUNDS) + 1)
    for snapshot in snapshots:
        requests += snapshot.requests
        queries += snapshot.queries
        total_seconds += snapshot.total_seconds
        build_seconds += snapshot.total_build_seconds
        cold_builds += snapshot.cold_builds
        for i, count in enumerate(snapshot.latency_buckets):
            buckets[i] += count
        if snapshot.requests:
            min_seconds = min(min_seconds, snapshot.min_batch_seconds)
            max_seconds = max(max_seconds, snapshot.max_batch_seconds)
            last_seconds = snapshot.last_batch_seconds
    return StatsSnapshot(
        requests=requests,
        queries=queries,
        total_seconds=total_seconds,
        min_batch_seconds=0.0 if requests == 0 else min_seconds,
        max_batch_seconds=max_seconds,
        last_batch_seconds=last_seconds,
        total_build_seconds=build_seconds,
        cold_builds=cold_builds,
        latency_buckets=tuple(buckets),
    )


class ServingStats:
    """Thread-safe accumulator of batch-serving observations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests = 0  # guarded-by: _lock
        self._queries = 0  # guarded-by: _lock
        self._total_seconds = 0.0  # guarded-by: _lock
        self._min_seconds = float("inf")  # guarded-by: _lock
        self._max_seconds = 0.0  # guarded-by: _lock
        self._last_seconds = 0.0  # guarded-by: _lock
        self._build_seconds = 0.0  # guarded-by: _lock
        self._cold_builds = 0  # guarded-by: _lock
        self._latency_buckets = [0] * (len(LATENCY_BUCKET_BOUNDS) + 1)  # guarded-by: _lock

    def record_batch(
        self,
        num_queries: int,
        seconds: float,
        build_seconds: float = 0.0,
        cold: bool = False,
    ) -> None:
        """Record one answered batch.

        ``seconds`` is the answer time only; ``build_seconds`` is the
        release-resolution time that preceded it, and ``cold`` marks that
        the release was actually built (ε charged) rather than reused.
        """
        if num_queries < 0 or seconds < 0 or build_seconds < 0:
            raise ValueError(
                f"num_queries and durations must be non-negative, got "
                f"{num_queries}, {seconds} and {build_seconds}"
            )
        with self._lock:
            self._requests += 1
            self._queries += int(num_queries)
            self._total_seconds += float(seconds)
            self._min_seconds = min(self._min_seconds, float(seconds))
            self._max_seconds = max(self._max_seconds, float(seconds))
            self._last_seconds = float(seconds)
            self._build_seconds += float(build_seconds)
            self._latency_buckets[bisect_left(LATENCY_BUCKET_BOUNDS, float(seconds))] += 1
            if cold:
                self._cold_builds += 1

    def merge_snapshot(self, other: StatsSnapshot) -> None:
        """Fold another accumulator's snapshot into this one.

        Used by the fleet façade to aggregate per-engine stats without
        sharing a single hot lock across every engine's serving path.
        """
        with self._lock:
            self._requests += other.requests
            self._queries += other.queries
            self._total_seconds += other.total_seconds
            self._build_seconds += other.total_build_seconds
            self._cold_builds += other.cold_builds
            for i, count in enumerate(other.latency_buckets):
                self._latency_buckets[i] += count
            if other.requests:
                self._min_seconds = min(self._min_seconds, other.min_batch_seconds)
                self._max_seconds = max(self._max_seconds, other.max_batch_seconds)
                self._last_seconds = other.last_batch_seconds

    def snapshot(self) -> StatsSnapshot:
        """The counters as an immutable snapshot."""
        with self._lock:
            return StatsSnapshot(
                requests=self._requests,
                queries=self._queries,
                total_seconds=self._total_seconds,
                min_batch_seconds=0.0 if self._requests == 0 else self._min_seconds,
                max_batch_seconds=self._max_seconds,
                last_batch_seconds=self._last_seconds,
                total_build_seconds=self._build_seconds,
                cold_builds=self._cold_builds,
                latency_buckets=tuple(self._latency_buckets),
            )
