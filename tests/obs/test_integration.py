"""End-to-end acceptance: exported telemetry agrees with the accountants.

The ISSUE's bar for this layer: after a mixed workload (serving +
streaming + sharding in one fleet), the exported ε-ledger totals are
**bit-equal** to ``PrivacyBudget.spent_epsilon`` per tenant, and the
exported counters are consistent with the engines' own ``FleetStats``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.data.synthetic import arrival_stream
from repro.obs import EpsilonLedgerExporter, parse_prometheus_text
from repro.serving import QueryBatch
from repro.serving.fleet import EngineFleet
from repro.streaming import GeometricEpsilonSchedule

NUM_QUERIES = 40


@pytest.fixture
def fleet_and_batch(rng):
    """A three-tenant fleet (static, sharded, stream) after a mixed workload."""
    static_counts = rng.poisson(3.0, size=256).astype(float)
    sharded_counts = rng.poisson(3.0, size=256).astype(float)
    stream_counts = rng.poisson(3.0, size=256).astype(float)
    fleet = EngineFleet()
    static = fleet.register("static", static_counts, 0.5)
    batch = QueryBatch.random(static.domain_size, NUM_QUERIES, rng=1)
    fleet.submit("static", batch, epsilon=0.25, seed=2)  # cold: charges ε
    fleet.submit("static", batch, epsilon=0.25, seed=2)  # warm: cached
    fleet.register_sharded("sharded", sharded_counts, 0.5, num_shards=4)
    fleet.submit("sharded", batch, epsilon=0.5, seed=2)
    fleet.register_stream(
        "stream",
        stream_counts,
        1.0,
        schedule=GeometricEpsilonSchedule(0.25, decay=0.5),
        seed=3,
    )
    arrivals = next(arrival_stream(static.domain_size, 200, batches=1, rng=5))
    fleet.ingest("stream", arrivals)
    fleet.advance_epoch("stream")
    fleet.submit_stream("stream", batch)
    return fleet, batch


def test_ledger_totals_bit_equal_to_budget_accounting(fleet_and_batch):
    fleet, _ = fleet_and_batch
    ledger = EpsilonLedgerExporter().fleet_report(fleet)
    stats = fleet.stats()
    # powers-of-two ε values make the float sums exact, so the ledger's
    # re-derived total must be *bit-equal* to the fleet's accounting
    assert ledger["total_spent_epsilon"] == stats.spent_epsilon
    for name in fleet.names():
        if name in fleet.stream_names():
            budget = fleet.stream(name).budget
        else:
            budget = fleet.engine(name).budget
        assert ledger["datasets"][name]["spent_epsilon"] == budget.spent_epsilon


def test_exported_counters_consistent_with_fleet_stats(rng):
    with obs.session() as (registry, tracer):
        static_counts = rng.poisson(3.0, size=256).astype(float)
        fleet = EngineFleet()
        static = fleet.register("static", static_counts, 0.5)
        batch = QueryBatch.random(static.domain_size, NUM_QUERIES, rng=1)
        fleet.submit("static", batch, epsilon=0.25, seed=2)
        fleet.submit("static", batch, epsilon=0.25, seed=2)
        stats = fleet.stats()

        # counters on the serving path match the engines' own accounting
        assert (
            registry.value("repro_serve_queries_total", engine="histogram")
            == stats.queries
        )
        assert (
            registry.value("repro_serve_batches_total", engine="histogram")
            == stats.requests
        )
        assert (
            registry.value("repro_serve_cold_builds_total", engine="histogram")
            == stats.total.cold_builds
        )
        # the second submit was a cache hit, the first a miss
        assert registry.value("repro_cache_hits_total") == 1
        assert registry.value("repro_cache_misses_total") == 1

        # fleet.stats() mirrored the rollup onto gauges
        assert registry.value("repro_tenant_queries", dataset="static") == (
            stats.per_dataset["static"].queries
        )
        assert registry.value("repro_fleet_spent_epsilon") == stats.spent_epsilon
        assert registry.value("repro_fleet_datasets") == stats.datasets

        # the cold build left a span with its estimator attribute
        (build,) = tracer.events("serve.build_release")
        assert build.attributes["epsilon"] == 0.25
        assert build.duration > 0


def test_prometheus_export_of_a_mixed_workload_parses(fleet_and_batch):
    fleet, batch = fleet_and_batch
    with obs.session() as (registry, _):
        fleet.submit("static", batch, epsilon=0.25, seed=2)
        fleet.submit("sharded", batch, epsilon=0.5, seed=2)
        fleet.submit_stream("stream", batch)
        stats = fleet.stats()
        samples = parse_prometheus_text(registry.render_prometheus())
    for engine_kind in ("histogram", "sharded", "stream"):
        assert (
            samples[("repro_serve_queries_total", (("engine", engine_kind),))]
            == NUM_QUERIES
        )
    assert samples[("repro_fleet_spent_epsilon", ())] == stats.spent_epsilon
    assert samples[("repro_fleet_epochs", ())] == stats.epochs


def test_stream_epoch_instrumentation(rng):
    with obs.session() as (registry, tracer):
        counts = rng.poisson(3.0, size=256).astype(float)
        fleet = EngineFleet()
        fleet.register_stream(
            "stream",
            counts,
            1.0,
            schedule=GeometricEpsilonSchedule(0.25, decay=0.5),
            seed=3,
        )
        arrivals = next(arrival_stream(counts.size, 150, batches=1, rng=5))
        ingested = fleet.ingest("stream", arrivals)
        fleet.advance_epoch("stream")
        assert (
            registry.value("repro_stream_ingest_rows_total", stream="stream")
            == ingested
        )
        # two epochs: registration builds epoch 0, then the explicit advance
        assert registry.value("repro_stream_epochs_total", stream="stream") == 2
        spans = tracer.events("stream.advance_epoch")
        assert len(spans) == 2
        assert all(span.attributes["stream"] == "stream" for span in spans)


def test_sharded_build_spans_cover_every_shard(rng):
    with obs.session() as (_, tracer):
        counts = rng.poisson(3.0, size=256).astype(float)
        fleet = EngineFleet()
        # workers=1 keeps every shard build on this thread, so the spans
        # nest deterministically under the materialization span
        fleet.register_sharded("sharded", counts, 0.5, num_shards=4, workers=1)
        batch = QueryBatch.random(256, NUM_QUERIES, rng=1)
        fleet.submit("sharded", batch, epsilon=0.5, seed=2)
        builds = tracer.events("shard.build")
        assert sorted(event.attributes["shard"] for event in builds) == [0, 1, 2, 3]
        (materialize,) = tracer.events("shard.materialize")
        assert materialize.attributes["cold_shards"] == 4
        assert all(event.parent_id == materialize.span_id for event in builds)


def test_session_restores_previous_state(rng):
    obs.enable()
    outer_registry = obs.registry()
    with obs.session() as (inner_registry, _):
        assert obs.registry() is inner_registry
        assert obs.enabled()
    assert obs.registry() is outer_registry
    assert obs.enabled()
    obs.disable()
    with obs.session():
        assert obs.enabled()
    assert not obs.enabled()
