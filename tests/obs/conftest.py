"""Shared fixtures for the observability tests."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts and ends with fresh, disabled defaults.

    The obs module holds process-wide state (the default registry/tracer
    and the enabled flag); resetting on both sides keeps tests order-
    independent and stops a failing test from leaking instrumentation
    into the rest of the suite.
    """
    obs.reset()
    yield
    obs.reset()
