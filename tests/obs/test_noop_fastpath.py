"""The disabled fast path performs *zero* telemetry calls.

``set_registry``/``set_tracer`` work independently of the enabled flag
precisely so these tests can install counting doubles while observability
stays disabled: if any instrumented call site forgets its
``if obs.enabled():`` guard, a double's call counter moves and the test
fails.  The flip side — the same workload with observability enabled must
produce bit-identical answers — is checked here too, at test scale (the
full-size timing gate lives in ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.data.synthetic import arrival_stream
from repro.obs import MetricsRegistry, Tracer
from repro.serving import HistogramEngine, QueryBatch
from repro.serving.fleet import EngineFleet
from repro.serving.store import ReleaseStore
from repro.sharding import ShardedHistogramEngine
from repro.streaming import GeometricEpsilonSchedule, StreamingHistogramEngine


class CountingRegistry(MetricsRegistry):
    """A registry that counts every family lookup."""

    def __init__(self) -> None:
        super().__init__()
        self.calls = 0

    def _get_or_create(self, cls, name, help, **kwargs):
        self.calls += 1
        return super()._get_or_create(cls, name, help, **kwargs)


class CountingTracer(Tracer):
    """A tracer that counts every opened span."""

    def __init__(self) -> None:
        super().__init__()
        self.calls = 0

    def span(self, name, **attributes):
        self.calls += 1
        return super().span(name, **attributes)


@pytest.fixture
def doubles():
    registry = CountingRegistry()
    tracer = CountingTracer()
    obs.set_registry(registry)
    obs.set_tracer(tracer)
    return registry, tracer


@pytest.fixture
def counts(rng) -> np.ndarray:
    return rng.poisson(3.0, size=256).astype(float)


def run_mixed_workload(counts, store_root=None):
    """Serving + streaming + sharding exercise touching every hot path."""
    store = ReleaseStore(store_root) if store_root is not None else None
    fleet = EngineFleet(store=store)
    fleet.register("static", counts, 0.5)
    batch = QueryBatch.random(counts.size, 50, rng=1)
    answers = [fleet.submit("static", batch, epsilon=0.25, seed=2).answers]
    answers.append(fleet.submit("static", batch, epsilon=0.25, seed=2).answers)

    sharded = ShardedHistogramEngine(counts, total_epsilon=0.5, num_shards=4)
    answers.append(sharded.submit(batch, epsilon=0.5, seed=2).answers)

    stream = StreamingHistogramEngine(
        counts,
        1.0,
        GeometricEpsilonSchedule(0.25, decay=0.5),
        seed=3,
        name="stream",
    )
    arrivals = next(arrival_stream(counts.size, 100, batches=1, rng=5))
    stream.ingest(arrivals)
    stream.advance_epoch()
    answers.append(stream.submit(batch).answers)

    fleet.stats()
    return answers


def test_disabled_workload_makes_zero_telemetry_calls(doubles, counts, tmp_path):
    registry, tracer = doubles
    assert not obs.enabled()
    run_mixed_workload(counts, store_root=tmp_path / "releases")
    assert registry.calls == 0
    assert tracer.calls == 0


def test_enabling_the_same_doubles_records_calls(doubles, counts):
    # the control arm: the doubles do count when the flag is on, so the
    # zeros above prove gating rather than broken instrumentation
    registry, tracer = doubles
    obs.enable()
    run_mixed_workload(counts)
    assert registry.calls > 0
    assert tracer.calls > 0
    assert registry.value("repro_serve_queries_total", engine="histogram") > 0


def test_answers_are_bit_identical_with_and_without_telemetry(counts):
    bare = run_mixed_workload(counts)
    with obs.session():
        instrumented = run_mixed_workload(counts)
    assert len(bare) == len(instrumented)
    for bare_answers, instrumented_answers in zip(bare, instrumented):
        np.testing.assert_array_equal(bare_answers, instrumented_answers)


def test_engine_answers_unchanged_by_enable_disable_midstream(counts):
    engine = HistogramEngine(counts, total_epsilon=1.0)
    batch = QueryBatch.random(counts.size, 50, rng=1)
    baseline = engine.submit(batch, "constrained", epsilon=0.25, seed=7).answers
    with obs.session():
        enabled = engine.submit(batch, "constrained", epsilon=0.25, seed=7).answers
    after = engine.submit(batch, "constrained", epsilon=0.25, seed=7).answers
    np.testing.assert_array_equal(baseline, enabled)
    np.testing.assert_array_equal(baseline, after)
