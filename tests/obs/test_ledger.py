"""Tests for the ε-ledger exporter: reports, cross-checks, and refusals."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.synthetic import arrival_stream
from repro.exceptions import ExperimentError
from repro.obs import LEDGER_REPORT_VERSION, EpsilonLedgerExporter
from repro.privacy.budget import PrivacyBudget
from repro.privacy.definitions import PrivacyParameters
from repro.serving.fleet import EngineFleet
from repro.serving.planner import QueryBatch
from repro.streaming import GeometricEpsilonSchedule, StreamingHistogramEngine


@pytest.fixture
def exporter() -> EpsilonLedgerExporter:
    return EpsilonLedgerExporter()


@pytest.fixture
def counts(rng) -> np.ndarray:
    return rng.poisson(3.0, size=128).astype(float)


class TestBudgetReport:
    def test_reports_the_full_spend_trail(self, exporter):
        budget = PrivacyBudget(PrivacyParameters(epsilon=1.0))
        budget.spend(0.25, label="epoch 1")
        budget.spend(0.125, label="epoch 2")
        report = exporter.budget_report(budget, name="flows")
        assert report["kind"] == "budget"
        assert report["name"] == "flows"
        assert report["total_epsilon"] == 1.0
        assert report["spent_epsilon"] == 0.375
        assert report["remaining_epsilon"] == 0.625
        assert report["spends"] == [
            {"label": "epoch 1", "epsilon": 0.25},
            {"label": "epoch 2", "epsilon": 0.125},
        ]
        assert report["checks"] == ["running-total"]

    def test_schedule_audit_is_recorded_and_enforced(self, exporter):
        budget = PrivacyBudget(PrivacyParameters(epsilon=1.0))
        budget.spend(0.25, label="epoch 1")
        report = exporter.budget_report(
            budget, expected_epsilons=[0.25], label_prefix="epoch"
        )
        assert report["checks"] == ["running-total", "schedule"]
        with pytest.raises(ExperimentError):
            exporter.budget_report(budget, expected_epsilons=[0.5])

    def test_refuses_a_drifted_running_total(self, exporter):
        budget = PrivacyBudget(PrivacyParameters(epsilon=1.0))
        budget.spend(0.25)
        budget._spent_total = 0.2500000001  # simulate accounting drift
        with pytest.raises(ExperimentError, match="refusing to export"):
            exporter.budget_report(budget)

    def test_report_json_is_bit_faithful(self, exporter):
        budget = PrivacyBudget(PrivacyParameters(epsilon=1.0))
        budget.spend(0.1)  # 0.1 is not exactly representable; repr survives
        text = EpsilonLedgerExporter.render_json(exporter.budget_report(budget))
        assert json.loads(text)["spent_epsilon"] == budget.spent_epsilon


class TestStreamReport:
    @pytest.fixture
    def stream(self, counts) -> StreamingHistogramEngine:
        engine = StreamingHistogramEngine(
            counts,
            1.0,
            GeometricEpsilonSchedule(0.25, decay=0.5),
            seed=3,
        )
        arrivals = next(arrival_stream(counts.size, 100, batches=1, rng=5))
        engine.ingest(arrivals)
        engine.advance_epoch()
        return engine

    def test_stream_report_includes_lineage(self, exporter, stream):
        report = exporter.stream_report(stream)
        assert report["kind"] == "stream"
        assert report["checks"] == ["running-total", "schedule", "lineage-tail"]
        assert report["lifetime_spent_epsilon"] == stream.lineage.spent_epsilon
        assert [entry["epoch"] for entry in report["epochs"]] == [
            record.epoch for record in stream.lineage.records
        ]
        assert report["spent_epsilon"] == stream.spent_epsilon

    def test_refuses_a_charge_that_bypassed_the_lineage(self, exporter, stream):
        stream.budget.spend(0.01, label="epoch 99 (rogue)")
        with pytest.raises(ExperimentError):
            exporter.stream_report(stream)

    def test_refuses_more_charges_than_lineage_records(self, exporter, counts):
        engine = StreamingHistogramEngine(
            counts,
            1.0,
            GeometricEpsilonSchedule(0.25, decay=0.5),
            seed=3,
        )
        # empty the lineage's view of the budget: charge without a record
        engine.budget.spend(0.25, label="epoch 1")
        engine.budget.spend(0.125, label="epoch 2")
        with pytest.raises(ExperimentError, match="bypassed"):
            exporter.stream_report(engine)


class TestFleetReport:
    def test_totals_cover_static_and_streaming_tenants(
        self, exporter, counts, rng
    ):
        fleet = EngineFleet()
        fleet.register("static", counts, 0.5)
        batch = QueryBatch.random(counts.size, 20, rng=1)
        fleet.submit("static", batch, epsilon=0.25, seed=2)
        fleet.register_stream(
            "stream",
            rng.poisson(3.0, size=128).astype(float),
            1.0,
            schedule=GeometricEpsilonSchedule(0.25, decay=0.5),
            seed=3,
        )
        arrivals = next(arrival_stream(counts.size, 100, batches=1, rng=5))
        fleet.ingest("stream", arrivals)
        fleet.advance_epoch("stream")

        report = exporter.fleet_report(fleet)
        assert report["report"] == "epsilon-ledger"
        assert report["version"] == LEDGER_REPORT_VERSION
        assert sorted(report["datasets"]) == ["static", "stream"]
        assert report["datasets"]["static"]["kind"] == "budget"
        assert report["datasets"]["stream"]["kind"] == "stream"
        # powers of two keep the sums exact, so bit-equality is testable
        assert report["total_spent_epsilon"] == fleet.stats().spent_epsilon
        assert report["total_budget_epsilon"] == 1.5

    def test_fleet_report_refuses_any_drifted_tenant(self, exporter, counts):
        fleet = EngineFleet()
        fleet.register("static", counts, 0.5)
        batch = QueryBatch.random(counts.size, 20, rng=1)
        fleet.submit("static", batch, epsilon=0.25, seed=2)
        fleet.engine("static").budget._spent_total = 0.26
        with pytest.raises(ExperimentError, match="refusing to export"):
            exporter.fleet_report(fleet)
