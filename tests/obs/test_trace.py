"""Tests for the span tracer: nesting, errors, ring buffer, file sink."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import Tracer


class TestSpans:
    def test_span_records_timing_and_attributes(self):
        tracer = Tracer()
        with tracer.span("serve.build_release", estimator="constrained"):
            pass
        (event,) = tracer.events()
        assert event.name == "serve.build_release"
        assert event.attributes == {"estimator": "constrained"}
        assert event.duration >= 0.0
        assert event.start_offset >= 0.0
        assert event.depth == 0
        assert event.parent_id is None
        assert event.error is False

    def test_nested_spans_record_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events("inner")[0], tracer.events("outer")[0]
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        assert outer.depth == 0
        # inner closed first, so it is recorded first
        assert tracer.events()[0].name == "inner"

    def test_error_spans_still_close_and_are_flagged(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("stream.advance_epoch"):
                raise RuntimeError("boom")
        (event,) = tracer.events()
        assert event.error is True
        # the stack unwound: the next span is a root again
        with tracer.span("after"):
            pass
        assert tracer.events("after")[0].depth == 0

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
            with tracer.span("child"):
                pass
        first, second = tracer.events("child")
        parent = tracer.events("parent")[0]
        assert first.parent_id == parent.span_id
        assert second.parent_id == parent.span_id
        assert first.span_id != second.span_id

    def test_per_thread_stacks_do_not_interleave(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(label: str) -> None:
            with tracer.span("outer", worker=label):
                barrier.wait(timeout=10)
                with tracer.span("inner", worker=label):
                    barrier.wait(timeout=10)

        threads = [
            threading.Thread(target=worker, args=(str(i),), name=f"w{i}")
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # both threads' outer spans were open simultaneously, yet each
        # inner span's parent is its own thread's outer span
        outers = {
            event.attributes["worker"]: event for event in tracer.events("outer")
        }
        for inner in tracer.events("inner"):
            assert inner.parent_id == outers[inner.attributes["worker"]].span_id
            assert inner.depth == 1
            assert inner.thread == outers[inner.attributes["worker"]].thread


class TestRingBuffer:
    def test_old_events_fall_off(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            with tracer.span(f"span-{index}"):
                pass
        assert len(tracer) == 3
        assert [event.name for event in tracer.events()] == [
            "span-2",
            "span-3",
            "span-4",
        ]

    def test_clear_drops_events(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.events() == []


class TestSink:
    def test_events_append_as_json_lines(self, tmp_path):
        sink = tmp_path / "spans.jsonl"
        tracer = Tracer(sink=sink)
        with tracer.span("outer", shard=3):
            with tracer.span("inner"):
                pass
        lines = sink.read_text().splitlines()
        assert len(lines) == 2
        rows = [json.loads(line) for line in lines]
        assert rows[0]["name"] == "inner"
        assert rows[1]["name"] == "outer"
        assert rows[1]["attributes"] == {"shard": 3}
        assert rows[0]["parent_id"] == rows[1]["span_id"]
        # the sink outlives the ring buffer
        tracer.clear()
        assert len(sink.read_text().splitlines()) == 2

    def test_sink_survives_ring_buffer_eviction(self, tmp_path):
        sink = tmp_path / "spans.jsonl"
        tracer = Tracer(capacity=1, sink=sink)
        for index in range(4):
            with tracer.span(f"span-{index}"):
                pass
        assert len(tracer) == 1
        assert len(sink.read_text().splitlines()) == 4

    def test_to_json_matches_event_fields(self):
        tracer = Tracer()
        with tracer.span("a", epsilon=0.25):
            pass
        (event,) = tracer.events()
        row = event.to_json()
        assert row["span_id"] == event.span_id
        assert row["name"] == "a"
        assert row["attributes"] == {"epsilon": 0.25}
        json.dumps(row)  # JSON-serializable as-is
