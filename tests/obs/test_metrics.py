"""Tests for the metric families, registry, and Prometheus round-trip."""

from __future__ import annotations

import math
import threading

import pytest

from repro.exceptions import ReproError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("repro_things_total")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labeled_samples_are_independent(self):
        counter = Counter("repro_things_total")
        counter.inc(engine="histogram")
        counter.inc(3, engine="sharded")
        assert counter.value(engine="histogram") == 1.0
        assert counter.value(engine="sharded") == 3.0
        assert counter.value(engine="stream") == 0.0

    def test_rejects_negative_increment(self):
        counter = Counter("repro_things_total")
        with pytest.raises(ReproError, match="cannot decrease"):
            counter.inc(-1)

    def test_rejects_invalid_metric_name(self):
        with pytest.raises(ReproError, match="invalid metric name"):
            Counter("0bad-name")

    def test_rejects_invalid_label_name(self):
        counter = Counter("repro_things_total")
        with pytest.raises(ReproError, match="invalid label name"):
            counter.inc(**{"bad-label": "x"})


class TestLabelSchema:
    def test_first_observation_fixes_label_names(self):
        counter = Counter("repro_things_total")
        counter.inc(engine="histogram")
        with pytest.raises(ReproError, match="expects labels"):
            counter.inc(shard="0")
        with pytest.raises(ReproError, match="expects labels"):
            counter.inc()

    def test_label_order_does_not_matter(self):
        counter = Counter("repro_things_total")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 2.0

    def test_unhashable_label_values_take_the_slow_path(self):
        # The resolve cache keys on the raw kwargs items; a list value is
        # unhashable, so resolution must fall back to full validation
        # (stringifying the value) rather than crash.
        counter = Counter("repro_things_total")
        counter.inc(tags=["a", "b"])
        counter.inc(tags=["a", "b"])
        assert counter.value(tags=["a", "b"]) == 2.0

    def test_resolve_cache_returns_the_canonical_key(self):
        counter = Counter("repro_things_total")
        counter.inc(engine="histogram")
        counter.inc(engine="histogram")  # second hit resolves via the cache
        assert counter.labelsets() == [(("engine", "histogram"),)]


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("repro_level")
        gauge.set(5.0)
        gauge.inc(-2.0)
        assert gauge.value() == 3.0

    def test_labeled(self):
        gauge = Gauge("repro_level")
        gauge.set(1.5, dataset="flows")
        gauge.set(2.5, dataset="pages")
        assert gauge.value(dataset="flows") == 1.5
        assert gauge.value(dataset="pages") == 2.5


class TestHistogram:
    def test_bucket_placement_is_first_bound_geq_value(self):
        histogram = Histogram("repro_seconds", buckets=(0.1, 1.0, 10.0))
        histogram.observe(0.1)  # exactly on a bound -> that bucket
        histogram.observe(0.05)
        histogram.observe(5.0)
        histogram.observe(100.0)  # past the last bound -> +Inf slot
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(105.15)

    def test_default_buckets_cover_latencies(self):
        histogram = Histogram("repro_seconds")
        assert histogram.buckets == DEFAULT_LATENCY_BUCKETS
        histogram.observe(0.0003)
        assert histogram.count() == 1

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ReproError, match="strictly increasing"):
            Histogram("repro_seconds", buckets=(1.0, 0.5))
        with pytest.raises(ReproError, match="strictly increasing"):
            Histogram("repro_seconds", buckets=(1.0, 1.0))
        with pytest.raises(ReproError, match="at least one bucket"):
            Histogram("repro_seconds", buckets=())

    def test_cumulative_buckets_in_render(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_seconds", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(9.0)
        samples = parse_prometheus_text(registry.render_prometheus())
        assert samples[("repro_seconds_bucket", (("le", "1.0"),))] == 1
        assert samples[("repro_seconds_bucket", (("le", "2.0"),))] == 2
        assert samples[("repro_seconds_bucket", (("le", "+Inf"),))] == 3
        assert samples[("repro_seconds_count", ())] == 3
        assert samples[("repro_seconds_sum", ())] == pytest.approx(11.0)


class TestRegistry:
    def test_get_or_create_returns_the_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_a_total") is registry.counter("repro_a_total")

    def test_kind_mismatch_is_refused(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total")
        with pytest.raises(ReproError, match="is a counter, not a gauge"):
            registry.gauge("repro_a_total")

    def test_value_lookup(self):
        registry = MetricsRegistry()
        assert registry.value("repro_missing_total", default=7.0) == 7.0
        registry.counter("repro_a_total").inc(2, engine="x")
        assert registry.value("repro_a_total", engine="x") == 2.0
        registry.histogram("repro_h_seconds").observe(1.0)
        with pytest.raises(ReproError, match="not scalar"):
            registry.value("repro_h_seconds")

    def test_snapshot_sections(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "help a").inc(engine="x")
        registry.gauge("repro_g").set(4.0)
        registry.histogram("repro_h_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["repro_a_total"]["samples"] == [
            {"labels": {"engine": "x"}, "value": 1.0}
        ]
        assert snapshot["gauges"]["repro_g"]["samples"][0]["value"] == 4.0
        histogram = snapshot["histograms"]["repro_h_seconds"]
        assert histogram["buckets"] == [1.0]
        assert histogram["samples"][0]["counts"] == [1, 0]
        assert histogram["samples"][0]["count"] == 1

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total")
        per_thread, num_threads = 2000, 8

        def hammer():
            for _ in range(per_thread):
                counter.inc(engine="histogram")

        threads = [threading.Thread(target=hammer) for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(engine="histogram") == per_thread * num_threads


class TestPrometheusRoundTrip:
    def test_render_parses_back_with_exact_values(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "things done").inc(3, engine="x")
        registry.gauge("repro_spent_epsilon").set(1.125)
        text = registry.render_prometheus()
        assert "# HELP repro_a_total things done" in text
        assert "# TYPE repro_a_total counter" in text
        samples = parse_prometheus_text(text)
        assert samples[("repro_a_total", (("engine", "x"),))] == 3.0
        # repr-based formatting keeps float64 values bit-faithful
        assert samples[("repro_spent_epsilon", ())] == 1.125

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc(path='a"b\\c\nd')
        samples = parse_prometheus_text(registry.render_prometheus())
        ((name, labels),) = list(samples)
        assert name == "repro_a_total"
        assert labels[0][0] == "path"

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_infinity_formatting(self):
        assert math.isinf(
            parse_prometheus_text('repro_g{le="+Inf"} +Inf')[
                ("repro_g", (("le", "+Inf"),))
            ]
        )


class TestParserValidation:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("this is not a metric line")

    def test_rejects_malformed_comment(self):
        with pytest.raises(ValueError, match="malformed comment"):
            parse_prometheus_text("# NOPE repro_a_total")

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus_text("# TYPE repro_a_total widget")

    def test_rejects_malformed_value(self):
        with pytest.raises(ValueError, match="malformed value"):
            parse_prometheus_text("repro_a_total pickles")

    def test_rejects_malformed_label_pair(self):
        with pytest.raises(ValueError, match="malformed label pair"):
            parse_prometheus_text("repro_a_total{engine=x} 1")

    def test_rejects_empty_document(self):
        with pytest.raises(ValueError, match="no samples"):
            parse_prometheus_text("# TYPE repro_a_total counter\n")

    def test_commas_inside_quoted_values(self):
        samples = parse_prometheus_text('repro_a_total{k="a,b",j="c"} 2')
        assert samples[("repro_a_total", (("k", "a,b"), ("j", "c")))] == 2.0
