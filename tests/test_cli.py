"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unattributed_defaults(self):
        args = build_parser().parse_args(["unattributed"])
        assert args.epsilon == 0.1
        assert args.dataset == "nettrace"
        assert args.scale == "small"

    def test_universal_branching_option(self):
        args = build_parser().parse_args(["universal", "--branching", "4"])
        assert args.branching == 4

    def test_counts_file_takes_precedence_over_dataset_default(self, tmp_path, capsys):
        counts_file = tmp_path / "counts.txt"
        counts_file.write_text("1\n2\n3\n")
        assert main(["unattributed", "--counts-file", str(counts_file), "--epsilon", "100"]) == 0
        output = capsys.readouterr().out
        assert "(3 values)" in output


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "nettrace" in output
        assert "socialnetwork" in output

    def test_unattributed_from_counts_file(self, tmp_path, capsys):
        counts_file = tmp_path / "counts.txt"
        counts_file.write_text("\n".join(str(v) for v in [2, 0, 10, 2]))
        out_file = tmp_path / "release.csv"
        code = main(
            [
                "unattributed",
                "--counts-file",
                str(counts_file),
                "--epsilon",
                "5.0",
                "--seed",
                "1",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        lines = out_file.read_text().strip().splitlines()
        assert lines[0] == "bucket,private_sorted_count"
        assert len(lines) == 5

    def test_universal_from_dataset(self, capsys):
        code = main(
            ["universal", "--dataset", "searchlogs", "--epsilon", "1.0", "--seed", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "private total" in output

    def test_universal_rejects_dataset_without_variant(self, capsys):
        code = main(["universal", "--dataset", "socialnetwork"])
        assert code == 2
        assert "no universal-histogram variant" in capsys.readouterr().err

    def test_compare_unattributed(self, tmp_path, capsys):
        counts_file = tmp_path / "counts.txt"
        rng = np.random.default_rng(0)
        counts_file.write_text("\n".join(str(v) for v in rng.integers(0, 5, size=60)))
        out_file = tmp_path / "table.csv"
        code = main(
            [
                "compare-unattributed",
                "--counts-file",
                str(counts_file),
                "--epsilons",
                "0.5",
                "--trials",
                "3",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "S_bar" in output
        assert out_file.exists()

    def test_materialize_and_batch_query_round_trip(self, tmp_path, capsys):
        counts_file = tmp_path / "counts.txt"
        rng = np.random.default_rng(5)
        counts_file.write_text("\n".join(str(v) for v in rng.integers(0, 9, size=64)))
        release_file = tmp_path / "release.npz"
        code = main(
            [
                "materialize",
                "--counts-file",
                str(counts_file),
                "--epsilon",
                "2.0",
                "--seed",
                "3",
                "--release",
                str(release_file),
            ]
        )
        assert code == 0
        assert release_file.exists()
        output = capsys.readouterr().out
        assert "H_bar" in output
        assert "fingerprint" in output

        answers_file = tmp_path / "answers.csv"
        code = main(
            [
                "batch-query",
                "--release",
                str(release_file),
                "--random",
                "200",
                "--query-seed",
                "1",
                "--out",
                str(answers_file),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "no additional privacy cost" in output
        lines = answers_file.read_text().strip().splitlines()
        assert lines[0] == "lo,hi,estimate"
        assert len(lines) == 201

    def test_batch_query_from_queries_file(self, tmp_path, capsys):
        counts_file = tmp_path / "counts.txt"
        counts_file.write_text("\n".join(["4"] * 16))
        release_file = tmp_path / "release.npz"
        assert (
            main(
                [
                    "materialize",
                    "--counts-file",
                    str(counts_file),
                    "--estimator",
                    "identity",
                    "--epsilon",
                    "100",
                    "--release",
                    str(release_file),
                ]
            )
            == 0
        )
        queries_file = tmp_path / "ranges.txt"
        queries_file.write_text("0 15\n3 5\n")
        assert (
            main(["batch-query", "--release", str(release_file), "--queries-file", str(queries_file)])
            == 0
        )
        output = capsys.readouterr().out
        assert "answered 2 range queries" in output
        assert "L~" in output

    def test_batch_query_missing_release_errors_cleanly(self, tmp_path, capsys):
        code = main(["batch-query", "--release", str(tmp_path / "absent.npz")])
        assert code == 2
        assert "cannot load release" in capsys.readouterr().err

    def test_serve_store_cold_then_warm_round_trip(self, tmp_path, capsys):
        """materialize -> restart -> warm start: zero ε, identical answers."""
        store_dir = tmp_path / "releases"
        cold_csv = tmp_path / "cold.csv"
        warm_csv = tmp_path / "warm.csv"
        base = [
            "serve-store",
            "--store", str(store_dir),
            "--dataset", "nettrace",
            "--epsilon", "0.5",
            "--seed", "7",
            "--random", "300",
            "--query-seed", "1",
        ]
        assert main(base + ["--out", str(cold_csv)]) == 0
        cold_out = capsys.readouterr().out
        assert "cold start" in cold_out
        assert "materializations this process: 1" in cold_out

        assert main(base + ["--out", str(warm_csv)]) == 0
        warm_out = capsys.readouterr().out
        assert "warm start" in warm_out
        assert "materializations this process: 0" in warm_out
        assert "ε spent this process: 0" in warm_out
        assert cold_csv.read_text() == warm_csv.read_text()

    def test_serve_store_respects_total_epsilon(self, tmp_path, capsys):
        code = main(
            [
                "serve-store",
                "--store", str(tmp_path / "releases"),
                "--dataset", "nettrace",
                "--epsilon", "0.5",
                "--total-epsilon", "0.1",
                "--random", "10",
            ]
        )
        assert code == 3  # EXIT_BUDGET_EXHAUSTED: spent budget, not generic failure
        assert "cannot materialize" in capsys.readouterr().err

    def test_fleet_serves_multiple_datasets(self, tmp_path, capsys):
        store_dir = tmp_path / "releases"
        args = [
            "fleet",
            "--datasets", "nettrace", "searchlogs",
            "--epsilon", "0.5",
            "--random", "100",
            "--store", str(store_dir),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "nettrace" in out and "searchlogs" in out
        assert "2 datasets" in out
        assert "2 materializations" in out
        # second run warm-starts the whole fleet from the shared store
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 materializations" in out
        assert "sum of per-dataset ε spent: 0" in out

    def test_fleet_rejects_dataset_without_universal_variant(self, capsys):
        code = main(["fleet", "--datasets", "socialnetwork", "--random", "10"])
        assert code == 2
        assert "no universal-histogram variant" in capsys.readouterr().err

    def test_compare_universal(self, tmp_path, capsys):
        counts_file = tmp_path / "counts.txt"
        rng = np.random.default_rng(1)
        counts_file.write_text("\n".join(str(v) for v in rng.integers(0, 5, size=64)))
        code = main(
            [
                "compare-universal",
                "--counts-file",
                str(counts_file),
                "--epsilons",
                "1.0",
                "--trials",
                "2",
                "--queries-per-size",
                "5",
            ]
        )
        assert code == 0
        assert "H_bar" in capsys.readouterr().out


class TestStreamingCommands:
    @staticmethod
    def _counts_file(tmp_path):
        counts_file = tmp_path / "counts.txt"
        rng = np.random.default_rng(4)
        counts_file.write_text("\n".join(str(v) for v in rng.integers(0, 9, size=32)))
        return str(counts_file)

    def test_ingest_appends_to_the_pending_log(self, tmp_path, capsys):
        counts = self._counts_file(tmp_path)
        stream_dir = tmp_path / "stream"
        args = [
            "ingest", "--stream-dir", str(stream_dir),
            "--counts-file", counts, "--rows", "50", "--seed", "1",
        ]
        assert main(args) == 0
        assert "ingested 50 rows" in capsys.readouterr().out
        assert main(args) == 0
        assert "ingested 50 rows" in capsys.readouterr().out
        assert (stream_dir / "current_counts.txt").exists()
        log = (stream_dir / "pending.log").read_text().strip().splitlines()
        assert len(log) == 100

    def test_ingest_rows_file(self, tmp_path, capsys):
        counts = self._counts_file(tmp_path)
        rows_file = tmp_path / "rows.txt"
        rows_file.write_text("0\n3\n3\n")
        code = main([
            "ingest", "--stream-dir", str(tmp_path / "sd"),
            "--counts-file", counts, "--rows-file", str(rows_file),
        ])
        assert code == 0
        assert "ingested 3 rows" in capsys.readouterr().out

    def test_ingest_rejects_out_of_domain_rows(self, tmp_path, capsys):
        counts = self._counts_file(tmp_path)
        rows_file = tmp_path / "rows.txt"
        rows_file.write_text("99999\n")
        code = main([
            "ingest", "--stream-dir", str(tmp_path / "sd"),
            "--counts-file", counts, "--rows-file", str(rows_file),
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_advance_epoch_then_warm_serve(self, tmp_path, capsys):
        counts = self._counts_file(tmp_path)
        stream_dir, store = str(tmp_path / "stream"), str(tmp_path / "store")
        assert main([
            "ingest", "--stream-dir", stream_dir,
            "--counts-file", counts, "--rows", "40", "--seed", "2",
        ]) == 0
        capsys.readouterr()
        assert main([
            "advance-epoch", "--stream-dir", stream_dir, "--store", store,
            "--stream", "cli-test", "--counts-file", counts,
            "--epsilon0", "0.4", "--decay", "0.5", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "epoch 0: folded 40 pending rows" in out
        assert "charged ε=0.4" in out
        # the pending log is consumed only after the epoch durably exists
        assert (tmp_path / "stream" / "pending.log").read_text() == ""

        assert main([
            "advance-epoch", "--stream-dir", stream_dir, "--store", store,
            "--stream", "cli-test", "--counts-file", counts,
            "--epsilon0", "0.4", "--decay", "0.5", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "epoch 1: folded 0 pending rows" in out
        assert "charged ε=0.2" in out

        assert main([
            "serve-stream", "--store", store, "--stream", "cli-test",
            "--counts-file", counts, "--epsilon0", "0.4", "--decay", "0.5",
            "--seed", "7", "--random", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "warm start" in out
        assert "zero ε spent at startup" in out
        assert "from epoch 1" in out
        assert "ε spent this process: 0;" in out

    def test_serve_stream_simulates_epochs(self, tmp_path, capsys):
        counts = self._counts_file(tmp_path)
        store = str(tmp_path / "store")
        code = main([
            "serve-stream", "--store", store, "--stream", "sim",
            "--counts-file", counts, "--epsilon0", "0.4", "--decay", "0.5",
            "--seed", "3", "--epochs", "2", "--rows-per-epoch", "100",
            "--random", "200",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "from epoch 2" in out
        assert "Epoch lineage" in out
        # ε₀(1 + 0.5 + 0.25) = 0.7 spent across the three epochs
        assert "stream total across epochs: 0.7" in out

    def test_serve_stream_refuses_to_simulate_over_an_existing_stream(
        self, tmp_path, capsys
    ):
        counts = self._counts_file(tmp_path)
        store = str(tmp_path / "store")
        base = [
            "serve-stream", "--store", store, "--stream", "sim2",
            "--counts-file", counts, "--epsilon0", "0.4", "--decay", "0.5",
            "--seed", "3", "--random", "50",
        ]
        assert main([*base, "--epochs", "1", "--rows-per-epoch", "50"]) == 0
        capsys.readouterr()
        # re-running the simulation would rebase the stream on the base
        # counts and drop the released rows — it must refuse
        code = main([*base, "--epochs", "1", "--rows-per-epoch", "50"])
        assert code == 2
        assert "already has 2 released epochs" in capsys.readouterr().err
        # plain serving (no --epochs) still warm-starts fine
        assert main(base) == 0
        assert "warm start" in capsys.readouterr().out

    def test_advance_epoch_recovers_an_interrupted_commit(self, tmp_path, capsys):
        """Crash simulation: the epoch exists in the store but the
        owner-side commit was interrupted at each of its two points; the
        next advance-epoch must neither double-fold nor drop rows."""
        counts = self._counts_file(tmp_path)
        stream_dir, store = str(tmp_path / "stream"), str(tmp_path / "store")
        advance = [
            "advance-epoch", "--stream-dir", stream_dir, "--store", store,
            "--stream", "crashy", "--counts-file", counts,
            "--epsilon0", "0.4", "--decay", "0.5", "--seed", "7",
        ]
        assert main([
            "ingest", "--stream-dir", stream_dir,
            "--counts-file", counts, "--rows", "60", "--seed", "1",
        ]) == 0
        assert main(advance) == 0
        capsys.readouterr()
        counts_path = tmp_path / "stream" / "current_counts.txt"
        pending_path = tmp_path / "stream" / "pending.log"
        committed = counts_path.read_text()

        # crash point 1: counts written (epoch 0) but the consumed pending
        # prefix was never dropped -> restore the pre-drop log, including
        # rows a concurrent ingest appended during the build
        consumed = "\n".join(["1"] * 60) + "\n"
        import hashlib as _hashlib

        digest = _hashlib.sha256(consumed.encode()).hexdigest()
        epoch0_body = committed.split("\n", 1)[1]
        counts_path.write_text(
            f"# epoch 0 pending-sha256 {digest} bytes {len(consumed)}\n{epoch0_body}"
        )
        pending_path.write_text(consumed + "3\n3\n3\n")
        assert main(advance) == 0
        out = capsys.readouterr().out
        assert "recovered interrupted commit: dropped the pending prefix" in out
        # the concurrently appended tail survived and was folded normally
        assert "epoch 1: folded 3 pending rows" in out

        # crash point 2: lineage holds epoch 1 (which folded those 3 rows)
        # but the counts file still reflects epoch 0 and the folded rows
        # sit in the pending log
        counts_path.write_text(
            f"# epoch 0 pending-sha256 {digest} bytes {len(consumed)}\n{epoch0_body}"
        )
        pending_path.write_text("3\n3\n3\n")
        assert main(advance) == 0
        out = capsys.readouterr().out
        assert "recovered interrupted commit: folded 3 released rows" in out
        assert "recovery complete; no pending rows, not advancing an epoch" in out

        # with fresh arrivals after a recovery the epoch does advance
        assert main([
            "ingest", "--stream-dir", stream_dir,
            "--counts-file", counts, "--rows", "10", "--seed", "4",
        ]) == 0
        capsys.readouterr()
        assert main(advance) == 0
        assert "folded 10 pending rows" in capsys.readouterr().out


class TestShardedCommands:
    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["materialize-sharded", "--store", "s"]
        )
        assert args.shards is None and args.shard_size is None
        assert args.domain_bits is None
        assert args.estimator == "constrained"

    def test_shards_and_shard_size_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve-sharded", "--store", "s", "--shards", "4", "--shard-size", "8"]
            )

    def test_materialize_then_serve_warm_round_trip(self, tmp_path, capsys):
        store = tmp_path / "store"
        base = [
            "--domain-bits", "10", "--epsilon", "0.5", "--seed", "7",
            "--store", str(store), "--shards", "4",
        ]
        assert main(["materialize-sharded", *base]) == 0
        cold = capsys.readouterr().out
        assert "cold start: built 4 shard releases" in cold
        assert "ε spent this process: 0.5" in cold

        out_file = tmp_path / "answers.csv"
        assert main(
            [
                "serve-sharded", *base, "--random", "500",
                "--query-seed", "3", "--out", str(out_file),
            ]
        ) == 0
        warm = capsys.readouterr().out
        assert "warm start" in warm
        assert "ε spent this process: 0" in warm
        assert "through the shard router" in warm
        assert out_file.read_text().startswith("lo,hi,estimate")

    def test_serve_sharded_answers_match_monolithic_release(self, tmp_path, capsys):
        # The same synthetic counts served sharded and monolithic must
        # answer the same queries identically (bit-identical router).
        import numpy as np

        from repro.serving import HistogramEngine, QueryBatch
        from repro.sharding import ShardedHistogramEngine
        from repro.utils.random import as_generator

        counts = as_generator(7).poisson(3.0, size=2**10).astype(np.float64)
        sharded = ShardedHistogramEngine(counts, 0.5, num_shards=4)
        release = sharded.materialize("constrained", epsilon=0.5, seed=7)

        store = tmp_path / "store"
        assert main(
            [
                "serve-sharded", "--domain-bits", "10", "--epsilon", "0.5",
                "--seed", "7", "--store", str(store), "--shards", "4",
                "--random", "200", "--query-seed", "3",
                "--out", str(tmp_path / "a.csv"),
            ]
        ) == 0
        capsys.readouterr()
        batch = QueryBatch.random(counts.size, 200, rng=3)
        expected = release.range_sums(batch.los, batch.his)
        rows = (tmp_path / "a.csv").read_text().strip().splitlines()[1:]
        answers = np.array([float(r.split(",")[2]) for r in rows])
        assert np.array_equal(answers, expected)

    def test_domain_bits_out_of_range_errors_cleanly(self, tmp_path, capsys):
        code = main(
            ["materialize-sharded", "--domain-bits", "40",
             "--store", str(tmp_path / "s")]
        )
        assert code == 2
        assert "domain-bits" in capsys.readouterr().err

    def test_domain_bits_conflicts_with_explicit_sources(self, tmp_path, capsys):
        counts_file = tmp_path / "counts.txt"
        counts_file.write_text("1\n2\n3\n4\n")
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["materialize-sharded", "--store", "s",
                 "--counts-file", str(counts_file), "--domain-bits", "12"]
            )
        # argparse counts an option as "seen" only when its value differs
        # from the default, so a non-default dataset exercises the guard.
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve-sharded", "--store", "s",
                 "--dataset", "searchlogs", "--domain-bits", "12"]
            )


class TestObservabilityCommands:
    def test_stats_reports_a_bit_equal_ledger(self, capsys):
        assert main(["stats"]) == 0
        output = capsys.readouterr().out
        assert "ε-ledger total: 1.125 across 3 tenants" in output
        assert "bit-equal to the fleet accounting" in output
        # one row per tenant of the mixed workload
        for name in ("static", "sharded", "stream"):
            assert name in output
        # the span timing table saw the cold builds and epoch advances
        assert "serve.build_release" in output
        assert "stream.advance_epoch" in output

    def test_stats_with_a_store_persists_releases(self, tmp_path, capsys):
        store = tmp_path / "releases"
        assert main(["stats", "--store", str(store)]) == 0
        assert store.is_dir()
        assert "ε-ledger total: 1.125" in capsys.readouterr().out

    def test_export_metrics_prometheus_stdout_parses(self, capsys):
        from repro.obs import parse_prometheus_text

        assert main(["export-metrics"]) == 0
        output = capsys.readouterr().out
        samples = parse_prometheus_text(output)
        assert samples[("repro_fleet_spent_epsilon", ())] == 1.125
        assert samples[("repro_fleet_datasets", ())] == 3
        # nothing but exposition format on stdout (pipeable to a scraper)
        assert output.lstrip().startswith("#")

    def test_export_metrics_json_document(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "metrics.json"
        assert main(["export-metrics", "--format", "json", "--out", str(out_file)]) == 0
        assert f"wrote json metrics to {out_file}" in capsys.readouterr().err
        document = json.loads(out_file.read_text())
        assert set(document) == {"epsilon_ledger", "metrics", "spans"}
        ledger = document["epsilon_ledger"]
        assert ledger["total_spent_epsilon"] == 1.125
        assert sorted(ledger["datasets"]) == ["sharded", "static", "stream"]
        assert document["spans"], "expected at least one recorded span"
        counters = document["metrics"]["counters"]
        assert "repro_serve_queries_total" in counters

    def test_export_metrics_out_file_prometheus(self, tmp_path, capsys):
        from repro.obs import parse_prometheus_text

        out_file = tmp_path / "metrics.prom"
        assert main(["export-metrics", "--out", str(out_file)]) == 0
        capsys.readouterr()
        samples = parse_prometheus_text(out_file.read_text())
        assert samples[("repro_fleet_spent_epsilon", ())] == 1.125

    def test_obs_commands_leave_defaults_untouched(self):
        from repro import obs

        obs.reset()
        baseline_registry = obs.registry()
        assert main(["stats"]) == 0
        assert not obs.enabled()
        assert obs.registry() is baseline_registry
        assert baseline_registry.families() == []

    def test_export_metrics_unwritable_out_errors_cleanly(self, capsys):
        assert main(["export-metrics", "--out", "/nonexistent-dir/x.prom"]) == 2
        assert "cannot write metrics" in capsys.readouterr().err


class TestFailureExitCodes:
    """The typed failure classes map to distinct exit codes (docs/robustness.md)."""

    @staticmethod
    def _counts_file(tmp_path):
        counts_file = tmp_path / "counts.txt"
        rng = np.random.default_rng(4)
        counts_file.write_text("\n".join(str(v) for v in rng.integers(0, 9, size=32)))
        return str(counts_file)

    def test_store_corruption_exits_4(self, tmp_path, capsys):
        store_dir = tmp_path / "releases"
        args = [
            "serve-store", "--store", str(store_dir), "--dataset", "nettrace",
            "--epsilon", "0.5", "--seed", "7", "--random", "10",
        ]
        assert main(args) == 0
        capsys.readouterr()
        (store_dir / "manifest.json").write_text("{ not json")
        assert main(args) == 4  # EXIT_STORE_CORRUPTION: operator attention
        assert "manifest" in capsys.readouterr().err

    def test_lineage_conflict_exits_5(self, tmp_path, capsys):
        import json as json_module

        counts = self._counts_file(tmp_path)
        stream_dir, store = str(tmp_path / "stream"), str(tmp_path / "store")
        advance = [
            "advance-epoch", "--stream-dir", stream_dir, "--store", store,
            "--stream", "forked", "--counts-file", counts,
            "--epsilon0", "0.4", "--decay", "0.5", "--seed", "7",
        ]
        assert main(advance) == 0
        assert main(advance) == 0
        capsys.readouterr()

        # fork the ledger: renumber epoch 1 as epoch 5 (a gap)
        (ledger,) = (tmp_path / "store" / "streams").glob("forked-*.json")
        document = json_module.loads(ledger.read_text())
        document["epochs"][1]["epoch"] = 5
        ledger.write_text(json_module.dumps(document))

        assert main(advance) == 5  # EXIT_LINEAGE_CONFLICT
        assert "not contiguous" in capsys.readouterr().err
