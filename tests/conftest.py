"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "equivalence: batched-vs-scalar exact-equivalence property tests "
        "(run standalone with -m equivalence)",
    )
    config.addinivalue_line(
        "markers",
        "statistical: distributional conformance tests (KS, chi-square, "
        "empirical ε-DP) with fixed seeds and powered sample sizes "
        "(run standalone with -m statistical)",
    )

from repro.db.domain import IntegerDomain, IPPrefixDomain
from repro.db.relation import Column, Relation, Schema
from repro.queries.hierarchical import TreeLayout


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(20100901)


@pytest.fixture
def paper_counts() -> np.ndarray:
    """The running-example histogram from Figure 2: L(I) = <2, 0, 10, 2>."""
    return np.array([2.0, 0.0, 10.0, 2.0])


@pytest.fixture
def paper_relation() -> Relation:
    """The Figure 2 trace relation R(src, dst) whose histogram is <2, 0, 10, 2>."""
    src_domain = IPPrefixDomain(bits=3, name="src")
    dst_domain = IntegerDomain(4, name="dst")
    schema = Schema.of(Column("src", src_domain), Column("dst", dst_domain))
    records = []
    # Source 000 sends 2 packets, 001 sends 0, 010 sends 10, 011 sends 2.
    for source, count in [("000", 2), ("001", 0), ("010", 10), ("011", 2)]:
        for i in range(count):
            records.append((source, i % 4))
    return Relation.from_records(schema, records)


@pytest.fixture
def small_tree() -> TreeLayout:
    """A binary tree over 8 leaves (15 nodes, height 4)."""
    return TreeLayout(num_leaves=8, branching=2)


@pytest.fixture
def ternary_tree() -> TreeLayout:
    """A ternary tree over 9 leaves (13 nodes, height 3)."""
    return TreeLayout(num_leaves=9, branching=3)


@pytest.fixture
def sparse_counts(rng) -> np.ndarray:
    """A sparse 64-bucket histogram used by range-query tests."""
    counts = np.zeros(64)
    occupied = rng.choice(64, size=8, replace=False)
    counts[occupied] = rng.integers(1, 30, size=8)
    return counts
