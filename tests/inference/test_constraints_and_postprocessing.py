"""Tests for constraint objects and the non-negativity / rounding helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConstraintViolationError
from repro.inference.constraints import OrderingConstraints, TreeConsistencyConstraints
from repro.inference.nonnegative import (
    clip_nonnegative,
    round_to_nonnegative_integers,
    sort_and_round,
)
from repro.queries.hierarchical import TreeLayout


class TestOrderingConstraints:
    def test_satisfied_by_sorted_vector(self):
        constraints = OrderingConstraints(3)
        assert constraints.satisfied_by([1.0, 2.0, 2.0])
        assert constraints.violation_count([1.0, 2.0, 2.0]) == 0
        assert constraints.max_violation([1.0, 2.0, 2.0]) == 0.0

    def test_detects_violations(self):
        constraints = OrderingConstraints(4)
        values = [3.0, 1.0, 5.0, 4.0]
        assert not constraints.satisfied_by(values)
        assert constraints.violation_count(values) == 2
        assert constraints.max_violation(values) == pytest.approx(2.0)

    def test_require_raises_with_details(self):
        constraints = OrderingConstraints(2)
        with pytest.raises(ConstraintViolationError):
            constraints.require([2.0, 1.0])
        assert constraints.require([1.0, 2.0]).tolist() == [1.0, 2.0]

    def test_single_element_always_satisfied(self):
        constraints = OrderingConstraints(1)
        assert constraints.satisfied_by([4.0])
        assert constraints.violation_count([4.0]) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConstraintViolationError):
            OrderingConstraints(3).satisfied_by([1.0, 2.0])

    def test_tolerance_respected(self):
        constraints = OrderingConstraints(2, tolerance=0.1)
        assert constraints.satisfied_by([1.0, 0.95])


class TestTreeConsistencyConstraints:
    def test_aggregated_tree_satisfies(self, small_tree, rng):
        leaves = rng.integers(0, 9, size=8).astype(float)
        values = small_tree.aggregate(leaves)
        constraints = TreeConsistencyConstraints(small_tree)
        assert constraints.satisfied_by(values)
        assert constraints.violation_count(values) == 0
        assert constraints.max_violation(values) == pytest.approx(0.0)

    def test_detects_broken_parent(self, small_tree, rng):
        leaves = rng.integers(0, 9, size=8).astype(float)
        values = small_tree.aggregate(leaves)
        values[1] += 4.0  # break one internal node (it is also a child of the root)
        constraints = TreeConsistencyConstraints(small_tree)
        assert not constraints.satisfied_by(values)
        assert constraints.violation_count(values) == 2
        assert constraints.max_violation(values) == pytest.approx(4.0)

    def test_residuals_order_and_values(self):
        layout = TreeLayout(num_leaves=4, branching=2)
        values = np.array([20.0, 2.0, 12.0, 2.0, 0.0, 10.0, 2.0])
        constraints = TreeConsistencyConstraints(layout)
        residuals = constraints.residuals(values)
        assert residuals.tolist() == [6.0, 0.0, 0.0]

    def test_require(self, small_tree, rng):
        leaves = rng.integers(0, 9, size=8).astype(float)
        values = small_tree.aggregate(leaves)
        constraints = TreeConsistencyConstraints(small_tree)
        assert np.array_equal(constraints.require(values), values)
        values[0] += 1
        with pytest.raises(ConstraintViolationError):
            constraints.require(values)

    def test_single_node_tree_trivially_consistent(self):
        layout = TreeLayout(num_leaves=1, branching=2)
        constraints = TreeConsistencyConstraints(layout)
        assert constraints.satisfied_by([3.0])
        assert constraints.violation_count([3.0]) == 0
        assert constraints.max_violation([3.0]) == 0.0

    def test_wrong_length_rejected(self, small_tree):
        with pytest.raises(ConstraintViolationError):
            TreeConsistencyConstraints(small_tree).satisfied_by(np.ones(4))


class TestRoundingHelpers:
    def test_round_to_nonnegative_integers(self):
        values = [-2.4, -0.2, 0.4, 1.5, 7.9]
        assert round_to_nonnegative_integers(values).tolist() == [0.0, 0.0, 0.0, 2.0, 8.0]

    def test_clip_nonnegative_keeps_fractions(self):
        assert clip_nonnegative([-1.0, 0.5]).tolist() == [0.0, 0.5]

    def test_sort_and_round(self):
        values = [3.7, -2.0, 1.2]
        assert sort_and_round(values).tolist() == [0.0, 1.0, 4.0]

    def test_idempotence(self):
        values = np.array([0.0, 1.0, 5.0])
        assert np.array_equal(round_to_nonnegative_integers(values), values)
        assert np.array_equal(sort_and_round(values), values)
