"""Tests for hierarchical constrained inference (Theorem 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InferenceError
from repro.inference.constraints import TreeConsistencyConstraints
from repro.inference.hierarchical import HierarchicalInference, hierarchical_inference
from repro.inference.least_squares import ols_tree_inference
from repro.queries.hierarchical import HierarchicalQuery, TreeLayout


finite_floats = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


def random_noisy_tree(layout: TreeLayout, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(0, 5, size=layout.num_nodes)


class TestBasicBehaviour:
    def test_wrong_length_rejected(self, small_tree):
        with pytest.raises(InferenceError):
            HierarchicalInference(small_tree).infer(np.ones(3))

    def test_consistent_input_is_fixed_point(self, small_tree, rng):
        leaves = rng.integers(0, 20, size=8).astype(float)
        consistent = small_tree.aggregate(leaves)
        inferred = HierarchicalInference(small_tree).infer(consistent)
        assert np.allclose(inferred, consistent)

    def test_single_node_tree(self):
        layout = TreeLayout(num_leaves=1, branching=2)
        assert HierarchicalInference(layout).infer([7.0]).tolist() == [7.0]

    def test_output_satisfies_constraints(self, small_tree):
        noisy = random_noisy_tree(small_tree, 0)
        inferred = HierarchicalInference(small_tree).infer(noisy)
        constraints = TreeConsistencyConstraints(small_tree)
        assert constraints.satisfied_by(inferred)

    def test_functional_front_end(self, small_tree):
        noisy = random_noisy_tree(small_tree, 1)
        engine = HierarchicalInference(small_tree)
        assert np.allclose(hierarchical_inference(noisy, small_tree), engine.infer(noisy))
        assert np.allclose(
            hierarchical_inference(noisy, small_tree, nonnegative=True),
            engine.infer_nonnegative(noisy),
        )

    def test_infer_leaves_matches_full_inference(self, small_tree):
        noisy = random_noisy_tree(small_tree, 2)
        engine = HierarchicalInference(small_tree)
        assert np.allclose(
            engine.infer_leaves(noisy), engine.infer(noisy)[small_tree.leaf_offset :]
        )

    def test_theorem3_root_formula(self, small_tree):
        # Proof of Theorem 3: h_bar[root] = (k-1)/(k^l - 1) * sum_i k^i *
        # (sum of noisy counts at height i), where leaves have height 0 and
        # the root height l-1 — i.e. levels are weighted by inverse variance
        # of their level-sum estimate of the total.
        noisy = random_noisy_tree(small_tree, 3)
        inferred = HierarchicalInference(small_tree).infer(noisy)
        k, height = 2, small_tree.height
        expected_root = 0.0
        for level in range(height):  # level 0 = root in BFS terms
            node_height = height - 1 - level
            level_sum = noisy[small_tree.level_slice(level)].sum()
            expected_root += (k**node_height) * level_sum
        expected_root *= (k - 1) / (k**height - 1)
        assert inferred[0] == pytest.approx(expected_root)


class TestMatchesLeastSquaresOracle:
    @pytest.mark.parametrize("domain_size,branching", [(4, 2), (8, 2), (16, 2), (9, 3), (16, 4)])
    def test_matches_ols_on_random_input(self, domain_size, branching):
        query = HierarchicalQuery(domain_size, branching=branching)
        noisy = random_noisy_tree(query.layout, seed=domain_size * 10 + branching)
        closed_form = HierarchicalInference(query.layout).infer(noisy)
        oracle = ols_tree_inference(noisy, query)
        assert np.allclose(closed_form, oracle, atol=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(finite_floats, min_size=7, max_size=7))
    def test_matches_ols_property(self, values):
        query = HierarchicalQuery(4, branching=2)
        noisy = np.array(values)
        assert np.allclose(
            HierarchicalInference(query.layout).infer(noisy),
            ols_tree_inference(noisy, query),
            atol=1e-7,
        )


class TestOptimality:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_no_consistent_vector_is_closer(self, seed):
        # Perturbing the inferred leaves and re-aggregating gives another
        # consistent vector; it can never be closer to the noisy input.
        layout = TreeLayout(num_leaves=8, branching=2)
        noisy = random_noisy_tree(layout, seed)
        inferred = HierarchicalInference(layout).infer(noisy)
        rng = np.random.default_rng(seed + 1)
        perturbed_leaves = inferred[layout.leaf_offset :] + rng.normal(
            0, 0.5, size=layout.num_leaves
        )
        candidate = layout.aggregate(perturbed_leaves)
        assert np.sum((noisy - inferred) ** 2) <= np.sum((noisy - candidate) ** 2) + 1e-7

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_error_against_truth_not_increased(self, seed):
        # Projection onto the consistent subspace cannot move away from a
        # consistent truth.
        layout = TreeLayout(num_leaves=16, branching=2)
        rng = np.random.default_rng(seed)
        leaves = rng.integers(0, 30, size=16).astype(float)
        truth = layout.aggregate(leaves)
        noisy = truth + rng.laplace(0, 3.0, size=truth.size)
        inferred = HierarchicalInference(layout).infer(noisy)
        assert np.sum((inferred - truth) ** 2) <= np.sum((noisy - truth) ** 2) + 1e-9

    def test_unbiasedness(self):
        # Theorem 4(i): the estimator is unbiased.  Average many noisy
        # inferences and compare to the truth.
        layout = TreeLayout(num_leaves=8, branching=2)
        leaves = np.array([5.0, 0.0, 3.0, 7.0, 2.0, 2.0, 9.0, 1.0])
        truth = layout.aggregate(leaves)
        rng = np.random.default_rng(0)
        total = np.zeros(layout.num_nodes)
        trials = 4000
        engine = HierarchicalInference(layout)
        for _ in range(trials):
            noisy = truth + rng.laplace(0, 2.0, size=truth.size)
            total += engine.infer(noisy)
        assert np.allclose(total / trials, truth, atol=0.35)

    def test_leaf_variance_reduced_versus_raw(self):
        # The consistent leaf estimate averages information from the whole
        # tree, so its variance is below the raw noisy-leaf variance.
        layout = TreeLayout(num_leaves=16, branching=2)
        truth = layout.aggregate(np.zeros(16))
        rng = np.random.default_rng(1)
        scale = 3.0
        raw = []
        inferred = []
        engine = HierarchicalInference(layout)
        for _ in range(2000):
            noisy = truth + rng.laplace(0, scale, size=truth.size)
            raw.append(noisy[layout.leaf_offset])
            inferred.append(engine.infer(noisy)[layout.leaf_offset])
        assert np.var(inferred) < np.var(raw)


class TestNonnegativeHeuristic:
    def test_zeroes_nonpositive_subtrees(self, small_tree):
        values = small_tree.aggregate(np.array([-1.0, -2.0, 0.0, 0.0, 3.0, 4.0, 1.0, 2.0]))
        cleaned = HierarchicalInference(small_tree).zero_nonpositive_subtrees(values)
        # The subtree over leaves 0..3 sums to -3 at its root, so the whole
        # left half is zeroed; the right half is untouched.
        assert cleaned[small_tree.leaf_offset : small_tree.leaf_offset + 4].tolist() == [0.0] * 4
        assert cleaned[small_tree.leaf_offset + 4 :].tolist() == [3.0, 4.0, 1.0, 2.0]

    def test_zero_propagates_to_descendants(self, small_tree):
        values = np.full(small_tree.num_nodes, -1.0)
        cleaned = HierarchicalInference(small_tree).zero_nonpositive_subtrees(values)
        assert np.all(cleaned == 0.0)

    def test_positive_values_untouched(self, small_tree, rng):
        leaves = rng.integers(1, 10, size=8).astype(float)
        values = small_tree.aggregate(leaves)
        cleaned = HierarchicalInference(small_tree).zero_nonpositive_subtrees(values)
        assert np.array_equal(cleaned, values)

    def test_negative_leaf_under_positive_parent_zeroed(self, small_tree):
        leaves = np.array([5.0, -1.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0])
        values = small_tree.aggregate(leaves)
        cleaned = HierarchicalInference(small_tree).zero_nonpositive_subtrees(values)
        leaf_values = cleaned[small_tree.leaf_offset :]
        assert leaf_values[1] == 0.0
        assert leaf_values[0] == 5.0

    def test_infer_nonnegative_output_leaves_nonnegative(self, small_tree):
        noisy = random_noisy_tree(small_tree, 5) - 3.0  # bias negative
        result = HierarchicalInference(small_tree).infer_nonnegative(noisy)
        assert np.all(result[small_tree.leaf_offset :] >= 0.0)

    def test_input_not_mutated(self, small_tree):
        values = np.full(small_tree.num_nodes, -2.0)
        original = values.copy()
        HierarchicalInference(small_tree).zero_nonpositive_subtrees(values)
        assert np.array_equal(values, original)


class TestSparseDataBenefit:
    def test_sparse_regions_identified(self):
        # Section 5.2: on sparse data H-bar with the non-negativity heuristic
        # is more accurate than raw noisy leaves, even at unit ranges,
        # because higher levels of the tree reveal empty regions.
        layout = TreeLayout(num_leaves=256, branching=2)
        leaves = np.zeros(256)
        leaves[5] = 40.0  # a single occupied bucket
        truth = layout.aggregate(leaves)
        rng = np.random.default_rng(2)
        engine = HierarchicalInference(layout)
        height = layout.height
        epsilon = 0.2
        raw_error = 0.0
        inferred_error = 0.0
        trials = 60
        for _ in range(trials):
            noisy = truth + rng.laplace(0, height / epsilon, size=truth.size)
            raw_leaves = np.clip(np.rint(noisy[layout.leaf_offset :]), 0, None)
            inferred_leaves = np.clip(
                np.rint(engine.infer_nonnegative(noisy)[layout.leaf_offset :]), 0, None
            )
            raw_error += np.sum((raw_leaves - leaves) ** 2)
            inferred_error += np.sum((inferred_leaves - leaves) ** 2)
        assert inferred_error < raw_error
