"""Tests for isotonic regression (Theorem 1 / PAVA), including the paper's worked examples."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InferenceError
from repro.inference.isotonic import (
    isotonic_regression,
    isotonic_regression_blocks,
    isotonic_regression_minmax,
    isotonic_regression_pava,
)
from repro.inference.least_squares import isotonic_oracle


finite_floats = st.floats(-1000, 1000, allow_nan=False, allow_infinity=False)


class TestPaperExamples:
    """Example 4 of the paper, verified literally."""

    def test_already_sorted_unchanged(self):
        assert isotonic_regression([9.0, 10.0, 14.0]).tolist() == [9.0, 10.0, 14.0]

    def test_two_out_of_order_elements_averaged(self):
        assert isotonic_regression([9.0, 14.0, 10.0]).tolist() == [9.0, 12.0, 12.0]

    def test_leading_outlier_pooled(self):
        result = isotonic_regression([14.0, 9.0, 10.0, 15.0])
        assert result.tolist() == [11.0, 11.0, 11.0, 15.0]
        # The paper notes the L2 distance of this solution is 14, better than
        # the 25 achieved by just lowering the first element.
        assert np.sum((np.array([14.0, 9.0, 10.0, 15.0]) - result) ** 2) == pytest.approx(14.0)


class TestBasicBehaviour:
    @pytest.mark.parametrize("method", ["pava", "minmax"])
    def test_single_element(self, method):
        assert isotonic_regression([5.0], method=method).tolist() == [5.0]

    @pytest.mark.parametrize("method", ["pava", "minmax"])
    def test_all_equal(self, method):
        assert isotonic_regression([3.0, 3.0, 3.0], method=method).tolist() == [3.0] * 3

    @pytest.mark.parametrize("method", ["pava", "minmax"])
    def test_reverse_sorted_collapses_to_mean(self, method):
        values = [5.0, 4.0, 3.0, 2.0, 1.0]
        assert isotonic_regression(values, method=method).tolist() == [3.0] * 5

    def test_unknown_method_rejected(self):
        with pytest.raises(InferenceError):
            isotonic_regression([1.0], method="bogus")

    def test_weights_validation(self):
        with pytest.raises(InferenceError):
            isotonic_regression_pava([1.0, 2.0], weights=[1.0])
        with pytest.raises(InferenceError):
            isotonic_regression_pava([1.0, 2.0], weights=[1.0, 0.0])

    def test_weighted_fit(self):
        # A heavy first element dominates the pooled block mean.
        result = isotonic_regression_pava([10.0, 0.0], weights=[3.0, 1.0])
        assert result.tolist() == [7.5, 7.5]

    def test_weighted_minmax_matches_weighted_pava(self):
        values = [4.0, 1.0, 3.0, 2.0]
        weights = [1.0, 2.0, 0.5, 4.0]
        assert np.allclose(
            isotonic_regression_pava(values, weights),
            isotonic_regression_minmax(values, weights),
        )

    def test_output_not_aliased_to_input(self):
        values = np.array([1.0, 2.0, 3.0])
        result = isotonic_regression(values)
        result[0] = 99
        assert values[0] == 1.0


class TestOptimalityProperties:
    """Properties that characterise the minimum-L2 sorted solution."""

    @settings(max_examples=120, deadline=None)
    @given(values=st.lists(finite_floats, min_size=1, max_size=40))
    def test_output_is_sorted(self, values):
        result = isotonic_regression_pava(values)
        assert np.all(np.diff(result) >= -1e-9)

    @settings(max_examples=120, deadline=None)
    @given(values=st.lists(finite_floats, min_size=1, max_size=40))
    def test_pava_matches_minmax_formula(self, values):
        # Theorem 1's closed form and the linear-time algorithm agree.
        assert np.allclose(
            isotonic_regression_pava(values),
            isotonic_regression_minmax(values),
            atol=1e-8,
        )

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(finite_floats, min_size=1, max_size=15))
    def test_matches_generic_constrained_solver(self, values):
        values = np.array(values)
        pava = isotonic_regression_pava(values)
        oracle = isotonic_oracle(values)
        # The bounded solver converges to a loose numerical tolerance, so
        # compare solutions loosely and objectives tightly: PAVA must be at
        # least as good as anything the generic solver found.
        assert np.allclose(pava, oracle, atol=5e-2)
        pava_objective = np.sum((values - pava) ** 2)
        oracle_objective = np.sum((values - oracle) ** 2)
        assert pava_objective <= oracle_objective + 1e-6

    @settings(max_examples=80, deadline=None)
    @given(values=st.lists(finite_floats, min_size=1, max_size=40))
    def test_idempotent(self, values):
        once = isotonic_regression_pava(values)
        twice = isotonic_regression_pava(once)
        assert np.allclose(once, twice)

    @settings(max_examples=80, deadline=None)
    @given(values=st.lists(finite_floats, min_size=1, max_size=40))
    def test_sorted_input_is_fixed_point(self, values):
        ordered = np.sort(np.array(values))
        assert np.allclose(isotonic_regression_pava(ordered), ordered)

    @settings(max_examples=80, deadline=None)
    @given(values=st.lists(finite_floats, min_size=1, max_size=40))
    def test_preserves_mean(self, values):
        # Pooling replaces blocks by their means, so the overall mean is kept.
        result = isotonic_regression_pava(values)
        assert result.mean() == pytest.approx(np.mean(values), abs=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(finite_floats, min_size=2, max_size=25),
        shift=st.floats(-50, 50, allow_nan=False),
    )
    def test_translation_equivariance(self, values, shift):
        # Lemma 2 of the paper: the solution commutes with translations.
        base = isotonic_regression_pava(values)
        shifted = isotonic_regression_pava(np.array(values) + shift)
        assert np.allclose(shifted, base + shift, atol=1e-7)

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(finite_floats, min_size=2, max_size=25),
        trial=st.integers(0, 1000),
    )
    def test_no_sorted_vector_is_closer(self, values, trial):
        # Perturbing the solution while keeping it sorted never reduces the
        # L2 distance to the input (local optimality check).
        values = np.array(values)
        solution = isotonic_regression_pava(values)
        rng = np.random.default_rng(trial)
        perturbation = rng.normal(0, 0.1, size=values.size)
        candidate = np.sort(solution + perturbation)
        base_error = np.sum((values - solution) ** 2)
        candidate_error = np.sum((values - candidate) ** 2)
        assert base_error <= candidate_error + 1e-7

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(finite_floats, min_size=1, max_size=30))
    def test_clipped_to_input_range(self, values):
        # Pool means can never leave the range of the observed values.
        result = isotonic_regression_pava(values)
        assert result.min() >= min(values) - 1e-9
        assert result.max() <= max(values) + 1e-9


class TestAccuracyNeverHurts:
    """Section 3.2: inference cannot increase error relative to the truth."""

    @settings(max_examples=60, deadline=None)
    @given(
        truth=st.lists(st.integers(0, 50), min_size=2, max_size=30),
        seed=st.integers(0, 10_000),
    )
    def test_error_not_increased(self, truth, seed):
        truth = np.sort(np.array(truth, dtype=float))
        rng = np.random.default_rng(seed)
        noisy = truth + rng.laplace(0, 2.0, size=truth.size)
        inferred = isotonic_regression_pava(noisy)
        noisy_error = np.sum((noisy - truth) ** 2)
        inferred_error = np.sum((inferred - truth) ** 2)
        assert inferred_error <= noisy_error + 1e-9


class TestBlocksImplementation:
    """The vectorized block-merge PAVA (trial-batched production path)."""

    def test_dispatch(self):
        assert isotonic_regression([9.0, 14.0, 10.0], method="blocks").tolist() == [
            9.0,
            12.0,
            12.0,
        ]

    def test_paper_examples(self):
        assert isotonic_regression_blocks([9.0, 10.0, 14.0]).tolist() == [9.0, 10.0, 14.0]
        assert isotonic_regression_blocks([14.0, 9.0, 10.0, 15.0]).tolist() == [
            11.0,
            11.0,
            11.0,
            15.0,
        ]

    def test_batch_of_rows(self):
        values = np.array([[3.0, 2.0, 1.0], [1.0, 2.0, 3.0]])
        fitted = isotonic_regression_blocks(values)
        assert fitted.shape == (2, 3)
        assert fitted[0].tolist() == [2.0, 2.0, 2.0]
        assert fitted[1].tolist() == [1.0, 2.0, 3.0]

    @settings(max_examples=120, deadline=None)
    @given(values=st.lists(finite_floats, min_size=1, max_size=40))
    def test_matches_pava_oracle(self, values):
        assert np.allclose(
            isotonic_regression_blocks(values),
            isotonic_regression_pava(values),
            atol=1e-8,
        )

    @settings(max_examples=80, deadline=None)
    @given(values=st.lists(finite_floats, min_size=1, max_size=40))
    def test_output_is_sorted(self, values):
        assert np.all(np.diff(isotonic_regression_blocks(values)) >= -1e-9)

    def test_weighted(self):
        assert isotonic_regression_blocks([10.0, 0.0], weights=[3.0, 1.0]).tolist() == [
            7.5,
            7.5,
        ]
        # A shared 1-D weight vector broadcasts across rows.
        rows = np.array([[10.0, 0.0], [0.0, 10.0]])
        fitted = isotonic_regression_blocks(rows, weights=[3.0, 1.0])
        assert fitted[0].tolist() == [7.5, 7.5]
        assert fitted[1].tolist() == [0.0, 10.0]

    def test_weight_validation(self):
        with pytest.raises(InferenceError):
            isotonic_regression_blocks([1.0, 2.0], weights=[1.0, -1.0])
        with pytest.raises(InferenceError):
            isotonic_regression_blocks(np.ones((2, 3)), weights=np.ones((3, 3)))
        with pytest.raises(InferenceError):
            isotonic_regression_blocks([1.0, 2.0, 3.0], weights=[1.0, 2.0])
        with pytest.raises(InferenceError):
            isotonic_regression_blocks(np.ones((2, 3)), weights=[1.0, 2.0])

    def test_output_not_aliased_to_input(self):
        values = np.array([1.0, 2.0, 3.0])
        result = isotonic_regression_blocks(values)
        result[0] = 99.0
        assert values[0] == 1.0
