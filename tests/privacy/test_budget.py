"""Tests for privacy-budget accounting."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import PrivacyBudgetError
from repro.privacy.budget import PrivacyBudget
from repro.privacy.definitions import PrivacyParameters


class TestPrivacyBudget:
    def test_initial_state(self):
        budget = PrivacyBudget(PrivacyParameters(1.0))
        assert budget.spent_epsilon == 0.0
        assert budget.remaining_epsilon == 1.0
        assert budget.history == []

    def test_spend_accumulates(self):
        budget = PrivacyBudget(PrivacyParameters(1.0))
        budget.spend(0.4, label="first")
        budget.spend(0.5, label="second")
        assert budget.spent_epsilon == pytest.approx(0.9)
        assert budget.remaining_epsilon == pytest.approx(0.1)
        assert [s.label for s in budget.history] == ["first", "second"]

    def test_spend_returns_parameters(self):
        budget = PrivacyBudget(PrivacyParameters(1.0, delta=0.01))
        params = budget.spend(0.3)
        assert params.epsilon == 0.3
        assert params.delta == 0.01

    def test_overspending_rejected_and_not_recorded(self):
        budget = PrivacyBudget(PrivacyParameters(1.0))
        budget.spend(0.9)
        with pytest.raises(PrivacyBudgetError):
            budget.spend(0.2)
        assert budget.spent_epsilon == pytest.approx(0.9)

    def test_can_spend(self):
        budget = PrivacyBudget(PrivacyParameters(1.0))
        assert budget.can_spend(1.0)
        assert not budget.can_spend(1.1)
        with pytest.raises(PrivacyBudgetError):
            budget.can_spend(0.0)

    def test_exact_exhaustion_allowed(self):
        budget = PrivacyBudget(PrivacyParameters(1.0))
        budget.spend(0.5)
        budget.spend(0.5)
        assert budget.remaining_epsilon == pytest.approx(0.0)

    def test_spend_fraction(self):
        budget = PrivacyBudget(PrivacyParameters(2.0))
        params = budget.spend_fraction(0.25, label="quarter")
        assert params.epsilon == pytest.approx(0.5)
        with pytest.raises(PrivacyBudgetError):
            budget.spend_fraction(0.0)
        with pytest.raises(PrivacyBudgetError):
            budget.spend_fraction(1.5)

    def test_summary_mentions_labels(self):
        budget = PrivacyBudget(PrivacyParameters(1.0))
        budget.spend(0.25, label="degree sequence")
        text = budget.summary()
        assert "degree sequence" in text
        assert "remaining" in text


class TestThreadSafety:
    def test_concurrent_spends_cannot_oversubscribe(self):
        """32 threads race 0.125-ε charges against a 1.0 budget; exactly 8
        may win, and the history must record exactly the winners."""
        budget = PrivacyBudget(PrivacyParameters(1.0))
        rejected = []
        barrier = threading.Barrier(32)

        def worker(index: int) -> None:
            barrier.wait()
            try:
                budget.spend(0.125, label=f"worker-{index}")
            except PrivacyBudgetError:
                rejected.append(index)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert budget.spent_epsilon == pytest.approx(1.0)
        assert len(budget.history) == 8
        assert len(rejected) == 24

    def test_concurrent_spend_fractions(self):
        budget = PrivacyBudget(PrivacyParameters(2.0))
        outcomes = []

        def worker() -> None:
            try:
                outcomes.append(budget.spend_fraction(0.5))
            except PrivacyBudgetError:
                outcomes.append(None)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(1 for o in outcomes if o is not None) == 2
        assert budget.remaining_epsilon == pytest.approx(0.0)


class TestRunningTotal:
    def test_running_total_is_exact_across_many_small_spends(self):
        """The O(1) running total must match re-summing the history bit for
        bit: both accumulate left to right from 0.0, so even though the
        spends are float-noisy (0.1 is not exactly representable) the two
        computations follow identical rounding paths."""
        budget = PrivacyBudget(PrivacyParameters(10_000.0))
        for i in range(5_000):
            budget.spend(0.1 + (i % 7) * 1e-9, label=f"spend-{i}")
        resummed = 0.0
        for spend in budget.history:
            resummed += spend.epsilon
        assert budget.spent_epsilon == resummed  # exact, not approx
        assert len(budget.history) == 5_000

    def test_running_total_survives_rejected_spends(self):
        budget = PrivacyBudget(PrivacyParameters(1.0))
        budget.spend(0.75)
        with pytest.raises(PrivacyBudgetError):
            budget.spend(0.5)
        assert budget.spent_epsilon == 0.75
        budget.spend(0.25)
        assert budget.spent_epsilon == 0.75 + 0.25

    def test_spent_epsilon_is_constant_time(self):
        """Reading the total must not re-walk the spend list: the property
        stays correct (and fast) after thousands of spends interleaved
        with reads on the serving path."""
        budget = PrivacyBudget(PrivacyParameters(1e9))
        total = 0.0
        for i in range(1_000):
            budget.spend(1.0, label="query")
            total += 1.0
            assert budget.spent_epsilon == total
