"""Tests for the empirical privacy audit harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.privacy.audit import audit_laplace_mechanism, empirical_epsilon
from repro.privacy.definitions import PrivacyParameters
from repro.privacy.laplace import LaplaceMechanism


class TestEmpiricalEpsilon:
    def test_identical_samples_give_zero(self):
        sample = np.random.default_rng(0).normal(size=5000)
        assert empirical_epsilon(sample, sample) == pytest.approx(0.0, abs=1e-12)

    def test_constant_samples_give_zero(self):
        sample = np.zeros(100)
        assert empirical_epsilon(sample, sample) == 0.0

    def test_shifted_laplace_detected(self):
        rng = np.random.default_rng(1)
        a = rng.laplace(0.0, 1.0, size=50_000)
        b = rng.laplace(5.0, 1.0, size=50_000)
        assert empirical_epsilon(a, b) > 1.0

    def test_rejects_empty_or_bad_bins(self):
        with pytest.raises(ExperimentError):
            empirical_epsilon(np.array([]), np.array([1.0]))
        with pytest.raises(ExperimentError):
            empirical_epsilon(np.array([1.0]), np.array([1.0]), bins=1)


class TestAuditLaplaceMechanism:
    def _mechanism_answer(self, true_value: float, epsilon: float):
        mechanism = LaplaceMechanism(1.0, PrivacyParameters(epsilon))

        def answer(rng: np.random.Generator) -> float:
            return float(mechanism.randomize([true_value], rng=rng)[0])

        return answer

    def test_correctly_calibrated_mechanism_passes(self):
        epsilon = 0.5
        result = audit_laplace_mechanism(
            self._mechanism_answer(10.0, epsilon),
            self._mechanism_answer(11.0, epsilon),  # neighbouring count differs by 1
            claimed_epsilon=epsilon,
            trials=15_000,
            rng=0,
        )
        assert result.within_claim
        assert result.estimated_epsilon <= epsilon + 0.5

    def test_undercalibrated_mechanism_fails(self):
        # Noise calibrated for epsilon=3 (scale 1/3) while the claim is
        # epsilon=0.5: neighbouring outputs differ by a full count, so the
        # audit observes likelihood ratios of roughly 3 and flags the claim.
        result = audit_laplace_mechanism(
            self._mechanism_answer(10.0, 3.0),
            self._mechanism_answer(11.0, 3.0),
            claimed_epsilon=0.5,
            trials=15_000,
            rng=1,
        )
        assert not result.within_claim
        assert result.estimated_epsilon > 1.0

    def test_parameter_validation(self):
        answer = self._mechanism_answer(0.0, 1.0)
        with pytest.raises(ExperimentError):
            audit_laplace_mechanism(answer, answer, claimed_epsilon=0.0, trials=1000)
        with pytest.raises(ExperimentError):
            audit_laplace_mechanism(answer, answer, claimed_epsilon=1.0, trials=10)
