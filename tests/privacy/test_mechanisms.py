"""Tests for the Laplace and geometric mechanisms and the parameter objects."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import PrivacyBudgetError, SensitivityError
from repro.privacy.definitions import PrivacyParameters, neighboring_relations
from repro.privacy.geometric import (
    GeometricMechanism,
    two_sided_geometric_noise,
    two_sided_geometric_noise_matrix,
)
from repro.privacy.laplace import (
    LaplaceMechanism,
    laplace_error_per_query,
    laplace_noise,
    laplace_noise_matrix,
)


class TestPrivacyParameters:
    def test_valid_parameters(self):
        params = PrivacyParameters(0.5)
        assert params.epsilon == 0.5
        assert params.delta == 0.0

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyParameters(0.0)
        with pytest.raises(PrivacyBudgetError):
            PrivacyParameters(-1.0)

    def test_rejects_invalid_delta(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyParameters(1.0, delta=1.0)
        with pytest.raises(PrivacyBudgetError):
            PrivacyParameters(1.0, delta=-0.1)

    def test_split_sums_to_at_most_whole(self):
        parts = PrivacyParameters(1.0).split([0.5, 0.25, 0.25])
        assert [p.epsilon for p in parts] == [0.5, 0.25, 0.25]
        with pytest.raises(PrivacyBudgetError):
            PrivacyParameters(1.0).split([0.7, 0.7])
        with pytest.raises(PrivacyBudgetError):
            PrivacyParameters(1.0).split([])
        with pytest.raises(PrivacyBudgetError):
            PrivacyParameters(1.0).split([0.5, -0.1])

    def test_scaled(self):
        assert PrivacyParameters(1.0).scaled(0.1).epsilon == pytest.approx(0.1)
        with pytest.raises(PrivacyBudgetError):
            PrivacyParameters(1.0).scaled(0)

    def test_str(self):
        assert str(PrivacyParameters(0.5)) == "ε=0.5"
        assert "δ" in str(PrivacyParameters(0.5, 0.01))


class TestLaplaceNoise:
    def test_zero_scale_is_exact(self):
        assert laplace_noise(0.0, 5).tolist() == [0.0] * 5

    def test_shape(self):
        assert laplace_noise(1.0, 7, rng=0).shape == (7,)

    def test_rejects_negative_scale_or_size(self):
        with pytest.raises(SensitivityError):
            laplace_noise(-1.0, 5)
        with pytest.raises(SensitivityError):
            laplace_noise(1.0, -5)

    def test_empirical_variance_matches_theory(self):
        noise = laplace_noise(2.0, 200_000, rng=0)
        assert noise.var() == pytest.approx(2 * 2.0**2, rel=0.05)
        assert abs(noise.mean()) < 0.05

    def test_error_per_query_formula(self):
        assert laplace_error_per_query(1.0, 1.0) == pytest.approx(2.0)
        assert laplace_error_per_query(3.0, 0.5) == pytest.approx(2 * 36.0)
        with pytest.raises(SensitivityError):
            laplace_error_per_query(1.0, 0.0)
        with pytest.raises(SensitivityError):
            laplace_error_per_query(-1.0, 1.0)


class TestLaplaceMechanism:
    def test_scale_is_sensitivity_over_epsilon(self):
        mechanism = LaplaceMechanism(3.0, PrivacyParameters(0.5))
        assert mechanism.scale == pytest.approx(6.0)
        assert mechanism.per_query_variance == pytest.approx(72.0)
        assert mechanism.log_density_ratio_bound() == 0.5

    def test_randomize_preserves_shape_and_is_noisy(self):
        mechanism = LaplaceMechanism(1.0, PrivacyParameters(1.0))
        truth = np.arange(10, dtype=float)
        noisy = mechanism.randomize(truth, rng=0)
        assert noisy.shape == truth.shape
        assert not np.array_equal(noisy, truth)

    def test_randomize_unbiased(self):
        mechanism = LaplaceMechanism(1.0, PrivacyParameters(1.0))
        rng = np.random.default_rng(0)
        samples = np.array([mechanism.randomize([5.0], rng=rng)[0] for _ in range(20_000)])
        assert samples.mean() == pytest.approx(5.0, abs=0.05)

    def test_rejects_nonpositive_sensitivity(self):
        with pytest.raises(SensitivityError):
            LaplaceMechanism(0.0, PrivacyParameters(1.0))

    @settings(max_examples=20, deadline=None)
    @given(
        sensitivity=st.floats(0.1, 10),
        epsilon=st.floats(0.01, 5),
    )
    def test_variance_formula_consistent(self, sensitivity, epsilon):
        mechanism = LaplaceMechanism(sensitivity, PrivacyParameters(epsilon))
        assert mechanism.per_query_variance == pytest.approx(
            laplace_error_per_query(sensitivity, epsilon)
        )


class TestGeometricMechanism:
    def test_noise_is_integer_valued(self):
        noise = two_sided_geometric_noise(0.5, 1000, rng=0)
        assert np.all(noise == np.rint(noise))

    def test_zero_alpha_is_exact(self):
        assert two_sided_geometric_noise(0.0, 10).tolist() == [0.0] * 10

    def test_rejects_invalid_alpha(self):
        with pytest.raises(SensitivityError):
            two_sided_geometric_noise(1.0, 10)
        with pytest.raises(SensitivityError):
            two_sided_geometric_noise(-0.1, 10)

    def test_variance_matches_formula(self):
        mechanism = GeometricMechanism(1.0, PrivacyParameters(1.0))
        noise = two_sided_geometric_noise(mechanism.alpha, 300_000, rng=0)
        assert noise.var() == pytest.approx(mechanism.per_query_variance, rel=0.05)

    def test_variance_below_laplace(self):
        params = PrivacyParameters(1.0)
        geometric = GeometricMechanism(1.0, params)
        laplace = LaplaceMechanism(1.0, params)
        assert geometric.per_query_variance < laplace.per_query_variance

    def test_randomize_returns_integer_offsets(self):
        mechanism = GeometricMechanism(1.0, PrivacyParameters(0.5))
        truth = np.array([3.0, 7.0, 11.0])
        noisy = mechanism.randomize(truth, rng=1)
        assert np.all((noisy - truth) == np.rint(noisy - truth))

    def test_rejects_nonpositive_sensitivity(self):
        with pytest.raises(SensitivityError):
            GeometricMechanism(0.0, PrivacyParameters(1.0))


class TestNeighboringRelations:
    def test_yields_removals_and_additions(self, paper_relation):
        neighbors = list(neighboring_relations(paper_relation, [("000", 0)]))
        assert len(neighbors) == paper_relation.size + 1
        sizes = {n.size for n in neighbors}
        assert sizes == {paper_relation.size - 1, paper_relation.size + 1}


class TestBatchedNoiseSamplers:
    """The (trials, n) noise-matrix samplers behind the *_many pipelines."""

    def test_laplace_matrix_shape_and_distribution(self):
        matrix = laplace_noise_matrix(2.0, 200, 50, rng=0)
        assert matrix.shape == (200, 50)
        # Laplace(scale) has variance 2*scale^2 = 8.
        assert np.var(matrix) == pytest.approx(8.0, rel=0.15)

    def test_laplace_matrix_zero_scale(self):
        assert np.array_equal(laplace_noise_matrix(0.0, 3, 4), np.zeros((3, 4)))

    def test_laplace_matrix_seed_schedule_equals_scalar_draws(self):
        seeds = [11, 22, 33]
        matrix = laplace_noise_matrix(1.5, 3, 20, rng=seeds)
        for row, seed in zip(matrix, seeds):
            assert np.array_equal(row, laplace_noise(1.5, 20, rng=seed))

    def test_laplace_matrix_rejects_bad_schedule(self):
        with pytest.raises(ValueError):
            laplace_noise_matrix(1.0, 3, 4, rng=[1, 2])

    def test_laplace_matrix_validation(self):
        with pytest.raises(SensitivityError):
            laplace_noise_matrix(-1.0, 2, 3)
        with pytest.raises(SensitivityError):
            laplace_noise_matrix(1.0, -1, 3)
        with pytest.raises(SensitivityError):
            laplace_noise_matrix(1.0, 2, -3)

    def test_geometric_matrix_schedule_equals_scalar_draws(self):
        seeds = [5, 6]
        matrix = two_sided_geometric_noise_matrix(0.5, 2, 30, rng=seeds)
        for row, seed in zip(matrix, seeds):
            assert np.array_equal(row, two_sided_geometric_noise(0.5, 30, rng=seed))

    def test_geometric_matrix_integer_valued(self):
        matrix = two_sided_geometric_noise_matrix(0.7, 20, 40, rng=1)
        assert matrix.shape == (20, 40)
        assert np.array_equal(matrix, np.rint(matrix))

    def test_mechanism_randomize_many_schedule(self):
        mechanism = LaplaceMechanism(sensitivity=2.0, params=PrivacyParameters(0.5))
        answers = np.array([1.0, 2.0, 3.0])
        seeds = [7, 8, 9, 10]
        batch = mechanism.randomize_many(answers, 4, rng=seeds)
        assert batch.shape == (4, 3)
        for row, seed in zip(batch, seeds):
            assert np.array_equal(row, mechanism.randomize(answers, rng=seed))

    def test_geometric_mechanism_randomize_many(self):
        mechanism = GeometricMechanism(sensitivity=1.0, params=PrivacyParameters(1.0))
        answers = np.array([4.0, 5.0])
        batch = mechanism.randomize_many(answers, 3, rng=[1, 2, 3])
        for row, seed in zip(batch, [1, 2, 3]):
            assert np.array_equal(row, mechanism.randomize(answers, rng=seed))

    def test_laplace_matrix_fast_path_is_laplace_distributed(self):
        # The single-stream fast path samples Lap(b) as Exp(b) - Exp(b);
        # check the fingerprints of a Laplace against the closed forms.
        scale = 3.0
        samples = laplace_noise_matrix(scale, 400, 500, rng=12345).ravel()
        assert np.mean(samples) == pytest.approx(0.0, abs=0.1)
        assert np.var(samples) == pytest.approx(2 * scale**2, rel=0.05)
        # |X| is Exp(scale): median scale*ln2, P(|X| > scale) = 1/e.
        assert np.median(np.abs(samples)) == pytest.approx(scale * np.log(2), rel=0.05)
        assert np.mean(np.abs(samples) > scale) == pytest.approx(np.exp(-1), abs=0.01)
        # Symmetry.
        assert np.mean(samples > 0) == pytest.approx(0.5, abs=0.01)
