"""Tests for the unattributed-histogram estimators (S̃, S̃r, S̄)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators.sorted import (
    ConstrainedSortedEstimator,
    SortAndRoundEstimator,
    SortedLaplaceEstimator,
)


@pytest.fixture
def degree_counts(rng) -> np.ndarray:
    """A heavy-tailed multiset with many duplicate values (d << n)."""
    return np.repeat([0.0, 1.0, 2.0, 3.0, 5.0, 12.0, 40.0], [60, 50, 40, 20, 15, 10, 5]).astype(float)


class TestInterfaces:
    def test_names(self):
        assert SortedLaplaceEstimator().name == "S~"
        assert SortAndRoundEstimator().name == "S~r"
        assert ConstrainedSortedEstimator().name == "S_bar"

    @pytest.mark.parametrize(
        "estimator",
        [SortedLaplaceEstimator(), SortAndRoundEstimator(), ConstrainedSortedEstimator()],
    )
    def test_output_shape(self, estimator, degree_counts):
        estimate = estimator.estimate(degree_counts, epsilon=1.0, rng=0)
        assert estimate.shape == degree_counts.shape

    @pytest.mark.parametrize(
        "estimator",
        [SortedLaplaceEstimator(), SortAndRoundEstimator(), ConstrainedSortedEstimator()],
    )
    def test_reproducible_with_seed(self, estimator, degree_counts):
        a = estimator.estimate(degree_counts, epsilon=0.5, rng=7)
        b = estimator.estimate(degree_counts, epsilon=0.5, rng=7)
        assert np.array_equal(a, b)

    def test_input_order_irrelevant(self, degree_counts, rng):
        # The sorted query discards attribution, so permuting the input
        # multiset cannot change the estimate (for a fixed noise stream).
        estimator = ConstrainedSortedEstimator()
        shuffled = degree_counts.copy()
        rng.shuffle(shuffled)
        assert np.array_equal(
            estimator.estimate(degree_counts, 1.0, rng=3),
            estimator.estimate(shuffled, 1.0, rng=3),
        )


class TestConsistency:
    def test_raw_estimator_usually_inconsistent(self, degree_counts):
        estimate = SortedLaplaceEstimator().estimate(degree_counts, epsilon=0.1, rng=0)
        assert np.any(np.diff(estimate) < 0)

    def test_sort_and_round_is_sorted_and_integral(self, degree_counts):
        estimate = SortAndRoundEstimator().estimate(degree_counts, epsilon=0.1, rng=0)
        assert np.all(np.diff(estimate) >= 0)
        assert np.all(estimate >= 0)
        assert np.all(estimate == np.rint(estimate))

    def test_constrained_estimator_is_sorted(self, degree_counts):
        estimate = ConstrainedSortedEstimator().estimate(degree_counts, epsilon=0.1, rng=0)
        assert np.all(np.diff(estimate) >= -1e-9)

    def test_constrained_estimator_rounding_option(self, degree_counts):
        estimate = ConstrainedSortedEstimator(round_output=True).estimate(
            degree_counts, epsilon=0.1, rng=0
        )
        assert np.all(estimate == np.rint(estimate))
        assert np.all(estimate >= 0)

    def test_minmax_method_matches_pava(self, degree_counts):
        small = degree_counts[:40]
        pava = ConstrainedSortedEstimator(method="pava").estimate(small, 0.5, rng=4)
        minmax = ConstrainedSortedEstimator(method="minmax").estimate(small, 0.5, rng=4)
        assert np.allclose(pava, minmax)


class TestAccuracy:
    def test_constrained_beats_raw_on_duplicate_heavy_data(self, degree_counts):
        # The headline claim of Section 5.1: constrained inference reduces
        # error dramatically when the data has few distinct values.
        truth = np.sort(degree_counts)
        epsilon = 0.1
        raw_error = 0.0
        constrained_error = 0.0
        trials = 25
        rng = np.random.default_rng(11)
        raw = SortedLaplaceEstimator()
        constrained = ConstrainedSortedEstimator()
        for _ in range(trials):
            seed = int(rng.integers(0, 2**31))
            raw_error += np.sum((raw.estimate(degree_counts, epsilon, rng=seed) - truth) ** 2)
            constrained_error += np.sum(
                (constrained.estimate(degree_counts, epsilon, rng=seed) - truth) ** 2
            )
        assert constrained_error < raw_error / 3

    def test_constrained_never_worse_than_raw_same_noise(self, degree_counts):
        # With the same noise draw, the isotonic projection cannot be farther
        # from the truth than the raw noisy vector.
        truth = np.sort(degree_counts)
        for seed in range(5):
            raw = SortedLaplaceEstimator().estimate(degree_counts, 0.2, rng=seed)
            constrained = ConstrainedSortedEstimator().estimate(degree_counts, 0.2, rng=seed)
            assert np.sum((constrained - truth) ** 2) <= np.sum((raw - truth) ** 2) + 1e-9
