"""Batched-vs-scalar equivalence: the contract of the trial-batched engine.

Under a shared per-trial seed schedule ``[s0 .. sT]``, every ``*_many``
API must be *bit-for-bit* equal to the corresponding loop of scalar calls:
``fit_many(counts, eps, T, rng=[s0..sT])`` equals ``T`` scalar
``fit(counts, eps, rng=st)`` calls, and 2-D inference equals row-by-row
1-D inference.  These are the properties the rewritten experiment runners
rely on, so they are marked ``equivalence`` and run as their own CI step.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.estimators.hierarchical import (
    ConstrainedHierarchicalEstimator,
    HierarchicalLaplaceEstimator,
)
from repro.estimators.identity import IdentityLaplaceEstimator
from repro.estimators.sorted import (
    ConstrainedSortedEstimator,
    SortAndRoundEstimator,
    SortedLaplaceEstimator,
)
from repro.estimators.wavelet import WaveletEstimator
from repro.inference.hierarchical import HierarchicalInference, hierarchical_inference
from repro.inference.isotonic import (
    isotonic_regression_blocks,
    isotonic_regression_pava,
)
from repro.queries.hierarchical import TreeLayout
from repro.queries.workload import RangeWorkload

pytestmark = pytest.mark.equivalence


RANGE_ESTIMATORS = [
    IdentityLaplaceEstimator(),
    IdentityLaplaceEstimator(round_output=False),
    HierarchicalLaplaceEstimator(),
    HierarchicalLaplaceEstimator(branching=4, round_output=False),
    ConstrainedHierarchicalEstimator(),
    ConstrainedHierarchicalEstimator(nonnegative=False, round_output=False),
    WaveletEstimator(),
    WaveletEstimator(round_output=True),
]

UNATTRIBUTED_ESTIMATORS = [
    SortedLaplaceEstimator(),
    SortAndRoundEstimator(),
    ConstrainedSortedEstimator(),
    ConstrainedSortedEstimator(round_output=True),
]


def _schedule(seed: int, trials: int) -> list[int]:
    return [int(s) for s in np.random.default_rng(seed).integers(0, 2**62, trials)]


def _counts(seed: int, size: int) -> np.ndarray:
    return np.floor(np.random.default_rng(seed).pareto(2.0, size) * 30)


class TestFitManyEqualsScalarFits:
    @pytest.mark.parametrize("estimator", RANGE_ESTIMATORS, ids=lambda e: repr(e))
    @pytest.mark.parametrize("epsilon", [1.0, 0.1])
    def test_unit_estimates_exact(self, estimator, epsilon):
        counts = _counts(5, 200)
        seeds = _schedule(7, 12)
        batch = estimator.fit_many(counts, epsilon, 12, rng=seeds)
        scalar = np.stack(
            [estimator.fit(counts, epsilon, rng=s).unit_estimates for s in seeds]
        )
        assert np.array_equal(batch.unit_estimates, scalar)

    @pytest.mark.parametrize("estimator", RANGE_ESTIMATORS, ids=lambda e: repr(e))
    def test_range_queries_exact(self, estimator):
        counts = _counts(6, 200)
        seeds = _schedule(8, 8)
        batch = estimator.fit_many(counts, 0.5, 8, rng=seeds)
        fits = [estimator.fit(counts, 0.5, rng=s) for s in seeds]
        for lo, hi in [(0, 199), (3, 17), (50, 180), (42, 42)]:
            scalar = np.array([fit.range_query(lo, hi) for fit in fits])
            assert np.array_equal(batch.range_query(lo, hi), scalar)

    @pytest.mark.parametrize("estimator", RANGE_ESTIMATORS, ids=lambda e: repr(e))
    def test_answer_workload_matches(self, estimator):
        # The bulk path may reassociate float additions (prefix sums), so
        # workload answers agree to numerical precision; the decomposition
        # based estimators are bit-exact.
        counts = _counts(9, 200)
        seeds = _schedule(10, 6)
        workload = RangeWorkload.random_ranges(200, 30, 25, rng=2)
        batch = estimator.fit_many(counts, 0.5, 6, rng=seeds)
        scalar = np.stack(
            [
                estimator.fit(counts, 0.5, rng=s).answer_workload(workload)
                for s in seeds
            ]
        )
        assert np.allclose(batch.answer_workload(workload), scalar, rtol=1e-12, atol=1e-7)

    def test_trial_view_round_trips(self):
        estimator = HierarchicalLaplaceEstimator()
        counts = _counts(11, 64)
        seeds = _schedule(12, 5)
        batch = estimator.fit_many(counts, 0.5, 5, rng=seeds)
        for t, seed in enumerate(seeds):
            scalar = estimator.fit(counts, 0.5, rng=seed)
            view = batch[t]
            assert np.array_equal(view.unit_estimates, scalar.unit_estimates)
            assert view.range_query(3, 40) == scalar.range_query(3, 40)


class TestEstimateManyEqualsScalarEstimates:
    @pytest.mark.parametrize(
        "estimator", UNATTRIBUTED_ESTIMATORS, ids=lambda e: repr(e)
    )
    @pytest.mark.parametrize("epsilon", [1.0, 0.01])
    def test_exact(self, estimator, epsilon):
        counts = _counts(13, 300)
        seeds = _schedule(14, 12)
        batched = estimator.estimate_many(counts, epsilon, 12, rng=seeds)
        scalar = np.stack(
            [estimator.estimate(counts, epsilon, rng=s) for s in seeds]
        )
        assert np.array_equal(batched, scalar)

    def test_scalar_oracle_methods_loop(self):
        # The validation methods have no batched kernel; estimate_many must
        # still honour the seed schedule through its per-row fallback.
        estimator = ConstrainedSortedEstimator(method="pava")
        counts = _counts(15, 60)
        seeds = _schedule(16, 4)
        batched = estimator.estimate_many(counts, 0.5, 4, rng=seeds)
        scalar = np.stack([estimator.estimate(counts, 0.5, rng=s) for s in seeds])
        assert np.array_equal(batched, scalar)


class TestHierarchicalInferenceMatrix:
    @pytest.mark.parametrize("branching,leaves", [(2, 64), (3, 81), (4, 64)])
    @pytest.mark.parametrize("nonnegative", [False, True])
    def test_2d_equals_row_by_row(self, branching, leaves, nonnegative):
        layout = TreeLayout(num_leaves=leaves, branching=branching)
        rng = np.random.default_rng(17)
        matrix = rng.laplace(0, 10.0, size=(9, layout.num_nodes))
        batched = hierarchical_inference(matrix, layout, nonnegative=nonnegative)
        for t in range(matrix.shape[0]):
            row = hierarchical_inference(matrix[t], layout, nonnegative=nonnegative)
            assert np.array_equal(batched[t], row)

    def test_zero_nonpositive_subtrees_2d(self):
        layout = TreeLayout(num_leaves=16, branching=2)
        engine = HierarchicalInference(layout)
        rng = np.random.default_rng(18)
        matrix = rng.normal(0, 5.0, size=(7, layout.num_nodes))
        batched = engine.zero_nonpositive_subtrees(matrix)
        for t in range(7):
            assert np.array_equal(batched[t], engine.zero_nonpositive_subtrees(matrix[t]))

    def test_infer_leaves_shapes(self):
        layout = TreeLayout(num_leaves=8, branching=2)
        engine = HierarchicalInference(layout)
        rng = np.random.default_rng(19)
        one = engine.infer_leaves(rng.normal(size=layout.num_nodes))
        many = engine.infer_leaves(rng.normal(size=(4, layout.num_nodes)))
        assert one.shape == (8,)
        assert many.shape == (4, 8)


class TestBatchedIsotonic:
    @settings(max_examples=80, deadline=None)
    @given(
        rows=st.integers(1, 6),
        cols=st.integers(1, 30),
        seed=st.integers(0, 10_000),
    )
    def test_blocks_matches_pava_oracle(self, rows, cols, seed):
        values = np.random.default_rng(seed).normal(0, 50, size=(rows, cols))
        batched = isotonic_regression_blocks(values)
        for t in range(rows):
            assert np.allclose(batched[t], isotonic_regression_pava(values[t]), atol=1e-8)

    @settings(max_examples=80, deadline=None)
    @given(
        rows=st.integers(2, 8),
        cols=st.integers(1, 40),
        seed=st.integers(0, 10_000),
    )
    def test_one_row_call_is_bitwise_row_of_batch(self, rows, cols, seed):
        values = np.random.default_rng(seed).normal(0, 50, size=(rows, cols))
        batched = isotonic_regression_blocks(values)
        for t in range(rows):
            assert np.array_equal(batched[t], isotonic_regression_blocks(values[t]))

    def test_weighted_blocks_matches_weighted_pava(self):
        rng = np.random.default_rng(20)
        values = rng.normal(0, 10, size=(5, 25))
        weights = rng.uniform(0.5, 4.0, size=(5, 25))
        batched = isotonic_regression_blocks(values, weights)
        for t in range(5):
            assert np.allclose(
                batched[t], isotonic_regression_pava(values[t], weights[t]), atol=1e-8
            )
